//! Upgrade-safe custom fields (§5/§6.3 of the paper).
//!
//! A customer extends the SAP-managed `vbak` table with `zz_priority`.
//! The stable consumption view must expose the field without redefining
//! the interim view stack — so it self-joins the base table on its key.
//! With a capable optimizer the self-join costs nothing (Fig. 9c); over a
//! draft-enabled table, declaring the CASE JOIN keeps it that way.
//!
//! Run: `cargo run --example custom_fields`

use std::sync::Arc;
use vdm_catalog::TableBuilder;
use vdm_core::Database;
use vdm_expr::Expr;
use vdm_model::{
    extension::extend_draft_with_fields, extension::extend_with_fields, DraftPair, ExtensionSpec,
};
use vdm_plan::{plan_stats, LogicalPlan};
use vdm_types::{SqlType, Value};

fn main() -> vdm_types::Result<()> {
    let mut db = Database::hana();

    // SAP-managed table, already extended with the customer field zz_priority.
    let vbak = Arc::new(
        TableBuilder::new("vbak")
            .column("vbeln", SqlType::Int, false)
            .column("kunnr", SqlType::Int, false)
            .column("netwr", SqlType::Decimal { scale: 2 }, false)
            .column("zz_priority", SqlType::Text, true)
            .primary_key(&["vbeln"])
            .build()?,
    );
    db.catalog_mut().create_table((*vbak).clone())?;
    db.engine().create_table(Arc::clone(&vbak))?;
    db.execute(
        "insert into vbak values
            (1, 10, 1500.00, 'HIGH'),
            (2, 11,  250.00, null),
            (3, 10,  980.50, 'LOW')",
    )?;

    // The SAP-managed view stack does NOT project zz_priority.
    let managed = LogicalPlan::project(
        LogicalPlan::scan(Arc::clone(&vbak)),
        vec![
            (Expr::col(0), "SalesOrder".into()),
            (Expr::col(1), "SoldToParty".into()),
            (Expr::col(2), "NetAmount".into()),
        ],
    )?;

    // Fig. 8(b): expose zz_priority via an augmentation self-join.
    let spec = ExtensionSpec {
        key: vec![("SalesOrder".into(), "vbeln".into())],
        fields: vec!["zz_priority".into()],
    };
    let extended = extend_with_fields(managed, Arc::clone(&vbak), &spec)?;
    println!("extension view: {} joins before optimization", plan_stats(&extended).joins);
    let optimized = db.optimize(&extended)?;
    println!(
        "               {} joins after  optimization (ASJ removed, field re-wired)",
        plan_stats(&optimized).joins
    );
    db.register_view("sales_order_ext", extended);
    let rows = db.query(
        "select SalesOrder, NetAmount, zz_priority from sales_order_ext order by SalesOrder",
    )?;
    for row in rows.to_rows() {
        println!("  order {} | {} | priority {}", row[0], row[1], row[2]);
    }

    // Draft-enabled variant: the logical table is active ⊎ draft, and only
    // a CASE JOIN keeps the extension free (Fig. 13b / Fig. 14).
    let draft = Arc::new(
        TableBuilder::new("vbak_draft")
            .column("vbeln", SqlType::Int, false)
            .column("kunnr", SqlType::Int, false)
            .column("netwr", SqlType::Decimal { scale: 2 }, false)
            .column("zz_priority", SqlType::Text, true)
            .primary_key(&["vbeln"])
            .build()?,
    );
    db.catalog_mut().create_table((*draft).clone())?;
    db.engine().create_table(Arc::clone(&draft))?;
    db.engine().insert(
        "vbak_draft",
        vec![vec![
            Value::Int(99),
            Value::Int(11),
            Value::Dec("10.00".parse()?),
            Value::str("DRAFT-RUSH"),
        ]],
    )?;
    let pair = DraftPair::new(vbak, draft)?;
    let op_view = pair.operational_plan()?;
    let s = op_view.schema();
    let managed_op = LogicalPlan::project(
        op_view,
        vec![
            (Expr::col(0), s.field(0).name.clone()), // bid
            (Expr::col(1), "SalesOrder".into()),
            (Expr::col(2), "SoldToParty".into()),
            (Expr::col(3), "NetAmount".into()),
        ],
    )?;
    for (label, intent) in [("plain join", false), ("CASE JOIN", true)] {
        let ext = extend_draft_with_fields(managed_op.clone(), &pair, "bid", &spec, intent)?;
        let optimized = db.optimize(&ext)?;
        println!(
            "draft extension via {label}: {} joins after optimization",
            plan_stats(&optimized).joins
        );
    }
    Ok(())
}
