//! Embedded analytics over the universal journal — the paper's §3 scenario.
//!
//! Builds the synthetic ERP schema, assembles the
//! `journal_entry_item_browser` consumption view (47 table instances,
//! 49 joins — Fig. 3), registers it with the database, and runs analytical
//! SQL against it. The optimizer collapses the plan per query.
//!
//! Run: `cargo run --release --example erp_analytics`

use vdm_core::Database;
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_plan::plan_stats;

fn main() -> vdm_types::Result<()> {
    let mut db = Database::hana();

    // Generate the ERP world (universal journal + ~40 dimension tables).
    let erp = Erp { journal_rows: 5_000, seed: 4711 };
    let schema = {
        let (catalog, engine) = db.catalog_and_engine();
        erp.build(catalog, engine)?
    };
    let browser = journal_entry_item_browser(&schema)?;
    let stats = plan_stats(&browser.protected);
    println!(
        "journal_entry_item_browser: {} table instances, {} joins, {}-way union",
        stats.table_instances, stats.joins, stats.max_union_width
    );

    // Register the DAC-protected view so SQL can use it.
    db.register_view("journal_entry_item_browser", browser.protected.clone());

    // 1. The paper's count(*): almost everything is optimized away.
    let plan = db.optimized_plan("select count(*) from journal_entry_item_browser")?;
    let after = plan_stats(&plan);
    println!(
        "count(*): optimizer keeps {} joins of {} (only the DAC-guarded supplier/customer joins)",
        after.joins, stats.joins
    );
    let n = db.query("select count(*) from journal_entry_item_browser")?;
    println!("visible journal lines for user 'kim': {}", n.row(0)[0]);

    // 2. Revenue-style aggregation touching two dimensions.
    let batch = db.query(
        "select FiscalYear, count(*) as lines, sum(AmountInCompanyCodeCurrency) as amount
         from journal_entry_item_browser
         group by FiscalYear
         order by FiscalYear",
    )?;
    println!("\namount by fiscal year:");
    for row in batch.to_rows() {
        println!("  {} | {:>6} lines | {}", row[0], row[1], row[2]);
    }

    // 3. A selective drill-down: only the needed dimension joins execute.
    let sql = "select AccountingDocument, SupplierName, OpenAmount
               from journal_entry_item_browser
               where SupplierGroup = 1
               order by AccountingDocument
               limit 5";
    let plan = db.optimized_plan(sql)?;
    println!(
        "\ndrill-down plan uses {} of the view's {} joins",
        plan_stats(&plan).joins,
        stats.joins
    );
    for row in db.query(sql)?.to_rows() {
        println!("  doc {} | {} | open {}", row[0], row[1], row[2]);
    }
    Ok(())
}
