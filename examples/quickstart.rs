//! Quickstart: create tables, load data, and watch the optimizer remove an
//! unused augmentation join.
//!
//! Run: `cargo run --example quickstart`

use vdm_core::Database;

fn main() -> vdm_types::Result<()> {
    // A database with the full optimizer (the paper's "HANA" capability set).
    let mut db = Database::hana();

    db.execute_script(
        "create table customer (
             c_custkey  bigint primary key,
             c_name     text not null,
             c_country  text not null
         );
         create table orders (
             o_orderkey bigint primary key,
             o_custkey  bigint not null,
             o_total    decimal(12,2) not null
         );
         insert into customer values
             (1, 'Aurora Analytics', 'DE'),
             (2, 'Borealis Trading', 'FR');
         insert into orders values
             (100, 1, 1250.00),
             (101, 1, 380.25),
             (102, 2, 99.90);",
    )?;

    // A VDM-style expansive view: the customer join is there for whoever
    // needs customer fields...
    db.execute(
        "create view order_overview as
         select o.o_orderkey, o.o_total, c.c_name, c.c_country
         from orders o left outer many to one join customer c
           on o.o_custkey = c.c_custkey",
    )?;

    // ...but this query doesn't use them, so the join is an unused
    // augmentation join (UAJ) and disappears:
    let sql = "select o_orderkey, o_total from order_overview";
    println!("{}\n", db.explain(sql)?);

    let batch = db.query(sql)?;
    println!("results ({} rows):", batch.num_rows());
    for row in batch.to_rows() {
        println!("  {row:?}");
    }

    // A query that *does* use customer fields keeps the join:
    let sql = "select c_name, sum(o_total) as revenue from order_overview group by c_name order by revenue desc";
    let batch = db.query(sql)?;
    println!("\nrevenue by customer:");
    for row in batch.to_rows() {
        println!("  {} -> {}", row[0], row[1]);
    }
    Ok(())
}
