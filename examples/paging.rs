//! UI paging over an expansive view (§4.4 of the paper).
//!
//! Paginated tables fetch `limit k offset n` pages. Across augmentation
//! joins the LIMIT can move below the join — which decides whether the
//! page costs O(k) or O(table).
//!
//! Run: `cargo run --release --example paging`

use std::time::Instant;
use vdm_core::Database;
use vdm_optimizer::{Capability, Profile};

fn main() -> vdm_types::Result<()> {
    let mut db = Database::hana();
    // Load TPC-H at a noticeable size.
    let gen = vdm_data::tpch::Tpch { sf: 0.3, seed: 42, with_foreign_keys: false };
    let (catalog, engine) = db.catalog_and_engine();
    gen.build(catalog, engine)?;

    db.execute(
        "create view order_browser as
         select o.o_orderkey, o.o_orderdate, o.o_totalprice, c.c_name, c.c_mktsegment
         from orders o
         left outer many to one join customer c on o.o_custkey = c.c_custkey",
    )?;

    let page = |db: &mut Database, label: &str| -> vdm_types::Result<()> {
        let sql = "select * from order_browser limit 20 offset 40";
        let start = Instant::now();
        let batch = db.query(sql)?;
        let elapsed = start.elapsed();
        println!(
            "{label:32} page of {} rows in {:>8.1} µs",
            batch.num_rows(),
            elapsed.as_secs_f64() * 1e6
        );
        Ok(())
    };

    // Without the limit-pushdown capability the whole join runs per page.
    db.set_profile(Profile::hana().without(Capability::LimitPushdownAj));
    page(&mut db, "without limit pushdown (page 3)")?;

    // With it, the page costs O(page size).
    db.set_profile(Profile::hana());
    page(&mut db, "with limit pushdown (page 3)")?;

    // Deterministic pagination needs ORDER BY; the sort forces a full
    // scan, but the join still only augments the surviving rows.
    let sql = "select * from order_browser order by o_orderkey limit 5";
    let batch = db.query(sql)?;
    println!("\nfirst orders (ordered):");
    for row in batch.to_rows() {
        println!("  {} | {} | {}", row[0], row[2], row[3]);
    }
    Ok(())
}
