//! Cached views (SCV/DCV) — the materialization escape hatch the paper
//! mentions in §3: when on-the-fly VDM computation is too expensive, HANA
//! offers static cached views (periodically refreshed) and dynamic cached
//! views (incrementally maintained).
//!
//! Run: `cargo run --release --example cached_views`

use std::time::Instant;
use vdm_cache::{CacheMode, ViewCache};
use vdm_core::Database;

fn main() -> vdm_types::Result<()> {
    let mut db = Database::hana();
    let gen = vdm_data::tpch::Tpch { sf: 0.2, seed: 42, with_foreign_keys: false };
    let (catalog, engine) = db.catalog_and_engine();
    gen.build(catalog, engine)?;

    // An analytical view worth caching: revenue per market segment.
    db.execute(
        "create view segment_revenue as
         select c.c_mktsegment, sum(o.o_totalprice) as revenue
         from orders o left outer many to one join customer c
           on o.o_custkey = c.c_custkey
         group by c.c_mktsegment",
    )?;
    let plan = db.optimized_plan("select * from segment_revenue")?;

    let cache = ViewCache::new();
    let scv =
        cache.register("segment_revenue_scv", plan.clone(), CacheMode::Static, db.engine())?;
    let dcv = cache.register("segment_revenue_dcv", plan, CacheMode::Dynamic, db.engine())?;

    let time = |label: &str, f: &mut dyn FnMut() -> vdm_types::Result<usize>| {
        let start = Instant::now();
        let rows = f().expect("read succeeds");
        println!("{label:38} {rows} rows in {:>8.1} µs", start.elapsed().as_secs_f64() * 1e6);
    };

    time("direct query (computed on the fly):", &mut || {
        Ok(db.query("select * from segment_revenue")?.num_rows())
    });
    time("SCV read (materialized):", &mut || Ok(scv.read(db.engine())?.num_rows()));
    time("DCV read (materialized, up to date):", &mut || Ok(dcv.read(db.engine())?.num_rows()));

    // A transactional write lands...
    db.execute("insert into orders values (900001, 1, 'O', 77777.77, cast(10000 as date))")?;
    println!("\nafter inserting one order:");
    println!(
        "  SCV staleness: {} write(s) behind (serves the old snapshot)",
        scv.staleness(db.engine())
    );
    let direct = db.query("select sum(revenue) from segment_revenue")?.row(0)[0].clone();
    let via_dcv = {
        let b = dcv.read(db.engine())?;
        let mut total = vdm_types::Decimal::zero(2);
        for i in 0..b.num_rows() {
            total = total.checked_add(&b.row(i)[1].as_dec()?)?;
        }
        vdm_types::Value::Dec(total)
    };
    println!("  direct total:  {direct}");
    println!("  DCV total:     {via_dcv}  (transparently maintained)");
    println!("  DCV stats:     {:?}", dcv.stats());

    // The periodic SCV refresh catches up.
    cache.refresh_all_static(db.engine())?;
    println!("  SCV staleness after refresh tick: {}", scv.staleness(db.engine()));
    Ok(())
}
