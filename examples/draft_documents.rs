//! The stateless-app draft pattern (§6.1, Fig. 11b).
//!
//! In-progress user input lives in a draft table beside the active table.
//! Operational queries read the branch-id union of both; analytical
//! queries read only active data — and the optimizer still derives
//! ⟨bid, key⟩ uniqueness across the union (Fig. 12b), so unused joins to
//! the logical table disappear.
//!
//! Run: `cargo run --example draft_documents`

use std::sync::Arc;
use vdm_catalog::TableBuilder;
use vdm_core::Database;
use vdm_model::DraftPair;
use vdm_plan::{plan_stats, unique_sets, DeriveOptions};
use vdm_types::{SqlType, Value};

fn main() -> vdm_types::Result<()> {
    let mut db = Database::hana();
    let mk = |name: &str| {
        TableBuilder::new(name)
            .column("doc_id", SqlType::Int, false)
            .column("customer", SqlType::Text, false)
            .column("amount", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["doc_id"])
            .build()
    };
    let active = db.catalog_mut().create_table(mk("sales_doc")?)?;
    let draft = db.catalog_mut().create_table(mk("sales_doc_draft")?)?;
    db.engine().create_table(Arc::clone(&active))?;
    db.engine().create_table(Arc::clone(&draft))?;

    // Committed documents.
    db.execute(
        "insert into sales_doc values
            (1, 'Aurora', 1200.00),
            (2, 'Borealis', 75.50)",
    )?;
    // A user is editing a new document — transactional write to the draft.
    db.execute("insert into sales_doc_draft values (3, 'Cumulus', 410.00)")?;

    let pair = DraftPair::new(active, draft)?;
    db.register_view("sales_doc_operational", pair.operational_plan()?);
    db.register_view("sales_doc_analytical", pair.analytical_plan());

    // The operational UI sees committed + in-progress documents.
    println!("operational view (active ⊎ draft):");
    for row in db
        .query("select bid, doc_id, customer, amount from sales_doc_operational order by doc_id")?
        .to_rows()
    {
        let state = if row[0] == Value::Int(0) { "active" } else { "draft " };
        println!("  [{state}] doc {} | {} | {}", row[1], row[2], row[3]);
    }

    // Analytics sees only committed data.
    let total = db.query("select sum(amount) from sales_doc_analytical")?;
    println!("\nanalytical total (active only): {}", total.row(0)[0]);

    // The union preserves ⟨bid, doc_id⟩ uniqueness — the Fig. 12b property
    // that lets the optimizer treat the logical table as a join target.
    let op = pair.operational_plan()?;
    let sets = unique_sets(&op, &DeriveOptions::all());
    println!("\nderived unique key sets of the union: {sets:?}");

    // Consequence: a join to the logical table that no one uses vanishes —
    // the optimizer proves ⟨bid, doc_id⟩ unique across the union (Fig. 12b).
    db.execute(
        "create view audit_overview as
         select a.doc_id as audited_doc, a.customer as audited_customer, o.amount
         from (select doc_id, customer, 0 as probe from sales_doc) a
         left join sales_doc_operational o
           on a.probe = o.bid and a.doc_id = o.doc_id",
    )?;
    let plan = db.optimized_plan("select audited_doc from audit_overview")?;
    println!(
        "unused join to the draft union: {} joins remain after optimization",
        plan_stats(&plan).joins
    );
    Ok(())
}
