#!/usr/bin/env sh
# Offline CI gate: build, test, lint. No network access required —
# the workspace has zero external dependencies, so a vendored registry
# or plain `--offline` both work from a cold cache.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release (offline) =="
cargo build --release --workspace --offline

echo "== cargo test (offline) =="
cargo test -q --workspace --offline

echo "== release-mode integration tests (offline) =="
cargo test -q --release --workspace --offline

echo "== optimizer rules go through RewriteCtx, not raw derivation =="
if grep -rn "props::unique_sets\|vdm_plan::unique_sets" \
    crates/optimizer/src/asj.rs crates/optimizer/src/prune.rs \
    crates/optimizer/src/filters.rs crates/optimizer/src/limit_pushdown.rs \
    crates/optimizer/src/precision.rs; then
  echo "rule files must probe properties via RewriteCtx"; exit 1
fi

echo "== opt_sweep smoke run (tiny inputs, scratch dir) =="
SWEEP_DIR="$(mktemp -d)"
(cd "$SWEEP_DIR" && "$OLDPWD/target/release/opt_sweep" 500 10 50 > opt_sweep.log) \
  || { cat "$SWEEP_DIR/opt_sweep.log"; rm -rf "$SWEEP_DIR"; exit 1; }
test -s "$SWEEP_DIR/BENCH_optimize.json"
rm -rf "$SWEEP_DIR"

echo "== par_sweep thread-scaling smoke gate (reduced rows, scratch dir) =="
# Sweeps threads 1 and 4 over reduced datasets and fails if the
# agg_over_join workload's threads=4 speedup over serial drops below
# 2.5x — the canary for core-scaling regressions in the morsel engine.
PAR_DIR="$(mktemp -d)"
(cd "$PAR_DIR" && "$OLDPWD/target/release/par_sweep" 150000 8000 \
    --threads=1,4 --gate-agg-speedup=2.5 > par_sweep.log) \
  || { cat "$PAR_DIR/par_sweep.log"; rm -rf "$PAR_DIR"; exit 1; }
test -s "$PAR_DIR/BENCH_parallel.json"
rm -rf "$PAR_DIR"

echo "== cache_sweep incremental-maintenance smoke gate (reduced rows, scratch dir) =="
# Maintains an agg-over-join DCV across delta fractions over a reduced
# base and fails if the 1%-delta incremental fold is not at least 5x
# faster than a full recompute — the canary for O(delta) regressions
# in the view-maintenance engine. Digest equivalence is asserted inside
# the binary every round.
CACHE_DIR="$(mktemp -d)"
(cd "$CACHE_DIR" && "$OLDPWD/target/release/cache_sweep" 200000 \
    --gate-delta-speedup=5 > cache_sweep.log) \
  || { cat "$CACHE_DIR/cache_sweep.log"; rm -rf "$CACHE_DIR"; exit 1; }
test -s "$CACHE_DIR/BENCH_cache.json"
rm -rf "$CACHE_DIR"

echo "== serve_sweep multi-session smoke gate (reduced load, scratch dir) =="
# 64 interactive sessions against one server: the highest step's p99
# per-query latency and plan-cache hit rate must clear the gates — the
# canary for serving-layer and plan-cache regressions.
SERVE_DIR="$(mktemp -d)"
(cd "$SERVE_DIR" && "$OLDPWD/target/release/serve_sweep" \
    --sessions 64 --queries 6 --journal-rows 500 --think-ms 400 \
    --gate-p99-ms 150 --gate-hit-rate 0.95 > serve_sweep.log) \
  || { cat "$SERVE_DIR/serve_sweep.log"; rm -rf "$SERVE_DIR"; exit 1; }
test -s "$SERVE_DIR/BENCH_serve.json"
rm -rf "$SERVE_DIR"

echo "== obs_sweep observability-overhead smoke gate (reduced load, scratch dir) =="
# Per-query interleaved comparison of observed (tracing + query store on)
# vs dark execution on the browser workload: the median overhead must
# stay under 3% — the canary for observability-cost regressions. The
# binary also asserts the store's JSONL save/reload round-trip.
OBS_DIR="$(mktemp -d)"
(cd "$OBS_DIR" && "$OLDPWD/target/release/obs_sweep" \
    --journal-rows 500 --queries 150 --rounds 5 \
    --gate-overhead-pct 3 > obs_sweep.log) \
  || { cat "$OBS_DIR/obs_sweep.log"; rm -rf "$OBS_DIR"; exit 1; }
test -s "$OBS_DIR/BENCH_obs.json"
test -s "$OBS_DIR/query_store.jsonl"
rm -rf "$OBS_DIR"

echo "== join_sweep feedback-reoptimization smoke gate (reduced rows, scratch dir) =="
# Skewed 6-join ERP-shaped workload where static zone-map estimates
# mis-price the hot dimension filter: the feedback-corrected join order
# must beat the estimate-only order by at least 2x, and the live
# plan-cache loop must re-optimize at least once — the canary for
# cardinality-estimation and feedback-loop regressions. Multiset-digest
# equivalence of all orderings is asserted inside the binary.
JOIN_DIR="$(mktemp -d)"
(cd "$JOIN_DIR" && "$OLDPWD/target/release/join_sweep" \
    --shapes=erp --joins=6 --rows=60000 --gate=2 > join_sweep.log) \
  || { cat "$JOIN_DIR/join_sweep.log"; rm -rf "$JOIN_DIR"; exit 1; }
test -s "$JOIN_DIR/BENCH_join.json"
rm -rf "$JOIN_DIR"

echo "== optimizer never reads the query store (feedback flows through CardOverrides) =="
if grep -rn "QueryStore\|vdm_obs::store" crates/optimizer/src; then
  echo "crates/optimizer must receive observed cardinalities as CardOverrides, not read the store"; exit 1
fi

echo "== serve layer never optimizes directly (everything goes through the plan cache) =="
if grep -rn "optimize(" crates/serve/src; then
  echo "crates/serve must resolve plans via vdm-core's cached session path"; exit 1
fi

echo "== metrics are registered only through vdm-obs (no stray metric name literals) =="
if grep -rn '"vdm_' crates --include='*.rs' | grep -v '^crates/obs/src'; then
  echo "metric names must come from vdm_obs::names, not string literals"; exit 1
fi

echo "== cargo clippy -D warnings (offline) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --no-deps (offline) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "CI OK"
