#!/usr/bin/env sh
# Offline CI gate: build, test, lint. No network access required —
# the workspace has zero external dependencies, so a vendored registry
# or plain `--offline` both work from a cold cache.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release (offline) =="
cargo build --release --workspace --offline

echo "== cargo test (offline) =="
cargo test -q --workspace --offline

echo "== cargo clippy -D warnings (offline) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --no-deps (offline) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "CI OK"
