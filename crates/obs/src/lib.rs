//! Query-lifecycle observability: rewrite traces, per-operator runtime
//! profiles, and a process-wide metrics registry.
//!
//! The paper's argument (§4–§6) is that VDM queries live or die by whether
//! specific rewrites — UAJ removal, ASJ elimination, limit pushdown across
//! augmentation joins — actually fire. This crate makes those decisions,
//! and the runtime behaviour of the resulting plans, inspectable:
//!
//! * [`rewrite`] — a thread-local event sink the optimizer passes report
//!   into: which rule fired, on which plan node, and what cardinality
//!   evidence justified it.
//! * [`profile`] — per-operator runtime stats ([`QueryProfile`]) keyed by
//!   the stable pre-order node ids of [`NodeIndex`], recorded by both the
//!   serial and morsel-driven parallel executors.
//! * [`registry`] — a zero-dependency [`MetricsRegistry`] of monotonic
//!   counters and latency histograms with JSON and Prometheus-text
//!   exporters.

pub mod profile;
pub mod registry;
pub mod rewrite;

pub use profile::{NodeIndex, NodeStats, QueryProfile};
pub use registry::MetricsRegistry;
pub use rewrite::RewriteEvent;
