//! Query-lifecycle observability: rewrite traces, per-operator runtime
//! profiles, structured query tracing, a process-wide metrics registry,
//! and a persistent plan-digest query store.
//!
//! The paper's argument (§4–§6) is that VDM queries live or die by whether
//! specific rewrites — UAJ removal, ASJ elimination, limit pushdown across
//! augmentation joins — actually fire. This crate makes those decisions,
//! and the runtime behaviour of the resulting plans, inspectable:
//!
//! * [`rewrite`] — a thread-local event sink the optimizer passes report
//!   into: which rule fired, on which plan node, and what cardinality
//!   evidence justified it.
//! * [`profile`] — per-operator runtime stats ([`QueryProfile`]) keyed by
//!   the stable pre-order node ids of [`NodeIndex`], recorded by both the
//!   serial and morsel-driven parallel executors.
//! * [`trace`] — structured spans ([`Span`]/[`QueryTrace`]) linking one
//!   query's plan-cache lookup, optimization, execution, and cached-view
//!   maintenance into a single causal tree (`EXPLAIN TRACE`).
//! * [`registry`] — a zero-dependency [`MetricsRegistry`] of monotonic
//!   counters, gauges, and log-linear latency histograms with JSON and
//!   Prometheus-text exporters; every exported name is catalogued in
//!   [`names`].
//! * [`store`] — the [`QueryStore`]: durable per-plan-digest execution
//!   history (latency histograms, rows in/out, per-node rows, cache
//!   hit/miss) with a recent-executions ring and a slow-query log.

pub mod hist;
pub mod names;
pub mod profile;
pub mod registry;
pub mod rewrite;
pub mod store;
pub mod trace;
pub mod util;

pub use hist::{LatencyHist, LE_BOUNDS};
pub use profile::{NodeIndex, NodeStats, QueryProfile};
pub use registry::MetricsRegistry;
pub use rewrite::RewriteEvent;
pub use store::{
    DigestAggregate, ExecRecord, FeedbackProvider, LoadReport, ObservedCardinalities, QueryStore,
    SlowQuery,
};
pub use trace::{QueryTrace, Span};
