//! Process-wide metrics: monotonic counters, up/down gauges, and latency
//! histograms with zero-dependency JSON and Prometheus-text exporters.
//!
//! Counter names may embed one Prometheus label set, e.g.
//! `vdm_rewrite_fired_total{rule="uaj-removal"}` (see [`label`]); the
//! exporters keep such keys intact and emit one `# TYPE` line per base
//! metric name.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Upper bucket bounds (seconds) for latency histograms — log-spaced from
/// 1 µs to 25 s, Prometheus `le` semantics (cumulative at export time).
const LE_BOUNDS: [f64; 12] =
    [1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 25e-4, 1e-2, 5e-2, 25e-2, 1.0, 5.0, 25.0];

/// One histogram: per-bound counts (non-cumulative internally) plus
/// running count and sum.
#[derive(Debug, Clone, Default)]
struct Histogram {
    buckets: [u64; LE_BOUNDS.len()],
    /// Observations above the largest bound.
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        match LE_BOUNDS.iter().position(|b| value <= *b) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value;
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// All methods take `&self`; the maps are mutex-guarded so executors and
/// the optimizer can report from any thread. Use [`MetricsRegistry::global`]
/// for the process-wide instance `vdm_core::Database` feeds.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Formats `name{key="value"}` for a labelled counter key.
pub fn label(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}=\"{}\"}}", value.replace('\\', "\\\\").replace('"', "\\\""))
}

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; the process-wide one is [`global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry (alias for the free [`global`] function).
    pub fn global() -> &'static MetricsRegistry {
        global()
    }

    /// Adds `by` to counter `name`, creating it at zero.
    pub fn inc(&self, name: &str, by: u64) {
        let mut counters = self.counters.lock().unwrap();
        *counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut gauges = self.gauges.lock().unwrap();
        gauges.insert(name.to_string(), value);
    }

    /// Adds `by` (may be negative) to gauge `name`, creating it at zero.
    pub fn gauge_add(&self, name: &str, by: i64) {
        let mut gauges = self.gauges.lock().unwrap();
        *gauges.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    /// Records one observation (seconds) into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut hists = self.histograms.lock().unwrap();
        hists.entry(name.to_string()).or_default().observe(value);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters.lock().unwrap().clone()
    }

    /// Renders everything as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {"name": {"count", "sum", "buckets": [{"le", "count"}...]}}}`.
    pub fn to_json(&self) -> String {
        let counters = self.counters.lock().unwrap().clone();
        let gauges = self.gauges.lock().unwrap().clone();
        let hists = self.histograms.lock().unwrap().clone();
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_string(name),
                h.count,
                json_number(h.sum)
            ));
            let mut cumulative = 0;
            for (bi, bound) in LE_BOUNDS.iter().enumerate() {
                cumulative += h.buckets[bi];
                if bi > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"le\": {}, \"count\": {cumulative}}}",
                    json_number(*bound)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders everything in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let counters = self.counters.lock().unwrap().clone();
        let gauges = self.gauges.lock().unwrap().clone();
        let hists = self.histograms.lock().unwrap().clone();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, v) in &counters {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} counter\n"));
                last_base = base.to_string();
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        last_base.clear();
        for (name, v) in &gauges {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} gauge\n"));
                last_base = base.to_string();
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &hists {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0;
            for (bi, bound) in LE_BOUNDS.iter().enumerate() {
                cumulative += h.buckets[bi];
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}.0", v.trunc() as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let reg = MetricsRegistry::new();
        reg.inc("vdm_queries_total", 1);
        reg.inc("vdm_queries_total", 2);
        reg.inc(&label("vdm_rewrite_fired_total", "rule", "uaj-removal"), 1);
        assert_eq!(reg.counter("vdm_queries_total"), 3);

        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE vdm_queries_total counter"));
        assert!(text.contains("vdm_queries_total 3"));
        assert!(text.contains("# TYPE vdm_rewrite_fired_total counter"));
        assert!(text.contains("vdm_rewrite_fired_total{rule=\"uaj-removal\"} 1"));

        let json = reg.to_json();
        assert!(json.contains("\"vdm_queries_total\": 3"));
    }

    #[test]
    fn histograms_bucket_cumulatively() {
        let reg = MetricsRegistry::new();
        reg.observe("vdm_query_seconds", 0.0004); // le 5e-4
        reg.observe("vdm_query_seconds", 0.0004);
        reg.observe("vdm_query_seconds", 30.0); // overflow
        let text = reg.to_prometheus();
        assert!(text.contains("vdm_query_seconds_bucket{le=\"0.0005\"} 2"));
        assert!(text.contains("vdm_query_seconds_bucket{le=\"25\"} 2"));
        assert!(text.contains("vdm_query_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("vdm_query_seconds_count 3"));
        let json = reg.to_json();
        assert!(json.contains("\"count\": 3"));
    }

    #[test]
    fn gauges_move_both_ways_and_export() {
        let reg = MetricsRegistry::new();
        reg.gauge_add("vdm_prepared_statements_open", 3);
        reg.gauge_add("vdm_prepared_statements_open", -1);
        assert_eq!(reg.gauge("vdm_prepared_statements_open"), 2);
        reg.gauge_set("vdm_prepared_statements_open", 7);
        assert_eq!(reg.gauge("vdm_prepared_statements_open"), 7);
        assert_eq!(reg.gauge("absent"), 0);

        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE vdm_prepared_statements_open gauge"));
        assert!(text.contains("vdm_prepared_statements_open 7"));

        let json = reg.to_json();
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"vdm_prepared_statements_open\": 7"));
    }

    #[test]
    fn label_escapes_quotes() {
        assert_eq!(label("m", "k", "a\"b"), "m{k=\"a\\\"b\"}");
    }
}
