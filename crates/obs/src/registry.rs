//! Process-wide metrics: monotonic counters, up/down gauges, and latency
//! histograms with zero-dependency JSON and Prometheus-text exporters.
//!
//! Counter names may embed one Prometheus label set, e.g.
//! `vdm_rewrite_fired_total{rule="uaj-removal"}` (see [`label`]); the
//! exporters keep such keys intact and emit one `# HELP`/`# TYPE` pair per
//! base metric name, with help text drawn from the [`names`] catalog.
//! Histograms share the log-linear [`LE_BOUNDS`](crate::hist::LE_BOUNDS) layout with the query
//! store, rendered cumulatively as Prometheus `_bucket`/`_sum`/`_count`.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::hist::LatencyHist;
use crate::names;
use crate::util::{json_number, json_string};

/// A registry of named counters, gauges, and histograms.
///
/// All methods take `&self`; the maps are mutex-guarded so executors and
/// the optimizer can report from any thread. Use [`MetricsRegistry::global`]
/// for the process-wide instance `vdm_core::Database` feeds.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, LatencyHist>>,
}

/// Formats `name{key="value"}` for a labelled counter key.
pub fn label(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}=\"{}\"}}", value.replace('\\', "\\\\").replace('"', "\\\""))
}

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

/// Emits `# HELP` (when catalogued in [`names`]) and `# TYPE` for `base`.
fn push_header(out: &mut String, base: &str, kind: names::MetricKind) {
    if let Some(desc) = names::describe(base) {
        out.push_str(&format!("# HELP {base} {}\n", desc.help));
    }
    out.push_str(&format!("# TYPE {base} {}\n", kind.token()));
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; the process-wide one is [`global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry (alias for the free [`global`] function).
    pub fn global() -> &'static MetricsRegistry {
        global()
    }

    /// Adds `by` to counter `name`, creating it at zero.
    pub fn inc(&self, name: &str, by: u64) {
        let mut counters = self.counters.lock().unwrap();
        *counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut gauges = self.gauges.lock().unwrap();
        gauges.insert(name.to_string(), value);
    }

    /// Adds `by` (may be negative) to gauge `name`, creating it at zero.
    pub fn gauge_add(&self, name: &str, by: i64) {
        let mut gauges = self.gauges.lock().unwrap();
        *gauges.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    /// Records one observation (seconds) into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut hists = self.histograms.lock().unwrap();
        hists.entry(name.to_string()).or_default().observe(value);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters.lock().unwrap().clone()
    }

    /// Snapshot of histogram `name`, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<LatencyHist> {
        self.histograms.lock().unwrap().get(name).cloned()
    }

    /// Estimated `q`-quantile (seconds) of histogram `name`; 0 when the
    /// histogram is absent or empty.
    pub fn quantile(&self, name: &str, q: f64) -> f64 {
        self.histograms.lock().unwrap().get(name).map(|h| h.quantile(q)).unwrap_or(0.0)
    }

    /// Every metric name currently registered (labelled keys intact),
    /// sorted — the basis of the catalog-coverage test.
    pub fn metric_names(&self) -> Vec<String> {
        let mut out: Vec<String> = self.counters.lock().unwrap().keys().cloned().collect();
        out.extend(self.gauges.lock().unwrap().keys().cloned());
        out.extend(self.histograms.lock().unwrap().keys().cloned());
        out.sort();
        out
    }

    /// Renders everything as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {"name": {"count", "sum", "buckets": [{"le", "count"}...]}}}`.
    pub fn to_json(&self) -> String {
        let counters = self.counters.lock().unwrap().clone();
        let gauges = self.gauges.lock().unwrap().clone();
        let hists = self.histograms.lock().unwrap().clone();
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_string(name),
                h.count(),
                json_number(h.sum())
            ));
            for (bi, (bound, cumulative)) in h.cumulative().enumerate() {
                if bi > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"le\": {}, \"count\": {cumulative}}}",
                    json_number(bound)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders everything in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let counters = self.counters.lock().unwrap().clone();
        let gauges = self.gauges.lock().unwrap().clone();
        let hists = self.histograms.lock().unwrap().clone();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, v) in &counters {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                push_header(&mut out, base, names::MetricKind::Counter);
                last_base = base.to_string();
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        last_base.clear();
        for (name, v) in &gauges {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                push_header(&mut out, base, names::MetricKind::Gauge);
                last_base = base.to_string();
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &hists {
            push_header(&mut out, name, names::MetricKind::Histogram);
            for (bound, cumulative) in h.cumulative() {
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let reg = MetricsRegistry::new();
        reg.inc(names::QUERIES_TOTAL, 1);
        reg.inc(names::QUERIES_TOTAL, 2);
        reg.inc(&label(names::REWRITE_FIRED_TOTAL, "rule", "uaj-removal"), 1);
        assert_eq!(reg.counter(names::QUERIES_TOTAL), 3);

        let text = reg.to_prometheus();
        assert!(text.contains("# HELP vdm_queries_total "));
        assert!(text.contains("# TYPE vdm_queries_total counter"));
        assert!(text.contains("vdm_queries_total 3"));
        assert!(text.contains("# TYPE vdm_rewrite_fired_total counter"));
        assert!(text.contains("vdm_rewrite_fired_total{rule=\"uaj-removal\"} 1"));

        let json = reg.to_json();
        assert!(json.contains("\"vdm_queries_total\": 3"));
    }

    #[test]
    fn histograms_bucket_cumulatively() {
        let reg = MetricsRegistry::new();
        reg.observe(names::QUERY_SECONDS, 0.0004); // le 5e-4
        reg.observe(names::QUERY_SECONDS, 0.0004);
        reg.observe(names::QUERY_SECONDS, 30.0); // le 50
        reg.observe(names::QUERY_SECONDS, 100.0); // overflow past every bound
        let text = reg.to_prometheus();
        assert!(text.contains("# HELP vdm_query_seconds "));
        assert!(text.contains("# TYPE vdm_query_seconds histogram"));
        assert!(text.contains("vdm_query_seconds_bucket{le=\"0.0005\"} 2"));
        assert!(text.contains("vdm_query_seconds_bucket{le=\"25\"} 2"));
        assert!(text.contains("vdm_query_seconds_bucket{le=\"50\"} 3"));
        assert!(text.contains("vdm_query_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("vdm_query_seconds_count 4"));
        let json = reg.to_json();
        assert!(json.contains("\"count\": 4"));

        let p50 = reg.quantile(names::QUERY_SECONDS, 0.5);
        assert!(p50 > 0.0 && p50 <= 5e-4, "{p50}");
        assert_eq!(reg.quantile("absent", 0.5), 0.0);
        assert_eq!(reg.histogram(names::QUERY_SECONDS).unwrap().count(), 4);
    }

    #[test]
    fn gauges_move_both_ways_and_export() {
        let reg = MetricsRegistry::new();
        reg.gauge_add(names::PREPARED_STATEMENTS_OPEN, 3);
        reg.gauge_add(names::PREPARED_STATEMENTS_OPEN, -1);
        assert_eq!(reg.gauge(names::PREPARED_STATEMENTS_OPEN), 2);
        reg.gauge_set(names::PREPARED_STATEMENTS_OPEN, 7);
        assert_eq!(reg.gauge(names::PREPARED_STATEMENTS_OPEN), 7);
        assert_eq!(reg.gauge("absent"), 0);

        let text = reg.to_prometheus();
        assert!(text.contains("# HELP vdm_prepared_statements_open "));
        assert!(text.contains("# TYPE vdm_prepared_statements_open gauge"));
        assert!(text.contains("vdm_prepared_statements_open 7"));

        let json = reg.to_json();
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"vdm_prepared_statements_open\": 7"));
    }

    #[test]
    fn metric_names_lists_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.inc(names::QUERIES_TOTAL, 1);
        reg.gauge_set(names::SESSIONS_OPEN, 1);
        reg.observe(names::QUERY_SECONDS, 0.1);
        assert_eq!(
            reg.metric_names(),
            vec![
                names::QUERIES_TOTAL.to_string(),
                names::QUERY_SECONDS.to_string(),
                names::SESSIONS_OPEN.to_string(),
            ]
        );
    }

    #[test]
    fn label_escapes_quotes() {
        assert_eq!(label("m", "k", "a\"b"), "m{k=\"a\\\"b\"}");
    }

    #[test]
    fn shared_bucket_layout_matches_the_store() {
        // The registry and the query store must agree on the layout so a
        // /metrics histogram and a per-digest histogram are comparable.
        use crate::hist::LE_BOUNDS;
        assert_eq!(LE_BOUNDS.len(), 24);
        assert_eq!(LE_BOUNDS[LE_BOUNDS.len() - 1], 50.0);
    }
}
