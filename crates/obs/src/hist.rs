//! Fixed-bucket log-linear latency histograms.
//!
//! One bucket layout serves both the [`MetricsRegistry`]'s Prometheus
//! histograms and the per-digest latency aggregates of the
//! [`QueryStore`]: eight decades from 1 µs to 50 s, three linear
//! sub-buckets per decade (1×, 2.5×, 5×). Log-linear keeps the relative
//! quantile-estimation error bounded (a value lands in a bucket at most
//! ~2.5× wide at its magnitude) with a fixed 24-slot footprint, so
//! per-shape histograms stay cheap enough to keep for every plan digest.
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry
//! [`QueryStore`]: crate::store::QueryStore

/// Upper bucket bounds in seconds, Prometheus `le` semantics. Values above
/// the last bound land in the implicit `+Inf` overflow bucket.
pub const LE_BOUNDS: [f64; 24] = [
    1e-6, 2.5e-6, 5e-6, // microseconds
    1e-5, 2.5e-5, 5e-5, //
    1e-4, 2.5e-4, 5e-4, // fractions of a millisecond
    1e-3, 2.5e-3, 5e-3, // milliseconds
    1e-2, 2.5e-2, 5e-2, //
    1e-1, 2.5e-1, 5e-1, // fractions of a second
    1.0, 2.5, 5.0, // seconds
    10.0, 25.0, 50.0, // tens of seconds
];

/// A log-linear histogram of durations in seconds: per-bound counts
/// (non-cumulative internally), an overflow bucket, and running
/// count/sum for means and Prometheus `_sum`/`_count`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHist {
    buckets: [u64; LE_BOUNDS.len()],
    overflow: u64,
    count: u64,
    sum: f64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Records one observation (seconds).
    pub fn observe(&mut self, seconds: f64) {
        match LE_BOUNDS.iter().position(|b| seconds <= *b) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += seconds;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (seconds).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (seconds), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Adds every observation of `other` into this histogram.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Cumulative `(le_bound, count)` pairs in Prometheus order; the
    /// caller appends the `+Inf` row from [`LatencyHist::count`].
    pub fn cumulative(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut cum = 0u64;
        LE_BOUNDS.iter().zip(self.buckets.iter()).map(move |(b, n)| {
            cum += n;
            (*b, cum)
        })
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) in seconds, linearly
    /// interpolated within the landing bucket. Observations past the last
    /// bound estimate as the mean of the overflow region (`sum` minus the
    /// bounded mass cannot be reconstructed exactly, so the last bound is
    /// the floor).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            let next = cum + n;
            if next >= target && *n > 0 {
                let lower = if i == 0 { 0.0 } else { LE_BOUNDS[i - 1] };
                let frac = (target - cum) as f64 / *n as f64;
                return lower + (LE_BOUNDS[i] - lower) * frac;
            }
            cum = next;
        }
        // Target falls in the overflow bucket.
        LE_BOUNDS[LE_BOUNDS.len() - 1].max(self.mean())
    }

    /// Raw per-bound counts plus the overflow bucket as the final element
    /// (the JSON-lines serialization of the query store).
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut v = self.buckets.to_vec();
        v.push(self.overflow);
        v
    }

    /// Rebuilds a histogram from [`LatencyHist::bucket_counts`] plus the
    /// recorded sum. Returns `None` when the bucket layout doesn't match
    /// (a file written under a different `LE_BOUNDS`).
    pub fn from_parts(counts: &[u64], sum: f64) -> Option<LatencyHist> {
        if counts.len() != LE_BOUNDS.len() + 1 {
            return None;
        }
        let mut h = LatencyHist::new();
        for (b, c) in h.buckets.iter_mut().zip(counts.iter()) {
            *b = *c;
        }
        h.overflow = counts[LE_BOUNDS.len()];
        h.count = counts.iter().sum();
        h.sum = sum;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_sorted_and_log_linear() {
        for w in LE_BOUNDS.windows(2) {
            assert!(w[0] < w[1]);
            // Each step grows by at most 2.5x: the log-linear guarantee
            // that bounds quantile error at any magnitude.
            assert!(w[1] / w[0] <= 2.5 + 1e-9, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let mut h = LatencyHist::new();
        for _ in 0..100 {
            h.observe(0.003); // bucket (2.5e-3, 5e-3]
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        assert!(p50 > 2.5e-3 && p50 <= 5e-3, "{p50}");
        // All mass in one bucket: p99 is in the same bucket.
        let p99 = h.quantile(0.99);
        assert!(p99 > 2.5e-3 && p99 <= 5e-3, "{p99}");
    }

    #[test]
    fn overflow_and_merge_round_trip() {
        let mut a = LatencyHist::new();
        a.observe(100.0); // overflow
        a.observe(1e-7); // first bucket
        let mut b = LatencyHist::new();
        b.observe(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile(1.0) >= 50.0);

        let rebuilt = LatencyHist::from_parts(&a.bucket_counts(), a.sum()).unwrap();
        assert_eq!(rebuilt, a);
        assert!(LatencyHist::from_parts(&[1, 2, 3], 0.0).is_none());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHist::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.cumulative().last(), Some((50.0, 0)));
    }
}
