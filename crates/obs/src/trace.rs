//! Structured query tracing: causally-linked spans covering one query's
//! whole lifecycle (plan-cache lookup → bind → optimize → execute →
//! cached-view maintenance), collected through a thread-local builder the
//! same way [`rewrite`](crate::rewrite) collects optimizer events.
//!
//! The emitting crates never hold a trace object: they open guards —
//! [`root`] at query entry, [`span`] around each phase — and annotate the
//! innermost open span with [`attr`]. Guards close LIFO on drop, so the
//! parent links always form a tree. When no trace is active (tracing
//! disabled, or code running outside a query) every call is a no-op that
//! costs one thread-local read, which is what keeps the always-on default
//! inside the ≤3% overhead budget.
//!
//! Nesting composes: if a root guard is opened while a trace is already
//! active (e.g. `Session::query` inside `Session::with_trace`), it becomes
//! a child span and the outermost owner still receives one tree.

use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::util::json_string;

/// One completed span of a query trace. Times are nanoseconds; `start`
/// is relative to the trace root's start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Position in [`QueryTrace::spans`] (pre-order: parents precede
    /// children, siblings in open order).
    pub id: u32,
    /// Parent span id; `None` only for the root.
    pub parent: Option<u32>,
    pub name: String,
    pub start_nanos: u64,
    pub wall_nanos: u64,
    /// Key=value annotations in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// The named attribute's value, if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A finished trace: the spans of one query in pre-order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Process-unique trace id.
    pub trace_id: u64,
    pub spans: Vec<Span>,
}

impl QueryTrace {
    /// Wall time of the root span, nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.spans.first().map(|s| s.wall_nanos).unwrap_or(0)
    }

    /// Wall time minus the wall time of direct children (time spent in
    /// the span itself), for span `id`.
    pub fn self_nanos(&self, id: u32) -> u64 {
        let span = &self.spans[id as usize];
        let children: u64 =
            self.spans.iter().filter(|s| s.parent == Some(id)).map(|s| s.wall_nanos).sum();
        span.wall_nanos.saturating_sub(children)
    }

    /// Renders the trace as an indented text tree:
    ///
    /// ```text
    /// trace 0000000000000001
    /// └─ query total=1.234ms self=0.100ms shape="select ..."
    ///    ├─ select_plan total=... self=...
    ///    └─ execute total=... rows=42
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("trace {:016x}\n", self.trace_id);
        if self.spans.is_empty() {
            return out;
        }
        self.render_node(0, "", true, &mut out);
        out
    }

    fn render_node(&self, id: u32, prefix: &str, last: bool, out: &mut String) {
        let span = &self.spans[id as usize];
        let branch = if last { "└─ " } else { "├─ " };
        out.push_str(prefix);
        out.push_str(branch);
        out.push_str(&span.name);
        out.push_str(&format!(
            " total={} self={}",
            fmt_nanos(span.wall_nanos),
            fmt_nanos(self.self_nanos(id))
        ));
        for (k, v) in &span.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        let children: Vec<u32> =
            self.spans.iter().filter(|s| s.parent == Some(id)).map(|s| s.id).collect();
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        for (i, c) in children.iter().enumerate() {
            self.render_node(*c, &child_prefix, i + 1 == children.len(), out);
        }
    }

    /// Exports the trace as one JSON object (span attrs as a nested
    /// object, `self_nanos` precomputed for consumers).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"trace_id\": \"{:016x}\", \"spans\": [", self.trace_id);
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"id\": {}, \"parent\": {}, \"name\": {}, \"start_nanos\": {}, \
                 \"wall_nanos\": {}, \"self_nanos\": {}, \"attrs\": {{",
                s.id,
                s.parent.map(|p| p.to_string()).unwrap_or_else(|| "null".to_string()),
                json_string(&s.name),
                s.start_nanos,
                s.wall_nanos,
                self.self_nanos(s.id),
            ));
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.1}us", nanos as f64 / 1e3)
    }
}

/// Global default for automatic per-query tracing.
static ENABLED: AtomicBool = AtomicBool::new(true);
/// Process-wide trace-id allocator (ids must be unique, not meaningful).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Whether automatic query tracing is on (default: on).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns automatic query tracing on or off process-wide. Explicit traces
/// ([`root_forced`], used by `EXPLAIN TRACE` and `Session::with_trace`)
/// still work when off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

struct OpenSpan {
    idx: usize,
    started: Instant,
}

struct Collector {
    trace_id: u64,
    origin: Instant,
    spans: Vec<Span>,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Guard for a root claim: the outermost one owns the trace and yields it
/// from [`RootGuard::finish`]; nested roots behave like plain spans.
pub struct RootGuard {
    owner: bool,
    span: SpanGuard,
}

/// Guard for one span; closes on drop. Inert when no trace is active.
pub struct SpanGuard {
    open: bool,
}

/// Opens a trace root named `name` if automatic tracing is enabled. When
/// a trace is already active on this thread the guard nests as a child
/// span and ownership stays with the outer root.
pub fn root(name: &str) -> RootGuard {
    root_inner(name, false)
}

/// Like [`root`], but starts a trace even when automatic tracing is
/// disabled — used by `EXPLAIN TRACE` and explicit trace scopes.
pub fn root_forced(name: &str) -> RootGuard {
    root_inner(name, true)
}

fn root_inner(name: &str, forced: bool) -> RootGuard {
    COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_some() {
            drop(slot);
            return RootGuard { owner: false, span: open_span(name) };
        }
        if !forced && !enabled() {
            return RootGuard { owner: false, span: SpanGuard { open: false } };
        }
        let now = Instant::now();
        *slot = Some(Collector {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            origin: now,
            spans: vec![Span {
                id: 0,
                parent: None,
                name: name.to_string(),
                start_nanos: 0,
                wall_nanos: 0,
                attrs: Vec::new(),
            }],
            stack: vec![OpenSpan { idx: 0, started: now }],
        });
        RootGuard { owner: true, span: SpanGuard { open: true } }
    })
}

/// Opens a child span of the innermost open span. Inert when no trace is
/// active on this thread.
pub fn span(name: &str) -> SpanGuard {
    open_span(name)
}

fn open_span(name: &str) -> SpanGuard {
    COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        let Some(col) = slot.as_mut() else {
            return SpanGuard { open: false };
        };
        let now = Instant::now();
        let parent = col.stack.last().map(|o| col.spans[o.idx].id);
        let idx = col.spans.len();
        col.spans.push(Span {
            id: idx as u32,
            parent,
            name: name.to_string(),
            start_nanos: now.duration_since(col.origin).as_nanos() as u64,
            wall_nanos: 0,
            attrs: Vec::new(),
        });
        col.stack.push(OpenSpan { idx, started: now });
        SpanGuard { open: true }
    })
}

/// Annotates the innermost open span with `key=value`. No-op without an
/// active trace.
pub fn attr(key: &str, value: impl Display) {
    COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(col) = slot.as_mut() {
            if let Some(open) = col.stack.last() {
                col.spans[open.idx].attrs.push((key.to_string(), value.to_string()));
            }
        }
    });
}

fn close_innermost() {
    COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(col) = slot.as_mut() {
            if let Some(open) = col.stack.pop() {
                col.spans[open.idx].wall_nanos = open.started.elapsed().as_nanos() as u64;
            }
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.open {
            self.open = false;
            close_innermost();
        }
    }
}

impl RootGuard {
    /// Closes the root span. The owning (outermost) guard returns the
    /// finished trace; nested roots and disabled claims return `None`.
    pub fn finish(mut self) -> Option<QueryTrace> {
        if !self.span.open {
            return None;
        }
        self.span.open = false;
        close_innermost();
        if !self.owner {
            return None;
        }
        let trace = COLLECTOR.with(|cell| {
            let col = cell.borrow_mut().take()?;
            Some(QueryTrace { trace_id: col.trace_id, spans: col.spans })
        });
        if trace.is_some() {
            crate::registry::global().inc(crate::names::TRACES_TOTAL, 1);
        }
        trace
    }
}

impl Drop for RootGuard {
    fn drop(&mut self) {
        if self.span.open {
            self.span.open = false;
            close_innermost();
            if self.owner {
                COLLECTOR.with(|cell| cell.borrow_mut().take());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_form_a_tree_with_causal_links() {
        let r = root_forced("query");
        attr("shape", "select 1");
        {
            let _plan = span("select_plan");
            {
                let _lookup = span("plan_cache.lookup");
                attr("outcome", "miss");
            }
            let _opt = span("optimize");
        }
        let _exec = span("execute");
        drop(_exec);
        let trace = r.finish().expect("owner gets the trace");

        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["query", "select_plan", "plan_cache.lookup", "optimize", "execute"]);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[2].parent, Some(1));
        assert_eq!(trace.spans[3].parent, Some(1));
        assert_eq!(trace.spans[4].parent, Some(0));
        assert_eq!(trace.spans[2].attr("outcome"), Some("miss"));
        assert!(trace.total_nanos() >= trace.spans[1].wall_nanos);

        let text = trace.render();
        assert!(text.contains("└─ query total="), "{text}");
        assert!(text.contains("│  ├─ plan_cache.lookup"), "{text}");
        let json = trace.to_json();
        assert!(json.contains("\"name\": \"optimize\""), "{json}");
        assert!(json.contains("\"parent\": 1"), "{json}");
    }

    #[test]
    fn nested_roots_fold_into_the_outer_trace() {
        let outer = root_forced("scope");
        let inner = root("query");
        let _child = span("execute");
        drop(_child);
        assert!(inner.finish().is_none(), "nested root is not the owner");
        let trace = outer.finish().unwrap();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["scope", "query", "execute"]);
        assert_eq!(trace.spans[1].parent, Some(0));
    }

    #[test]
    fn disabled_tracing_is_inert_but_forced_roots_still_work() {
        set_enabled(false);
        let r = root("query");
        let _s = span("execute");
        attr("rows", 1);
        drop(_s);
        assert!(r.finish().is_none());

        let f = root_forced("explain trace");
        let trace = f.finish().unwrap();
        assert_eq!(trace.spans.len(), 1);
        set_enabled(true);
    }

    #[test]
    fn dropped_root_clears_the_thread_state() {
        {
            let _r = root_forced("query");
            let _s = span("execute");
        }
        // A fresh root must start a brand-new trace, not nest.
        let r = root_forced("query2");
        let trace = r.finish().unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "query2");
    }
}
