//! The persistent plan-digest query store: durable, per-query-shape
//! execution history feeding the serve layer and (next) feedback-driven
//! optimization.
//!
//! Three structures live behind one mutex:
//!
//! * **Per-digest aggregates** keyed by `plan_digest_canonical` — exec
//!   count, plan-cache hit/miss split, rows in/out, a fixed-bucket
//!   log-linear latency histogram ([`LatencyHist`]) for p50/p95/p99, the
//!   last worker count, and cumulative per-node `rows_out` from
//!   [`QueryProfile`](crate::QueryProfile). This is deliberately the
//!   exact input a feedback-driven join-ordering pass needs, so the
//!   JSON-lines serialization is a documented stable schema
//!   (DESIGN.md §13).
//! * **A ring buffer** of the most recent executions (FIFO eviction),
//!   for "what ran just now" diagnostics.
//! * **A slow-query log** capturing the full `EXPLAIN ANALYZE` text of
//!   executions over a configurable latency threshold.
//!
//! The store is enabled by default; recording is one short mutex hold
//! per query. Callers check [`QueryStore::slow_threshold_nanos`] before
//! rendering EXPLAIN ANALYZE text so the expensive rendering only happens
//! for queries that will actually be captured.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::hist::LatencyHist;
use crate::util::{json_number, json_string, Json};
use crate::{names, registry};

/// Schema version stamped on every JSON-lines record. Version 2 added
/// `node_est` (per-node estimated rows); version-1 files still load, with
/// estimates empty. Unknown versions and malformed lines are skipped and
/// counted, never a hard failure — see [`QueryStore::load_jsonl_str`].
pub const SCHEMA_VERSION: u64 = 2;

/// One finished execution, as reported by `vdm-core`.
#[derive(Debug, Clone, Default)]
pub struct ExecRecord {
    /// `plan_digest_canonical` of the executed plan.
    pub digest: u64,
    /// Canonical statement shape (parameters replaced by placeholders).
    pub shape: String,
    pub latency_nanos: u64,
    /// Rows scanned out of base tables.
    pub rows_in: u64,
    /// Rows returned to the client.
    pub rows_out: u64,
    /// Whether the parameterized plan cache served the plan.
    pub cache_hit: bool,
    pub workers: u32,
    /// Per-plan-node output rows `(node_id, rows_out)` from the profiled
    /// executor; empty when profiling was off for this query.
    pub node_rows: Vec<(u32, u64)>,
    /// Per-plan-node *estimated* rows `(node_id, est)` from the optimizer's
    /// cardinality model; empty when no statistics were available.
    pub node_est: Vec<(u32, u64)>,
    /// Rendered EXPLAIN ANALYZE text; only expected when `latency_nanos`
    /// is over the slow threshold.
    pub explain: Option<String>,
}

/// Aggregated history for one plan digest.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestAggregate {
    pub digest: u64,
    pub shape: String,
    pub execs: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub rows_in_total: u64,
    pub rows_out_total: u64,
    pub latency: LatencyHist,
    /// Worker count of the most recent execution.
    pub workers_last: u32,
    /// Cumulative rows_out per plan node id, sorted by node id.
    pub node_rows: BTreeMap<u32, u64>,
    /// Estimated rows per plan node id from the most recent execution
    /// that carried estimates (last write wins — estimates are a property
    /// of the current plan, not an accumulating quantity).
    pub node_est: BTreeMap<u32, u64>,
}

impl DigestAggregate {
    fn new(digest: u64, shape: &str) -> DigestAggregate {
        DigestAggregate {
            digest,
            shape: shape.to_string(),
            execs: 0,
            cache_hits: 0,
            cache_misses: 0,
            rows_in_total: 0,
            rows_out_total: 0,
            latency: LatencyHist::new(),
            workers_last: 0,
            node_rows: BTreeMap::new(),
            node_est: BTreeMap::new(),
        }
    }

    /// Estimated latency quantile in seconds (log-linear histogram).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency.quantile(q)
    }

    /// One JSON-lines record (the stable on-disk schema, version
    /// [`SCHEMA_VERSION`]; see DESIGN.md §13).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"v\": {SCHEMA_VERSION}, \"digest\": \"{:016x}\", \"shape\": {}, \
             \"execs\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"rows_in\": {}, \"rows_out\": {}, \"workers_last\": {}, \
             \"latency_sum\": {}, \"latency_buckets\": [",
            self.digest,
            json_string(&self.shape),
            self.execs,
            self.cache_hits,
            self.cache_misses,
            self.rows_in_total,
            self.rows_out_total,
            self.workers_last,
            json_number(self.latency.sum()),
        );
        for (i, c) in self.latency.bucket_counts().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&c.to_string());
        }
        out.push_str("], \"node_rows\": [");
        for (i, (node, rows)) in self.node_rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{node}, {rows}]"));
        }
        out.push_str("], \"node_est\": [");
        for (i, (node, est)) in self.node_est.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{node}, {est}]"));
        }
        out.push_str("]}");
        out
    }

    /// Parses one JSON-lines record written by [`to_json_line`].
    ///
    /// [`to_json_line`]: DigestAggregate::to_json_line
    pub fn from_json_line(line: &str) -> Result<DigestAggregate, String> {
        let v = Json::parse(line)?;
        let version = v.get("v").and_then(Json::as_u64).ok_or("missing v")?;
        // v1 records lack `node_est` and load with empty estimates; later
        // versions are unknown and rejected (the loader skip-and-counts).
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(format!("unsupported schema version {version}"));
        }
        let digest_hex = v.get("digest").and_then(Json::as_str).ok_or("missing digest")?;
        let digest = u64::from_str_radix(digest_hex, 16).map_err(|e| e.to_string())?;
        let need = |key: &str| v.get(key).and_then(Json::as_u64).ok_or(format!("missing {key}"));
        let counts: Vec<u64> = v
            .get("latency_buckets")
            .and_then(Json::as_array)
            .ok_or("missing latency_buckets")?
            .iter()
            .map(|c| c.as_u64().ok_or("bad bucket count"))
            .collect::<Result<_, _>>()?;
        let sum = v.get("latency_sum").and_then(Json::as_f64).ok_or("missing latency_sum")?;
        let latency = LatencyHist::from_parts(&counts, sum)
            .ok_or("bucket layout mismatch (file written under different LE_BOUNDS)")?;
        let mut node_rows = BTreeMap::new();
        for pair in v.get("node_rows").and_then(Json::as_array).ok_or("missing node_rows")? {
            let pair = pair.as_array().filter(|p| p.len() == 2).ok_or("bad node_rows pair")?;
            node_rows.insert(
                pair[0].as_u64().ok_or("bad node id")? as u32,
                pair[1].as_u64().ok_or("bad node rows")?,
            );
        }
        let mut node_est = BTreeMap::new();
        if version >= 2 {
            for pair in v.get("node_est").and_then(Json::as_array).ok_or("missing node_est")? {
                let pair = pair.as_array().filter(|p| p.len() == 2).ok_or("bad node_est pair")?;
                node_est.insert(
                    pair[0].as_u64().ok_or("bad node id")? as u32,
                    pair[1].as_u64().ok_or("bad node est")?,
                );
            }
        }
        Ok(DigestAggregate {
            digest,
            shape: v.get("shape").and_then(Json::as_str).ok_or("missing shape")?.to_string(),
            execs: need("execs")?,
            cache_hits: need("cache_hits")?,
            cache_misses: need("cache_misses")?,
            rows_in_total: need("rows_in")?,
            rows_out_total: need("rows_out")?,
            latency,
            workers_last: need("workers_last")? as u32,
            node_rows,
            node_est,
        })
    }
}

/// One entry of the recent-executions ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecSample {
    pub digest: u64,
    pub latency_nanos: u64,
    pub rows_out: u64,
    pub cache_hit: bool,
    pub workers: u32,
}

/// One captured slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    pub digest: u64,
    pub shape: String,
    pub latency_nanos: u64,
    /// Full EXPLAIN ANALYZE output at capture time (empty when the
    /// caller could not render one).
    pub explain: String,
}

#[derive(Debug, Default)]
struct Inner {
    aggregates: BTreeMap<u64, DigestAggregate>,
    ring: VecDeque<ExecSample>,
    ring_capacity: usize,
    slow: VecDeque<SlowQuery>,
    slow_capacity: usize,
}

/// The query store. Use [`QueryStore::global`] for the process-wide
/// instance `vdm-core` records into; `new()` instances serve tests.
#[derive(Debug)]
pub struct QueryStore {
    inner: Mutex<Inner>,
    enabled: AtomicBool,
    slow_threshold_nanos: AtomicU64,
}

impl Default for QueryStore {
    fn default() -> QueryStore {
        QueryStore::new()
    }
}

/// Ring-buffer capacity of a fresh store.
pub const DEFAULT_RING_CAPACITY: usize = 512;
/// Slow-query log capacity of a fresh store.
pub const DEFAULT_SLOW_CAPACITY: usize = 32;

impl QueryStore {
    /// A fresh store: enabled, ring of [`DEFAULT_RING_CAPACITY`], slow
    /// log of [`DEFAULT_SLOW_CAPACITY`], slow threshold off.
    pub fn new() -> QueryStore {
        QueryStore {
            inner: Mutex::new(Inner {
                aggregates: BTreeMap::new(),
                ring: VecDeque::new(),
                ring_capacity: DEFAULT_RING_CAPACITY,
                slow: VecDeque::new(),
                slow_capacity: DEFAULT_SLOW_CAPACITY,
            }),
            enabled: AtomicBool::new(true),
            slow_threshold_nanos: AtomicU64::new(u64::MAX),
        }
    }

    /// The process-wide store.
    pub fn global() -> &'static QueryStore {
        static GLOBAL: OnceLock<QueryStore> = OnceLock::new();
        GLOBAL.get_or_init(QueryStore::new)
    }

    /// Whether recording is on (default: on).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Latency threshold above which executions are captured into the
    /// slow-query log. `u64::MAX` (the default) disables capture.
    pub fn slow_threshold_nanos(&self) -> u64 {
        self.slow_threshold_nanos.load(Ordering::Relaxed)
    }

    /// Sets the slow-query capture threshold.
    pub fn set_slow_threshold_nanos(&self, nanos: u64) {
        self.slow_threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Resizes the recent-executions ring (evicts oldest if shrinking).
    pub fn set_ring_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.ring_capacity = capacity;
        while inner.ring.len() > capacity {
            inner.ring.pop_front();
        }
    }

    /// Records one finished execution. No-op when disabled.
    pub fn record(&self, rec: ExecRecord) {
        if !self.enabled() {
            return;
        }
        let slow = rec.latency_nanos >= self.slow_threshold_nanos();
        {
            let mut inner = self.inner.lock().unwrap();
            let agg = inner
                .aggregates
                .entry(rec.digest)
                .or_insert_with(|| DigestAggregate::new(rec.digest, &rec.shape));
            agg.execs += 1;
            if rec.cache_hit {
                agg.cache_hits += 1;
            } else {
                agg.cache_misses += 1;
            }
            agg.rows_in_total += rec.rows_in;
            agg.rows_out_total += rec.rows_out;
            agg.latency.observe(rec.latency_nanos as f64 / 1e9);
            agg.workers_last = rec.workers;
            for (node, rows) in &rec.node_rows {
                *agg.node_rows.entry(*node).or_insert(0) += rows;
            }
            if !rec.node_est.is_empty() {
                agg.node_est = rec.node_est.iter().copied().collect();
            }

            if inner.ring_capacity > 0 {
                if inner.ring.len() == inner.ring_capacity {
                    inner.ring.pop_front();
                }
                inner.ring.push_back(ExecSample {
                    digest: rec.digest,
                    latency_nanos: rec.latency_nanos,
                    rows_out: rec.rows_out,
                    cache_hit: rec.cache_hit,
                    workers: rec.workers,
                });
            }

            if slow && inner.slow_capacity > 0 {
                if inner.slow.len() == inner.slow_capacity {
                    inner.slow.pop_front();
                }
                inner.slow.push_back(SlowQuery {
                    digest: rec.digest,
                    shape: rec.shape.clone(),
                    latency_nanos: rec.latency_nanos,
                    explain: rec.explain.unwrap_or_default(),
                });
            }
        }
        registry::global().inc(names::STORE_RECORDS_TOTAL, 1);
        if slow {
            registry::global().inc(names::SLOW_QUERIES_TOTAL, 1);
        }
    }

    /// Snapshot of all per-digest aggregates, sorted by digest.
    pub fn aggregates(&self) -> Vec<DigestAggregate> {
        self.inner.lock().unwrap().aggregates.values().cloned().collect()
    }

    /// The aggregate for one digest.
    pub fn aggregate(&self, digest: u64) -> Option<DigestAggregate> {
        self.inner.lock().unwrap().aggregates.get(&digest).cloned()
    }

    /// Snapshot of the recent-executions ring, oldest first.
    pub fn recent(&self) -> Vec<ExecSample> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Snapshot of the slow-query log, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.inner.lock().unwrap().slow.iter().cloned().collect()
    }

    /// Drops all aggregates, ring entries, and slow captures (capacities
    /// and flags keep their values).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.aggregates.clear();
        inner.ring.clear();
        inner.slow.clear();
    }

    /// Serializes every aggregate as JSON lines (one digest per line,
    /// sorted by digest — deterministic output for a given state).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for agg in self.inner.lock().unwrap().aggregates.values() {
            out.push_str(&agg.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Loads aggregates from JSON-lines text, merging into existing
    /// entries (histograms merge, counts add; a loaded shape wins only
    /// for digests not yet present; estimates take the incoming value
    /// when present).
    ///
    /// Unknown schema versions and malformed lines are *skipped and
    /// counted*, never a hard failure: a store written by a newer build
    /// (schema v3+) or a corrupted tail must not take down loading of
    /// every readable record.
    pub fn load_jsonl_str(&self, text: &str) -> LoadReport {
        let mut report = LoadReport::default();
        let mut inner = self.inner.lock().unwrap();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let agg = match DigestAggregate::from_json_line(line) {
                Ok(agg) => agg,
                Err(e) => {
                    report.skipped += 1;
                    if report.first_error.is_none() {
                        report.first_error = Some(format!("line {}: {e}", lineno + 1));
                    }
                    continue;
                }
            };
            match inner.aggregates.get_mut(&agg.digest) {
                None => {
                    inner.aggregates.insert(agg.digest, agg);
                }
                Some(existing) => {
                    existing.execs += agg.execs;
                    existing.cache_hits += agg.cache_hits;
                    existing.cache_misses += agg.cache_misses;
                    existing.rows_in_total += agg.rows_in_total;
                    existing.rows_out_total += agg.rows_out_total;
                    existing.latency.merge(&agg.latency);
                    existing.workers_last = agg.workers_last;
                    for (node, rows) in agg.node_rows {
                        *existing.node_rows.entry(node).or_insert(0) += rows;
                    }
                    if !agg.node_est.is_empty() {
                        existing.node_est = agg.node_est;
                    }
                }
            }
            report.loaded += 1;
        }
        report
    }

    /// Writes [`QueryStore::to_jsonl`] to `path` (replacing the file).
    pub fn save_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }

    /// Loads a JSON-lines file written by [`QueryStore::save_jsonl`].
    /// IO errors fail; unreadable records are skipped (see
    /// [`QueryStore::load_jsonl_str`]).
    pub fn load_jsonl(&self, path: &Path) -> std::io::Result<LoadReport> {
        let text = std::fs::read_to_string(path)?;
        Ok(self.load_jsonl_str(&text))
    }
}

/// Outcome of a JSON-lines load: how many records merged, how many were
/// skipped as unknown/malformed, and the first skip reason for diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    pub loaded: usize,
    pub skipped: usize,
    pub first_error: Option<String>,
}

/// Observed per-node cardinalities for one plan digest, averaged per
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedCardinalities {
    /// Executions backing the averages.
    pub execs: u64,
    /// `(pre-order node id, average rows_out per execution)`.
    pub node_rows: Vec<(u32, f64)>,
}

/// The optimizer-facing window onto execution feedback. Rules and the
/// re-optimization path consume observed cardinalities *only* through
/// this trait (CI greps that no optimizer code names `QueryStore`), so
/// the store stays swappable and tests can feed synthetic histories.
pub trait FeedbackProvider {
    /// Observed per-node cardinalities for `digest`, or `None` when the
    /// digest has no recorded executions.
    fn observed(&self, digest: u64) -> Option<ObservedCardinalities>;
}

impl FeedbackProvider for QueryStore {
    fn observed(&self, digest: u64) -> Option<ObservedCardinalities> {
        let agg = self.aggregate(digest)?;
        if agg.execs == 0 {
            return None;
        }
        let node_rows = agg
            .node_rows
            .iter()
            .map(|(&node, &rows)| (node, rows as f64 / agg.execs as f64))
            .collect();
        Some(ObservedCardinalities { execs: agg.execs, node_rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(digest: u64, nanos: u64, hit: bool) -> ExecRecord {
        ExecRecord {
            digest,
            shape: format!("select {digest}"),
            latency_nanos: nanos,
            rows_in: 10,
            rows_out: 3,
            cache_hit: hit,
            workers: 4,
            node_rows: vec![(0, 3), (1, 10)],
            node_est: vec![(0, 5), (1, 12)],
            explain: None,
        }
    }

    #[test]
    fn aggregates_accumulate_by_digest() {
        let store = QueryStore::new();
        store.record(rec(7, 1_000_000, false));
        store.record(rec(7, 2_000_000, true));
        store.record(rec(9, 5_000_000, true));
        let agg = store.aggregate(7).unwrap();
        assert_eq!(agg.execs, 2);
        assert_eq!((agg.cache_hits, agg.cache_misses), (1, 1));
        assert_eq!(agg.rows_out_total, 6);
        assert_eq!(agg.node_rows.get(&1), Some(&20));
        assert_eq!(store.aggregates().len(), 2);
        let p50 = agg.latency_quantile(0.5);
        assert!(p50 > 0.0 && p50 < 0.01, "{p50}");
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let store = QueryStore::new();
        store.set_ring_capacity(2);
        store.record(rec(1, 1, false));
        store.record(rec(2, 2, false));
        store.record(rec(3, 3, false));
        let digests: Vec<u64> = store.recent().iter().map(|s| s.digest).collect();
        assert_eq!(digests, [2, 3]);
    }

    #[test]
    fn jsonl_round_trips_to_identical_aggregates() {
        let store = QueryStore::new();
        store.record(rec(0xdead_beef, 750_000, true));
        store.record(rec(0xdead_beef, 1_250_000, false));
        store.record(rec(42, u64::MAX / 2, false)); // overflow bucket
        let text = store.to_jsonl();
        let reloaded = QueryStore::new();
        let report = reloaded.load_jsonl_str(&text);
        assert_eq!((report.loaded, report.skipped), (2, 0));
        assert_eq!(reloaded.aggregates(), store.aggregates());
        // And the merge path doubles counts deterministically (estimates
        // are last-write-wins, not additive).
        assert_eq!(reloaded.load_jsonl_str(&text).loaded, 2);
        assert_eq!(reloaded.aggregate(42).unwrap().execs, 2);
        assert_eq!(reloaded.aggregate(42).unwrap().node_est.get(&0), Some(&5));
    }

    #[test]
    fn slow_threshold_captures_explain() {
        let store = QueryStore::new();
        store.set_slow_threshold_nanos(1_000_000);
        store.record(rec(1, 999_999, false));
        let mut slow = rec(2, 1_000_001, false);
        slow.explain = Some("Scan journal ...".to_string());
        store.record(slow);
        let log = store.slow_queries();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].digest, 2);
        assert!(log[0].explain.contains("Scan journal"));
    }

    #[test]
    fn disabled_store_records_nothing() {
        let store = QueryStore::new();
        store.set_enabled(false);
        store.record(rec(1, 1, false));
        assert!(store.aggregates().is_empty());
        assert!(store.recent().is_empty());
    }

    #[test]
    fn load_skips_and_counts_foreign_or_malformed_records() {
        let store = QueryStore::new();
        store.record(rec(7, 1_000_000, false));
        let good = store.to_jsonl();
        let mixed = format!("{{\"v\": 99, \"digest\": \"0\"}}\nnot json\n{good}");
        let fresh = QueryStore::new();
        let report = fresh.load_jsonl_str(&mixed);
        assert_eq!((report.loaded, report.skipped), (1, 2));
        let first = report.first_error.unwrap();
        assert!(first.contains("line 1") && first.contains("schema version"), "{first}");
        assert_eq!(fresh.aggregate(7).unwrap().execs, 1);
    }

    #[test]
    fn v1_records_load_with_empty_estimates() {
        // A hand-built v1 line: no node_est field at all.
        let line = "{\"v\": 1, \"digest\": \"002a\", \"shape\": \"select 1\", \
                    \"execs\": 3, \"cache_hits\": 1, \"cache_misses\": 2, \
                    \"rows_in\": 30, \"rows_out\": 9, \"workers_last\": 2, \
                    \"latency_sum\": 0.5, \"latency_buckets\": []}";
        // Pad the bucket array to the real layout so from_parts accepts it.
        let buckets: Vec<String> = crate::hist::LE_BOUNDS.iter().map(|_| "0".to_string()).collect();
        let line = line.replace(
            "\"latency_buckets\": []",
            &format!("\"latency_buckets\": [{}, 0]", buckets.join(", ")),
        );
        let line = format!("{}, \"node_rows\": [[0, 9]]}}", &line[..line.len() - 1]);
        let store = QueryStore::new();
        let report = store.load_jsonl_str(&line);
        assert_eq!((report.loaded, report.skipped), (1, 0), "{:?}", report.first_error);
        let agg = store.aggregate(0x2a).unwrap();
        assert_eq!(agg.execs, 3);
        assert!(agg.node_est.is_empty());
    }
}
