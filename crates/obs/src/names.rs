//! The canonical catalog of every metric the workspace emits.
//!
//! Each metric has exactly one home here: a `pub const` name used by the
//! emitting crate (CI greps that no `"vdm_` string literal exists outside
//! `crates/obs`) and a [`MetricDesc`] entry that gives the Prometheus
//! exporter its `# HELP` text and expected `# TYPE`. Adding a metric
//! anywhere else without registering it here fails the
//! `metric_catalog_covers_every_export` test in `tests/observability.rs`.

/// Prometheus metric type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    /// The `# TYPE` token.
    pub fn token(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One catalogued metric: base name (labels excluded), type, help text.
#[derive(Debug, Clone, Copy)]
pub struct MetricDesc {
    pub name: &'static str,
    pub kind: MetricKind,
    pub help: &'static str,
}

// -------------------------------------------------------------- queries
/// SELECT statements executed end to end.
pub const QUERIES_TOTAL: &str = "vdm_queries_total";
/// End-to-end SELECT latency (plan resolution + execution), seconds.
pub const QUERY_SECONDS: &str = "vdm_query_seconds";
/// Optimizer time spent per plan resolution, seconds.
pub const OPTIMIZE_SECONDS: &str = "vdm_optimize_seconds";
/// Rows read out of base-table scans.
pub const ROWS_SCANNED_TOTAL: &str = "vdm_rows_scanned_total";
/// Rows produced by join operators.
pub const ROWS_JOINED_TOTAL: &str = "vdm_rows_joined_total";
/// Rewrite-rule firings, labelled `{rule="..."}`.
pub const REWRITE_FIRED_TOTAL: &str = "vdm_rewrite_fired_total";

// ------------------------------------------------------------ scheduler
/// Morsel ranges an idle worker stole from another worker's deque.
pub const MORSEL_STEALS_TOTAL: &str = "vdm_morsel_steals_total";
/// Estimated payload bytes dispatched in scan morsels and operator chunks.
pub const MORSEL_SIZE_BYTES: &str = "vdm_morsel_size_bytes";

// ------------------------------------------------------------ optimizer
/// Property-cache hits during optimization.
pub const OPT_PROPERTY_CACHE_HITS_TOTAL: &str = "vdm_opt_property_cache_hits_total";
/// Property-cache misses during optimization.
pub const OPT_PROPERTY_CACHE_MISSES_TOTAL: &str = "vdm_opt_property_cache_misses_total";

// ------------------------------------------------------------ plan cache
/// Parameterized-plan cache hits.
pub const PLAN_CACHE_HITS_TOTAL: &str = "vdm_plan_cache_hits_total";
/// Parameterized-plan cache misses (bind + optimize paid).
pub const PLAN_CACHE_MISSES_TOTAL: &str = "vdm_plan_cache_misses_total";
/// Plans evicted by the cache's LRU policy.
pub const PLAN_CACHE_EVICTIONS_TOTAL: &str = "vdm_plan_cache_evictions_total";

// ---------------------------------------------------------- cached views
/// Cached-view maintenance passes, labelled `{kind="full|incremental|noop"}`.
pub const VIEW_REFRESH_TOTAL: &str = "vdm_view_refresh_total";
/// Cached-view maintenance latency, seconds.
pub const VIEW_REFRESH_SECONDS: &str = "vdm_view_refresh_seconds";
/// Signed delta rows (both signs) folded into cached views.
pub const VIEW_DELTA_ROWS_TOTAL: &str = "vdm_view_delta_rows_total";

// -------------------------------------------------------------- serving
/// Prepared statements currently alive.
pub const PREPARED_STATEMENTS_OPEN: &str = "vdm_prepared_statements_open";
/// Serve-layer sessions currently open.
pub const SESSIONS_OPEN: &str = "vdm_sessions_open";
/// Queries currently between admission and completion.
pub const INFLIGHT_QUERIES: &str = "vdm_inflight_queries";
/// Queries executed per session, labelled `{session="N"}`.
pub const SESSION_QUERIES_TOTAL: &str = "vdm_session_queries_total";
/// Admission wait before execution starts (state-lock + plan resolution),
/// seconds.
pub const QUEUE_WAIT_SECONDS: &str = "vdm_queue_wait_seconds";

// ------------------------------------------------- tracing + query store
/// Query traces finished and published.
pub const TRACES_TOTAL: &str = "vdm_traces_total";
/// Executions recorded into the query store.
pub const STORE_RECORDS_TOTAL: &str = "vdm_store_records_total";
/// Executions over the slow-query threshold, captured with full
/// EXPLAIN ANALYZE output.
pub const SLOW_QUERIES_TOTAL: &str = "vdm_slow_queries_total";
/// Cached plans re-optimized because observed cardinalities disagreed
/// with the plan's estimates beyond the misestimate threshold.
pub const REOPTIMIZATIONS_TOTAL: &str = "vdm_reoptimizations_total";

/// Every metric the workspace emits. Kept sorted by name so the catalog
/// doubles as documentation.
pub const ALL: &[MetricDesc] = &[
    MetricDesc {
        name: INFLIGHT_QUERIES,
        kind: MetricKind::Gauge,
        help: "Queries currently between admission and completion.",
    },
    MetricDesc {
        name: MORSEL_SIZE_BYTES,
        kind: MetricKind::Counter,
        help: "Estimated payload bytes dispatched in scan morsels and operator chunks.",
    },
    MetricDesc {
        name: MORSEL_STEALS_TOTAL,
        kind: MetricKind::Counter,
        help: "Morsel ranges an idle worker stole from another worker's deque.",
    },
    MetricDesc {
        name: OPT_PROPERTY_CACHE_HITS_TOTAL,
        kind: MetricKind::Counter,
        help: "Property-cache hits during optimization.",
    },
    MetricDesc {
        name: OPT_PROPERTY_CACHE_MISSES_TOTAL,
        kind: MetricKind::Counter,
        help: "Property-cache misses during optimization.",
    },
    MetricDesc {
        name: OPTIMIZE_SECONDS,
        kind: MetricKind::Histogram,
        help: "Optimizer time spent per plan resolution, in seconds.",
    },
    MetricDesc {
        name: PLAN_CACHE_EVICTIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Plans evicted by the parameterized-plan cache's LRU policy.",
    },
    MetricDesc {
        name: PLAN_CACHE_HITS_TOTAL,
        kind: MetricKind::Counter,
        help: "Parameterized-plan cache hits.",
    },
    MetricDesc {
        name: PLAN_CACHE_MISSES_TOTAL,
        kind: MetricKind::Counter,
        help: "Parameterized-plan cache misses (bind + optimize paid).",
    },
    MetricDesc {
        name: PREPARED_STATEMENTS_OPEN,
        kind: MetricKind::Gauge,
        help: "Prepared statements currently alive.",
    },
    MetricDesc {
        name: QUERIES_TOTAL,
        kind: MetricKind::Counter,
        help: "SELECT statements executed end to end.",
    },
    MetricDesc {
        name: QUERY_SECONDS,
        kind: MetricKind::Histogram,
        help: "End-to-end SELECT latency (plan resolution + execution), in seconds.",
    },
    MetricDesc {
        name: QUEUE_WAIT_SECONDS,
        kind: MetricKind::Histogram,
        help: "Admission wait before execution starts (state-lock + plan resolution), in seconds.",
    },
    MetricDesc {
        name: REOPTIMIZATIONS_TOTAL,
        kind: MetricKind::Counter,
        help: "Cached plans re-optimized after observed cardinalities exceeded the misestimate threshold.",
    },
    MetricDesc {
        name: REWRITE_FIRED_TOTAL,
        kind: MetricKind::Counter,
        help: "Rewrite-rule firings, labelled by rule.",
    },
    MetricDesc {
        name: ROWS_JOINED_TOTAL,
        kind: MetricKind::Counter,
        help: "Rows produced by join operators.",
    },
    MetricDesc {
        name: ROWS_SCANNED_TOTAL,
        kind: MetricKind::Counter,
        help: "Rows read out of base-table scans.",
    },
    MetricDesc {
        name: SESSION_QUERIES_TOTAL,
        kind: MetricKind::Counter,
        help: "Queries executed per serve-layer session, labelled by session id.",
    },
    MetricDesc {
        name: SESSIONS_OPEN,
        kind: MetricKind::Gauge,
        help: "Serve-layer sessions currently open.",
    },
    MetricDesc {
        name: SLOW_QUERIES_TOTAL,
        kind: MetricKind::Counter,
        help: "Executions over the slow-query threshold, captured in the slow-query log.",
    },
    MetricDesc {
        name: STORE_RECORDS_TOTAL,
        kind: MetricKind::Counter,
        help: "Executions recorded into the query store.",
    },
    MetricDesc {
        name: TRACES_TOTAL,
        kind: MetricKind::Counter,
        help: "Query traces finished and published.",
    },
    MetricDesc {
        name: VIEW_DELTA_ROWS_TOTAL,
        kind: MetricKind::Counter,
        help: "Signed delta rows (both signs) folded into cached views.",
    },
    MetricDesc {
        name: VIEW_REFRESH_SECONDS,
        kind: MetricKind::Histogram,
        help: "Cached-view maintenance latency, in seconds.",
    },
    MetricDesc {
        name: VIEW_REFRESH_TOTAL,
        kind: MetricKind::Counter,
        help: "Cached-view maintenance passes, labelled by kind (full/incremental/noop).",
    },
];

/// The catalog entry for a base metric name (labels stripped by the
/// caller), if registered.
pub fn describe(base: &str) -> Option<&'static MetricDesc> {
    ALL.iter().find(|d| d.name == base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_unique_and_well_formed() {
        for w in ALL.windows(2) {
            assert!(w[0].name < w[1].name, "{} !< {}", w[0].name, w[1].name);
        }
        for d in ALL {
            assert!(d.name.starts_with("vdm_"), "{}", d.name);
            assert!(!d.help.is_empty(), "{}", d.name);
            assert!(!d.name.contains('{'), "base names carry no labels: {}", d.name);
        }
        assert_eq!(describe(QUERIES_TOTAL).unwrap().kind, MetricKind::Counter);
        assert!(describe("vdm_not_a_metric").is_none());
    }
}
