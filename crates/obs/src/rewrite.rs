//! Optimizer rewrite trace: structured events reported by the rule passes.
//!
//! The optimizer drives many small pure functions that rebuild plan
//! subtrees; threading an event sink through every signature would bloat
//! them for what is diagnostic data. Instead the collector is
//! thread-local: `Optimizer::optimize_traced` brackets a run with
//! [`begin_collect`]/[`finish_collect`], announces each pass with
//! [`begin_pass`] (which pre-numbers the pass's input nodes), and fire
//! sites call [`fired`] — a no-op when no collection is active, so the
//! passes stay zero-cost on the plain `optimize` path of library users
//! that never trace.

use std::cell::RefCell;
use std::collections::HashMap;

use vdm_plan::{explain, plan_stats, PlanRef};

/// One rewrite-rule firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteEvent {
    /// Fixpoint round (0 = the pre-round constant folding / pushdown).
    pub round: usize,
    /// Pass name as reported to the pass-level trace.
    pub pass: String,
    /// Rule name, e.g. `uaj-removal`.
    pub rule: String,
    /// Pre-order id of the rewritten node within the pass's input plan.
    /// `None` when the node was itself built earlier in the same pass.
    pub node_id: Option<usize>,
    /// Operator name of the rewritten node.
    pub node: &'static str,
    /// Cardinality/uniqueness evidence that justified the rewrite.
    pub evidence: String,
    /// Node count of the rewritten subtree before the rule fired.
    pub nodes_before: usize,
    /// Node count of the replacement subtree.
    pub nodes_after: usize,
}

impl RewriteEvent {
    /// One-line rendering used by EXPLAIN ANALYZE and `Trace::render`.
    pub fn render(&self) -> String {
        let id = match self.node_id {
            Some(id) => format!("#{id}"),
            None => "#?".to_string(),
        };
        format!(
            "round {} [{}]: {} @ {id} {}: {} (subtree {} -> {} nodes)",
            self.round,
            self.pass,
            self.rule,
            self.node,
            self.evidence,
            self.nodes_before,
            self.nodes_after
        )
    }
}

#[derive(Default)]
struct Collector {
    round: usize,
    pass: String,
    /// Node address -> pre-order id in the current pass's input plan.
    ids: HashMap<usize, usize>,
    events: Vec<RewriteEvent>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Starts collecting rewrite events on this thread (drops any prior
/// unfinished collection).
pub fn begin_collect() {
    ACTIVE.with(|a| *a.borrow_mut() = Some(Collector::default()));
}

/// True when a collection is active on this thread.
pub fn is_collecting() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Announces the pass about to run and pre-numbers its input plan so
/// [`fired`] can attribute node ids.
pub fn begin_pass(round: usize, pass: &str, input: &PlanRef) {
    ACTIVE.with(|a| {
        if let Some(c) = a.borrow_mut().as_mut() {
            c.round = round;
            c.pass = pass.to_string();
            c.ids = explain::number_nodes(input)
                .into_iter()
                .map(|(ptr, id)| (ptr as usize, id))
                .collect();
        }
    });
}

/// Reports that `rule` rewrote `node` into `replacement` (or removed it)
/// because of `evidence`. No-op unless a collection is active.
pub fn fired(rule: &str, node: &PlanRef, replacement: Option<&PlanRef>, evidence: &str) {
    ACTIVE.with(|a| {
        if let Some(c) = a.borrow_mut().as_mut() {
            let ptr = std::sync::Arc::as_ptr(node) as usize;
            c.events.push(RewriteEvent {
                round: c.round,
                pass: c.pass.clone(),
                rule: rule.to_string(),
                node_id: c.ids.get(&ptr).copied(),
                node: node.op_name(),
                evidence: evidence.to_string(),
                nodes_before: plan_stats(node).nodes,
                nodes_after: replacement.map(|p| plan_stats(p).nodes).unwrap_or(0),
            });
        }
    });
}

/// Ends the collection and returns the events in firing order.
pub fn finish_collect() -> Vec<RewriteEvent> {
    ACTIVE.with(|a| a.borrow_mut().take().map(|c| c.events).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fired_is_noop_without_collection() {
        assert!(!is_collecting());
        // Nothing to assert beyond "does not panic": no plan handy here,
        // so just check the collect bracket protocol.
        begin_collect();
        assert!(is_collecting());
        assert!(finish_collect().is_empty());
        assert!(!is_collecting());
    }
}
