//! Per-operator runtime profiles, keyed by stable plan-node ids.
//!
//! [`LogicalPlan`] nodes are immutable and `Arc`-shared, so a node's
//! identity is its allocation. [`NodeIndex`] freezes that identity into
//! small pre-order integers (the same numbering `EXPLAIN` renders), which
//! lets worker threads record into plain maps without holding `Arc`s and
//! lets serial and parallel profiles of the same plan be compared key by
//! key.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use vdm_plan::{explain, LogicalPlan, PlanRef};

/// Stable pre-order ids for every distinct node of a plan DAG.
///
/// Shared subtrees get one id (first visit wins), matching the
/// `[shared #n]` convention of `plan::explain`.
#[derive(Debug, Clone, Default)]
pub struct NodeIndex {
    ids: HashMap<usize, usize>,
}

impl NodeIndex {
    /// Numbers `plan`'s nodes in pre-order (root = 0).
    pub fn new(plan: &PlanRef) -> NodeIndex {
        let ids =
            explain::number_nodes(plan).into_iter().map(|(ptr, id)| (ptr as usize, id)).collect();
        NodeIndex { ids }
    }

    /// The id of `plan`, if it belongs to the indexed DAG.
    pub fn id_of(&self, plan: &PlanRef) -> Option<usize> {
        self.id_of_ptr(Arc::as_ptr(plan) as usize)
    }

    /// Lookup by raw node address (for contexts that only kept a key).
    pub fn id_of_ptr(&self, ptr: usize) -> Option<usize> {
        self.ids.get(&ptr).copied()
    }

    /// The address key of `plan`, for deferred [`NodeIndex::id_of_ptr`] lookups.
    pub fn key(plan: &Arc<LogicalPlan>) -> usize {
        Arc::as_ptr(plan) as usize
    }

    /// Number of distinct nodes indexed.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no nodes are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Runtime stats for one plan node.
///
/// Under the parallel executor, `nanos` is the *sum of worker CPU time*
/// spent in the operator (it can exceed wall time), `invocations` counts
/// morsels, and `workers` counts the worker-local partial profiles that
/// touched the node. Serially all three collapse to per-call wall time,
/// call count, and 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Self time (child time excluded), summed across workers.
    pub nanos: u64,
    /// Times the operator ran (serial calls, or parallel morsels/tasks).
    pub invocations: u64,
    /// Worker-local profiles that recorded into this node.
    pub workers: u64,
}

impl NodeStats {
    fn absorb(&mut self, other: &NodeStats) {
        self.rows_out += other.rows_out;
        self.nanos += other.nanos;
        self.invocations += other.invocations;
        self.workers += other.workers;
    }
}

/// A per-query, node-keyed runtime profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Stats per [`NodeIndex`] id. `BTreeMap` so renderings are ordered.
    pub nodes: BTreeMap<usize, NodeStats>,
}

impl QueryProfile {
    /// Adds one operator execution to node `id`.
    pub fn record(&mut self, id: usize, rows_out: u64, nanos: u64) {
        let s = self.nodes.entry(id).or_default();
        s.rows_out += rows_out;
        s.nanos += nanos;
        s.invocations += 1;
        s.workers = s.workers.max(1);
    }

    /// Merges a worker-local partial profile into this one.
    pub fn merge(&mut self, other: &QueryProfile) {
        for (id, s) in &other.nodes {
            self.nodes.entry(*id).or_default().absorb(s);
        }
    }

    /// Rows produced by node `id`, if it executed.
    pub fn rows_out(&self, id: usize) -> Option<u64> {
        self.nodes.get(&id).map(|s| s.rows_out)
    }

    /// The rows-only view used by serial/parallel equivalence checks
    /// (nanos, invocations, and worker counts legitimately differ).
    pub fn rows_by_node(&self) -> BTreeMap<usize, u64> {
        self.nodes.iter().map(|(id, s)| (*id, s.rows_out)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields_and_counts_workers() {
        let mut a = QueryProfile::default();
        a.record(0, 10, 100);
        a.record(0, 5, 50);
        let mut b = QueryProfile::default();
        b.record(0, 7, 70);
        b.record(2, 1, 1);
        a.merge(&b);
        let s = a.nodes[&0];
        assert_eq!(s.rows_out, 22);
        assert_eq!(s.nanos, 220);
        assert_eq!(s.invocations, 3);
        assert_eq!(s.workers, 2);
        assert_eq!(a.rows_out(2), Some(1));
        assert_eq!(a.rows_out(1), None);
    }
}
