//! Zero-dependency JSON helpers: string/number escaping shared by the
//! exporters, and a small recursive-descent parser used to reload the
//! query store's JSON-lines files. The parser handles exactly the subset
//! the workspace writes (objects, arrays, strings with `\uXXXX` escapes,
//! finite numbers, booleans, null) — it is not a general validator.

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite f64 so integral values keep a trailing `.0` (stable
/// round-trip through the parser, and unambiguous in golden files).
pub fn json_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}.0", v.trunc() as i64)
    } else {
        format!("{v}")
    }
}

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member as u64 (must be integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.trunc() == *n && *n < 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_store_subset() {
        let doc = r#"{"v": 1.0, "digest": "00ab", "hits": 3, "lat": [1.5, 2e-3], "slow": null, "on": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("digest").unwrap().as_str(), Some("00ab"));
        assert_eq!(v.get("hits").unwrap().as_u64(), Some(3));
        let lat = v.get("lat").unwrap().as_array().unwrap();
        assert_eq!(lat[1].as_f64(), Some(2e-3));
        assert_eq!(v.get("slow"), Some(&Json::Null));
        assert_eq!(v.get("on"), Some(&Json::Bool(true)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}ü";
        let doc = format!("{{\"k\": {}}}", json_string(original));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("1e999").is_err()); // non-finite
    }

    #[test]
    fn numbers_keep_integral_suffix() {
        assert_eq!(json_number(3.0), "3.0");
        assert_eq!(json_number(0.25), "0.25");
        assert_eq!(Json::parse(&json_number(-7.0)).unwrap().as_f64(), Some(-7.0));
    }
}
