//! Registry of plan-backed views.
//!
//! The VDM layer (`vdm-model`) builds its views programmatically as logical
//! plans; this registry is where the SQL binder finds them by name. SQL-text
//! views live in the catalog instead.

use crate::node::PlanRef;
use std::collections::HashMap;
use vdm_types::{Result, VdmError};

/// Name → logical plan mapping, case-insensitive.
#[derive(Debug, Default, Clone)]
pub struct ViewRegistry {
    views: HashMap<String, PlanRef>,
}

impl ViewRegistry {
    /// Empty registry.
    pub fn new() -> ViewRegistry {
        ViewRegistry::default()
    }

    /// Registers (or replaces) a plan view.
    pub fn register(&mut self, name: &str, plan: PlanRef) {
        self.views.insert(name.to_ascii_lowercase(), plan);
    }

    /// Registers a view, erroring on duplicates.
    pub fn register_new(&mut self, name: &str, plan: PlanRef) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.views.contains_key(&key) {
            return Err(VdmError::Catalog(format!("view {name:?} already exists")));
        }
        self.views.insert(key, plan);
        Ok(())
    }

    /// Looks a view up by name.
    pub fn get(&self, name: &str) -> Option<PlanRef> {
        self.views.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Removes a view; `true` when it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.views.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// All registered view names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self.views.keys().cloned().collect();
        out.sort();
        out
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LogicalPlan;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn plan() -> PlanRef {
        LogicalPlan::scan(Arc::new(
            TableBuilder::new("t").column("k", SqlType::Int, false).build().unwrap(),
        ))
    }

    #[test]
    fn register_and_lookup() {
        let mut r = ViewRegistry::new();
        r.register("MyView", plan());
        assert!(r.get("myview").is_some());
        assert!(r.get("MYVIEW").is_some());
        assert!(r.get("other").is_none());
        assert_eq!(r.names(), vec!["myview".to_string()]);
    }

    #[test]
    fn register_new_rejects_duplicates() {
        let mut r = ViewRegistry::new();
        r.register_new("v", plan()).unwrap();
        assert!(r.register_new("V", plan()).is_err());
        // Plain register replaces.
        r.register("v", plan());
        assert_eq!(r.len(), 1);
        assert!(r.remove("V"));
        assert!(!r.remove("v"));
    }
}
