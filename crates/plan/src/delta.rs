//! Maintenance planning for cached views: classify, once at registration,
//! how a view's materialization can be kept current as its base tables
//! change, so `maintain()` dispatches on a precomputed [`DeltaPlan`]
//! instead of re-analyzing the plan on every read.
//!
//! The classification mirrors the delta algebra the executor implements
//! (`vdm-exec`'s signed-delta evaluator):
//!
//! * **Delta-capable** subtrees — scans, filters, projections, UNION ALL,
//!   `VALUES`, and FK-style joins of delta-capable inputs — propagate a
//!   signed delta (inserted rows, retracted rows) at cost proportional to
//!   the delta.
//! * A join side that is *not* delta-capable (or the augmenter side of a
//!   LEFT OUTER join, whose delta algebra is not bilinear) is **frozen**:
//!   the view still maintains incrementally while those tables are
//!   untouched, and falls back to a full recompute when they change.
//! * A top-level `Aggregate` over a delta-capable input **folds**: the
//!   delta is re-aggregated and merged group-wise into live accumulator
//!   state. DISTINCT aggregates fold inserts but cannot retract deletes;
//!   MIN/MAX retract exactly unless a group loses its extreme.
//! * Everything else — DISTINCT, ORDER BY, LIMIT, non-root aggregates —
//!   recomputes from scratch.

use crate::digest::plan_digest_canonical;
use crate::node::{JoinKind, LogicalPlan, PlanRef};
use vdm_expr::AggFunc;

/// How a view's materialization is kept current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// Insert deltas fold incrementally; any delete forces a full
    /// recompute (DISTINCT aggregates: the seen-set has no multiplicity).
    IncrementalInsert,
    /// Inserts fold and deletes retract incrementally.
    IncrementalRetract,
    /// Every change recomputes the view from scratch.
    FullOnly,
}

/// The per-view maintenance plan, derived once at registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    pub class: DeltaClass,
    /// Canonical plan digest: re-registration after profile/DDL changes
    /// re-derives the plan only when this changed.
    pub digest: u64,
    /// Base tables (lowercased, sorted, deduped) whose change forces a
    /// full refresh even for an incremental class — the snapshot-probed
    /// sides of joins whose delta algebra we do not propagate.
    pub frozen_tables: Vec<String>,
    /// The root is an `Aggregate` folded via live accumulator state.
    pub folds_aggregate: bool,
    /// The folded aggregate contains MIN/MAX: a delete that removes a
    /// group's extreme rebuilds that group (or the view) instead of
    /// retracting exactly.
    pub has_minmax: bool,
}

impl DeltaPlan {
    fn full_only(digest: u64) -> DeltaPlan {
        DeltaPlan {
            class: DeltaClass::FullOnly,
            digest,
            frozen_tables: Vec::new(),
            folds_aggregate: false,
            has_minmax: false,
        }
    }
}

/// True when the subtree propagates a signed delta — the executor's
/// `eval_signed_delta` accepts exactly these shapes. Join sides that fail
/// this test are evaluated from a snapshot scan instead (and their tables
/// frozen), which is how an aggregate dimension under an FK join still
/// maintains incrementally.
pub fn delta_capable(plan: &PlanRef) -> bool {
    capability(plan).is_some()
}

/// `Some(frozen tables)` when the subtree is delta-capable.
fn capability(plan: &PlanRef) -> Option<Vec<String>> {
    match plan.as_ref() {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => Some(Vec::new()),
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => capability(input),
        LogicalPlan::UnionAll { inputs, .. } => {
            let mut frozen = Vec::new();
            for c in inputs {
                frozen.extend(capability(c)?);
            }
            Some(frozen)
        }
        LogicalPlan::Join { left, right, kind, .. } => {
            let l = capability(left);
            // LEFT OUTER deltas are only linear in the left input: a right
            // insert can *retract* an existing NULL-padded row, so the
            // right side is always probed from its snapshot and frozen.
            let r = if *kind == JoinKind::Inner { capability(right) } else { None };
            match (l, r) {
                (Some(mut lf), Some(rf)) => {
                    lf.extend(rf);
                    Some(lf)
                }
                (Some(mut lf), None) => {
                    lf.extend(scan_tables(right));
                    Some(lf)
                }
                (None, Some(mut rf)) if *kind == JoinKind::Inner => {
                    rf.extend(scan_tables(left));
                    Some(rf)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// The root `Aggregate` a view folds via live accumulator state: the
/// plan itself, or the input of a root `Project` over one (the SQL
/// binder wraps grouped selects in a renaming projection). The
/// projection is re-applied when rendering from group state, so any
/// deterministic expressions over the aggregate output are fine.
pub fn folded_aggregate(plan: &PlanRef) -> Option<&PlanRef> {
    match plan.as_ref() {
        LogicalPlan::Aggregate { .. } => Some(plan),
        LogicalPlan::Project { input, .. }
            if matches!(input.as_ref(), LogicalPlan::Aggregate { .. }) =>
        {
            Some(input)
        }
        _ => None,
    }
}

/// Derives the maintenance plan for a view definition.
pub fn derive_delta_plan(plan: &PlanRef) -> DeltaPlan {
    let digest = plan_digest_canonical(plan);
    if let Some(agg) = folded_aggregate(plan) {
        let LogicalPlan::Aggregate { input, aggs, .. } = agg.as_ref() else {
            unreachable!("folded_aggregate returns Aggregate nodes");
        };
        let Some(frozen) = capability(input) else {
            return DeltaPlan::full_only(digest);
        };
        let any_distinct = aggs.iter().any(|(a, _)| a.distinct);
        let has_minmax =
            aggs.iter().any(|(a, _)| !a.distinct && matches!(a.func, AggFunc::Min | AggFunc::Max));
        return DeltaPlan {
            class: if any_distinct {
                DeltaClass::IncrementalInsert
            } else {
                DeltaClass::IncrementalRetract
            },
            digest,
            frozen_tables: normalize(frozen),
            folds_aggregate: true,
            has_minmax,
        };
    }
    match capability(plan) {
        Some(frozen) => DeltaPlan {
            class: DeltaClass::IncrementalRetract,
            digest,
            frozen_tables: normalize(frozen),
            folds_aggregate: false,
            has_minmax: false,
        },
        None => DeltaPlan::full_only(digest),
    }
}

fn normalize(mut tables: Vec<String>) -> Vec<String> {
    tables.sort();
    tables.dedup();
    tables
}

/// All base tables scanned under `plan` (lowercased, unsorted).
pub fn scan_tables(plan: &PlanRef) -> Vec<String> {
    let mut out = Vec::new();
    collect_scans(plan, &mut out);
    out
}

fn collect_scans(plan: &PlanRef, out: &mut Vec<String>) {
    if let LogicalPlan::Scan { table, .. } = plan.as_ref() {
        out.push(table.name.to_ascii_lowercase());
    }
    for c in plan.children() {
        collect_scans(c, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_expr::{AggExpr, BinOp, Expr};
    use vdm_types::SqlType;

    fn table(name: &str) -> Arc<vdm_catalog::TableDef> {
        Arc::new(
            TableBuilder::new(name)
                .column("k", SqlType::Int, false)
                .column("v", SqlType::Int, false)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        )
    }

    fn scan(name: &str) -> PlanRef {
        LogicalPlan::scan(table(name))
    }

    #[test]
    fn chains_and_inner_joins_retract() {
        let filtered =
            LogicalPlan::filter(scan("a"), Expr::col(1).binary(BinOp::Gt, Expr::int(0))).unwrap();
        let dp = derive_delta_plan(&filtered);
        assert_eq!(dp.class, DeltaClass::IncrementalRetract);
        assert!(dp.frozen_tables.is_empty());
        assert!(!dp.folds_aggregate);

        let join = LogicalPlan::inner_join(scan("a"), scan("b"), vec![(0, 0)]).unwrap();
        let dp = derive_delta_plan(&join);
        assert_eq!(dp.class, DeltaClass::IncrementalRetract);
        assert!(dp.frozen_tables.is_empty(), "both sides delta-capable: nothing frozen");
    }

    #[test]
    fn left_outer_freezes_the_augmenter_side() {
        let join = LogicalPlan::left_join(scan("fact"), scan("dim"), vec![(0, 0)]).unwrap();
        let dp = derive_delta_plan(&join);
        assert_eq!(dp.class, DeltaClass::IncrementalRetract);
        assert_eq!(dp.frozen_tables, vec!["dim".to_string()]);
    }

    #[test]
    fn aggregate_dimension_under_join_freezes_it() {
        let dim_agg = LogicalPlan::aggregate(
            scan("dim"),
            vec![(Expr::col(0), "k".into())],
            vec![(AggExpr::count_star(), "n".into())],
        )
        .unwrap();
        let join = LogicalPlan::inner_join(scan("fact"), dim_agg, vec![(0, 0)]).unwrap();
        let dp = derive_delta_plan(&join);
        assert_eq!(dp.class, DeltaClass::IncrementalRetract);
        assert_eq!(dp.frozen_tables, vec!["dim".to_string()]);
    }

    #[test]
    fn root_aggregates_fold() {
        let agg = LogicalPlan::aggregate(
            scan("a"),
            vec![(Expr::col(0), "k".into())],
            vec![
                (AggExpr::count_star(), "n".into()),
                (AggExpr::new(AggFunc::Max, Expr::col(1)), "m".into()),
            ],
        )
        .unwrap();
        let dp = derive_delta_plan(&agg);
        assert_eq!(dp.class, DeltaClass::IncrementalRetract);
        assert!(dp.folds_aggregate);
        assert!(dp.has_minmax);

        let mut distinct_agg = AggExpr::new(AggFunc::Count, Expr::col(1));
        distinct_agg.distinct = true;
        let agg =
            LogicalPlan::aggregate(scan("a"), vec![], vec![(distinct_agg, "n".into())]).unwrap();
        let dp = derive_delta_plan(&agg);
        assert_eq!(dp.class, DeltaClass::IncrementalInsert, "DISTINCT cannot retract");
        assert!(dp.folds_aggregate);
    }

    #[test]
    fn projected_root_aggregate_still_folds() {
        // The binder's renaming projection over a grouped select.
        let agg = LogicalPlan::aggregate(
            scan("a"),
            vec![(Expr::col(0), "k".into())],
            vec![(AggExpr::count_star(), "__agg_0".into())],
        )
        .unwrap();
        let wrapped = LogicalPlan::project(
            Arc::clone(&agg),
            vec![(Expr::col(0), "k".into()), (Expr::col(1), "n".into())],
        )
        .unwrap();
        assert!(folded_aggregate(&wrapped).is_some());
        let dp = derive_delta_plan(&wrapped);
        assert_eq!(dp.class, DeltaClass::IncrementalRetract);
        assert!(dp.folds_aggregate);
    }

    #[test]
    fn unsupported_shapes_are_full_only() {
        let key = crate::node::SortKey { expr: Expr::col(0), asc: true, nulls_first: false };
        let sorted = LogicalPlan::sort(scan("a"), vec![key]).unwrap();
        assert_eq!(derive_delta_plan(&sorted).class, DeltaClass::FullOnly);
        // Aggregate below a non-fold operator: not delta-capable.
        let agg = LogicalPlan::aggregate(
            scan("a"),
            vec![(Expr::col(0), "k".into())],
            vec![(AggExpr::count_star(), "n".into())],
        )
        .unwrap();
        let limited = LogicalPlan::limit(agg, 0, Some(5));
        assert_eq!(derive_delta_plan(&limited).class, DeltaClass::FullOnly);
    }

    #[test]
    fn digest_is_canonical_across_rebinds() {
        let a = LogicalPlan::inner_join(scan("a"), scan("b"), vec![(0, 0)]).unwrap();
        let b = LogicalPlan::inner_join(scan("a"), scan("b"), vec![(0, 0)]).unwrap();
        assert_eq!(derive_delta_plan(&a).digest, derive_delta_plan(&b).digest);
    }
}
