//! Memoized per-node plan properties — the "annotated plan" core.
//!
//! Optimizer rules probe the same properties (unique sets, lineage,
//! emptiness) on the same nodes over and over: per join node, per pass,
//! per fixpoint round. Plans are immutable DAGs of `Arc`-shared nodes, so
//! every property is a pure function of the node pointer (plus, for unique
//! sets, the [`DeriveOptions`] in force) — a rewrite *constructs new nodes*
//! rather than mutating old ones, which makes the cache invalidation-free
//! by construction: a changed subtree has a new address, an unchanged one
//! keeps its memoized entries.
//!
//! Keying by raw pointer is only sound while the pointed-to allocation
//! lives. The cache therefore retains a strong [`PlanRef`] for every key it
//! inserts (`keepalive`), so an `Arc` dropped mid-optimization can never
//! hand its address to a newly built node that would then inherit stale
//! properties (the classic pointer-reuse ABA).
//!
//! The cache is deliberately single-threaded (one per `optimize()` call):
//! `RefCell`/`Cell` interior mutability keeps probes allocation-free on the
//! hit path, and nothing escapes the optimizer invocation.

use crate::lineage::{self, Origin};
use crate::node::{DeclaredCardinality, PlanRef};
use crate::props::{self, DeriveOptions};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Hit/miss counters of a [`PropertyCache`], exported to the metrics
/// registry and printed in the EXPLAIN ANALYZE header.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    /// Probes answered from the memo.
    pub hits: u64,
    /// Probes that had to derive (each derives exactly once per key).
    pub misses: u64,
    /// Distinct memoized entries across all property tables.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of probes answered from the memo (0 when nothing probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type UniqueKey = (usize, DeriveOptions);

/// Pointer-identity-keyed memo of derived plan properties.
pub struct PropertyCache {
    enabled: bool,
    unique: RefCell<HashMap<UniqueKey, Rc<Vec<BTreeSet<usize>>>>>,
    empty: RefCell<HashMap<usize, bool>>,
    lineage: RefCell<HashMap<usize, Rc<Vec<Option<Origin>>>>>,
    nullable: RefCell<HashMap<usize, Rc<BTreeSet<usize>>>>,
    /// Strong refs backing every pointer key (see module docs).
    keepalive: RefCell<Vec<PlanRef>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl Default for PropertyCache {
    fn default() -> Self {
        PropertyCache::new()
    }
}

impl PropertyCache {
    /// A fresh, empty cache.
    pub fn new() -> PropertyCache {
        PropertyCache::with_enabled(true)
    }

    /// A cache that memoizes nothing: every probe re-derives from scratch.
    /// This is the pre-refactor cost model, kept so `opt_sweep` can report
    /// the cache's speedup against an honest baseline.
    pub fn passthrough() -> PropertyCache {
        PropertyCache::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> PropertyCache {
        PropertyCache {
            enabled,
            unique: RefCell::new(HashMap::new()),
            empty: RefCell::new(HashMap::new()),
            lineage: RefCell::new(HashMap::new()),
            nullable: RefCell::new(HashMap::new()),
            keepalive: RefCell::new(Vec::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.unique.borrow().len()
                + self.empty.borrow().len()
                + self.lineage.borrow().len()
                + self.nullable.borrow().len(),
        }
    }

    fn hit(&self) {
        self.hits.set(self.hits.get() + 1);
    }

    fn miss(&self, plan: &PlanRef) {
        self.misses.set(self.misses.get() + 1);
        self.keepalive.borrow_mut().push(plan.clone());
    }

    /// Memoized [`props::unique_sets`]: shared DAG nodes derive once per
    /// `DeriveOptions`, no matter how many paths reach them.
    pub fn unique_sets(&self, plan: &PlanRef, opts: &DeriveOptions) -> Rc<Vec<BTreeSet<usize>>> {
        if !self.enabled {
            return Rc::new(props::unique_sets(plan, opts));
        }
        let key = (Arc::as_ptr(plan) as usize, *opts);
        if let Some(sets) = self.unique.borrow().get(&key) {
            self.hit();
            return Rc::clone(sets);
        }
        self.miss(plan);
        let sets = Rc::new(props::derive_with(plan, opts, &mut |child| {
            (*self.unique_sets(child, opts)).clone()
        }));
        self.unique.borrow_mut().insert(key, Rc::clone(&sets));
        sets
    }

    /// Memoized at-most-one-match test for a join's right side.
    pub fn right_at_most_one(
        &self,
        right: &PlanRef,
        on: &[(usize, usize)],
        declared: Option<DeclaredCardinality>,
        opts: &DeriveOptions,
    ) -> bool {
        if opts.trust_declared && declared.is_some() {
            return true;
        }
        let right_cols: BTreeSet<usize> = on.iter().map(|&(_, r)| r).collect();
        props::covers_unique(&self.unique_sets(right, opts), &right_cols)
    }

    /// Memoized [`props::statically_empty`].
    pub fn statically_empty(&self, plan: &PlanRef) -> bool {
        if !self.enabled {
            return props::statically_empty(plan);
        }
        let key = Arc::as_ptr(plan) as usize;
        if let Some(&empty) = self.empty.borrow().get(&key) {
            self.hit();
            return empty;
        }
        self.miss(plan);
        let empty = props::statically_empty_with(plan, &mut |c| self.statically_empty(c));
        self.empty.borrow_mut().insert(key, empty);
        empty
    }

    /// Memoized [`lineage::column_lineage`]: the full used-column → base
    /// origin map of a node, derived once and indexed per probe.
    pub fn lineage(&self, plan: &PlanRef) -> Rc<Vec<Option<Origin>>> {
        if !self.enabled {
            return Rc::new(lineage::column_lineage(plan));
        }
        let key = Arc::as_ptr(plan) as usize;
        if let Some(l) = self.lineage.borrow().get(&key) {
            self.hit();
            return Rc::clone(l);
        }
        self.miss(plan);
        let l = Rc::new(lineage::column_lineage(plan));
        self.lineage.borrow_mut().insert(key, Rc::clone(&l));
        l
    }

    /// The base-table origin of one output ordinal, via [`Self::lineage`].
    pub fn origin(&self, plan: &PlanRef, ord: usize) -> Option<Origin> {
        self.lineage(plan).get(ord).cloned().flatten()
    }

    /// Memoized nullable-output-ordinal set (from the node's schema, which
    /// already accounts for outer-join NULL padding).
    pub fn nullable_columns(&self, plan: &PlanRef) -> Rc<BTreeSet<usize>> {
        let compute = |plan: &PlanRef| {
            plan.schema()
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| f.nullable)
                .map(|(i, _)| i)
                .collect::<BTreeSet<usize>>()
        };
        if !self.enabled {
            return Rc::new(compute(plan));
        }
        let key = Arc::as_ptr(plan) as usize;
        if let Some(n) = self.nullable.borrow().get(&key) {
            self.hit();
            return Rc::clone(n);
        }
        self.miss(plan);
        let n = Rc::new(compute(plan));
        self.nullable.borrow_mut().insert(key, Rc::clone(&n));
        n
    }
}

impl std::fmt::Debug for PropertyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PropertyCache {{ enabled: {}, hits: {}, misses: {}, entries: {} }}",
            self.enabled, s.hits, s.misses, s.entries
        )
    }
}
