//! Plan complexity metrics — the numbers behind Fig. 3 / Fig. 4 of the
//! paper ("47 table instances, 49 joins, one five-way UNION ALL, one GROUP
//! BY, one DISTINCT"; 62 table instances when shared subtrees are counted
//! per reference).

use crate::node::{LogicalPlan, PlanRef};
use std::collections::HashSet;

/// Operator counts over a plan DAG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Distinct scan nodes (shared subtrees counted once) — the paper's
    /// "table instances" in DAG form.
    pub table_instances: usize,
    /// Scan references counted per path (shared subtrees multiplied) — the
    /// paper's "unshared" count.
    pub table_references: usize,
    pub joins: usize,
    pub left_outer_joins: usize,
    pub unions: usize,
    /// Largest UNION ALL fan-in.
    pub max_union_width: usize,
    pub aggregates: usize,
    pub distincts: usize,
    pub filters: usize,
    pub projects: usize,
    pub limits: usize,
    pub sorts: usize,
    /// Total distinct nodes in the DAG.
    pub nodes: usize,
    /// Longest root-to-leaf path (nesting depth proxy).
    pub depth: usize,
}

/// Computes [`PlanStats`] for a plan DAG.
pub fn plan_stats(plan: &PlanRef) -> PlanStats {
    let mut stats = PlanStats::default();
    let mut seen: HashSet<*const LogicalPlan> = HashSet::new();
    count_dag(plan, &mut stats, &mut seen);
    stats.table_references = count_refs(plan);
    stats.depth = depth(plan);
    stats
}

fn count_dag(plan: &PlanRef, stats: &mut PlanStats, seen: &mut HashSet<*const LogicalPlan>) {
    let ptr = Arc_as_ptr(plan);
    if !seen.insert(ptr) {
        return;
    }
    stats.nodes += 1;
    match plan.as_ref() {
        LogicalPlan::Scan { .. } => stats.table_instances += 1,
        LogicalPlan::Values { .. } => {}
        LogicalPlan::Project { .. } => stats.projects += 1,
        LogicalPlan::Filter { .. } => stats.filters += 1,
        LogicalPlan::Join { kind, .. } => {
            stats.joins += 1;
            if *kind == crate::node::JoinKind::LeftOuter {
                stats.left_outer_joins += 1;
            }
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            stats.unions += 1;
            stats.max_union_width = stats.max_union_width.max(inputs.len());
        }
        LogicalPlan::Aggregate { .. } => stats.aggregates += 1,
        LogicalPlan::Distinct { .. } => stats.distincts += 1,
        LogicalPlan::Sort { .. } => stats.sorts += 1,
        LogicalPlan::Limit { .. } => stats.limits += 1,
    }
    for child in plan.children() {
        count_dag(child, stats, seen);
    }
}

fn count_refs(plan: &PlanRef) -> usize {
    match plan.as_ref() {
        LogicalPlan::Scan { .. } => 1,
        _ => plan.children().iter().map(|c| count_refs(c)).sum(),
    }
}

fn depth(plan: &PlanRef) -> usize {
    1 + plan.children().iter().map(|c| depth(c)).max().unwrap_or(0)
}

#[allow(non_snake_case)]
fn Arc_as_ptr(p: &PlanRef) -> *const LogicalPlan {
    std::sync::Arc::as_ptr(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn table(name: &str) -> Arc<vdm_catalog::TableDef> {
        Arc::new(
            TableBuilder::new(name)
                .column("k", SqlType::Int, false)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn shared_subtree_counts_once_in_dag_twice_in_refs() {
        let t = LogicalPlan::scan(table("t"));
        // Join the SAME Arc with itself: DAG sharing.
        let j = LogicalPlan::inner_join(Arc::clone(&t), t, vec![(0, 0)]).unwrap();
        let s = plan_stats(&j);
        assert_eq!(s.table_instances, 1, "shared scan counted once");
        assert_eq!(s.table_references, 2, "but referenced twice");
        assert_eq!(s.joins, 1);
    }

    #[test]
    fn union_width_tracked() {
        let inputs = (0..5).map(|_| LogicalPlan::scan(table("t"))).collect();
        let u = LogicalPlan::union_all(inputs).unwrap();
        let s = plan_stats(&u);
        assert_eq!(s.unions, 1);
        assert_eq!(s.max_union_width, 5);
        assert_eq!(s.table_instances, 5);
    }

    #[test]
    fn depth_counts_longest_path() {
        let t = LogicalPlan::scan(table("t"));
        let f = LogicalPlan::filter(t, vdm_expr::Expr::col(0).eq(vdm_expr::Expr::int(1))).unwrap();
        let l = LogicalPlan::limit(f, 0, Some(1));
        assert_eq!(plan_stats(&l).depth, 3);
    }
}
