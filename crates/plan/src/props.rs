//! Unique-key-set derivation — the analysis behind augmentation-join
//! detection (§4.2 of the paper).
//!
//! For every plan node we derive a list of *unique column sets*: sets of
//! output ordinals such that no two output rows agree on all of them
//! (treating the NULL padding of outer joins as a value). A join's right
//! side matching at most one row — the upper bound of AJ 1 / AJ 2 — is
//! exactly the condition "the right join columns cover some unique set of
//! the right child".
//!
//! Every individual derivation is switchable via [`DeriveOptions`]. This is
//! how the benchmark harness reproduces Tables 1–4: the `Postgres` profile,
//! for example, lacks `through_join`, so it cannot see that `c_custkey`
//! stays unique across an added join (UAJ 1a) even though it derives
//! uniqueness from primary keys and GROUP BY just fine.
//!
//! A special convention: the **empty set** as a unique set means *the
//! relation has at most one row* (every column set, including the empty
//! one, is then trivially unique).

use crate::node::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef};
use std::collections::BTreeSet;
use vdm_expr::{fold, predicate, Expr};

/// Which uniqueness derivations are enabled.
///
/// Field names follow the paper's case analysis: AJ 2a-1 (`from_primary_key`),
/// AJ 2a-2 (`from_group_by`), AJ 2a-3 (`from_const_filter`), the subquery
/// variants of Fig. 5 (`through_join`, `through_sort_limit`), the Fig. 12
/// UNION ALL patterns (`union_disjoint`, `union_branch_id`), and §7.3's
/// declared cardinalities (`trust_declared`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeriveOptions {
    pub from_primary_key: bool,
    pub from_group_by: bool,
    pub from_const_filter: bool,
    pub through_join: bool,
    pub through_sort_limit: bool,
    pub union_disjoint: bool,
    pub union_branch_id: bool,
    pub trust_declared: bool,
}

impl DeriveOptions {
    /// Everything on (the SAP HANA profile).
    pub fn all() -> DeriveOptions {
        DeriveOptions {
            from_primary_key: true,
            from_group_by: true,
            from_const_filter: true,
            through_join: true,
            through_sort_limit: true,
            union_disjoint: true,
            union_branch_id: true,
            trust_declared: true,
        }
    }

    /// Everything off.
    pub fn none() -> DeriveOptions {
        DeriveOptions {
            from_primary_key: false,
            from_group_by: false,
            from_const_filter: false,
            through_join: false,
            through_sort_limit: false,
            union_disjoint: false,
            union_branch_id: false,
            trust_declared: false,
        }
    }
}

impl Default for DeriveOptions {
    fn default() -> Self {
        DeriveOptions::all()
    }
}

/// Cap on tracked unique sets per node — keeps the join product bounded.
const MAX_SETS: usize = 16;

/// True when `cols` is a superset of one of `sets` (at most one row can
/// share a value combination over `cols`).
pub fn covers_unique(sets: &[BTreeSet<usize>], cols: &BTreeSet<usize>) -> bool {
    sets.iter().any(|s| s.is_subset(cols))
}

/// Child-property lookup used by [`derive_with`]: the uncached path recurses
/// directly, while the `PropertyCache` resolves shared subtrees from its memo.
pub(crate) type SetsResolver<'a> = &'a mut dyn FnMut(&PlanRef) -> Vec<BTreeSet<usize>>;

/// Derives the unique column sets of `plan`'s output under `opts`.
pub fn unique_sets(plan: &LogicalPlan, opts: &DeriveOptions) -> Vec<BTreeSet<usize>> {
    derive_with(plan, opts, &mut |child| unique_sets(child, opts))
}

/// Single-node derivation with child sets supplied by `resolve`.
pub(crate) fn derive_with(
    plan: &LogicalPlan,
    opts: &DeriveOptions,
    resolve: SetsResolver<'_>,
) -> Vec<BTreeSet<usize>> {
    minimize(derive(plan, opts, resolve))
}

fn minimize(mut sets: Vec<BTreeSet<usize>>) -> Vec<BTreeSet<usize>> {
    // Total order (size, then contents) so `dedup` removes *every*
    // duplicate, not just adjacent ones — equal-size duplicates used to
    // survive and crowd the MAX_SETS cap on join-heavy plans.
    sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    let mut out: Vec<BTreeSet<usize>> = Vec::new();
    for s in sets {
        if !out.iter().any(|kept| kept.is_subset(&s)) {
            out.push(s);
        }
        if out.len() >= MAX_SETS {
            break;
        }
    }
    out
}

fn derive(
    plan: &LogicalPlan,
    opts: &DeriveOptions,
    resolve: SetsResolver<'_>,
) -> Vec<BTreeSet<usize>> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            if opts.from_primary_key {
                table.unique_sets().into_iter().map(|v| v.into_iter().collect()).collect()
            } else {
                Vec::new()
            }
        }
        LogicalPlan::Values { rows, .. } => {
            if rows.len() <= 1 {
                vec![BTreeSet::new()]
            } else {
                Vec::new()
            }
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let child = resolve(input);
            // Map input ordinal -> first output position projecting it as-is.
            let mut pos_of: std::collections::HashMap<usize, usize> = Default::default();
            for (out_idx, (e, _)) in exprs.iter().enumerate() {
                if let Expr::Col(i) = e {
                    pos_of.entry(*i).or_insert(out_idx);
                }
            }
            child
                .into_iter()
                .filter_map(|s| {
                    s.iter().map(|c| pos_of.get(c).copied()).collect::<Option<BTreeSet<usize>>>()
                })
                .collect()
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut sets = resolve(input);
            if opts.from_const_filter {
                let bound = predicate::constant_bound_columns(predicate);
                if !bound.is_empty() {
                    let shrunk: Vec<BTreeSet<usize>> =
                        sets.iter().map(|s| s.difference(&bound).copied().collect()).collect();
                    sets.extend(shrunk);
                }
            }
            sets
        }
        LogicalPlan::Join { left, right, kind, on, declared, .. } => {
            derive_join(left, right, *kind, on, *declared, opts, resolve)
        }
        LogicalPlan::UnionAll { inputs, .. } => derive_union(inputs, opts, resolve),
        LogicalPlan::Aggregate { input, group_by, .. } => {
            let mut sets = Vec::new();
            if group_by.is_empty() {
                // Global aggregation: exactly one output row.
                sets.push(BTreeSet::new());
            } else if opts.from_group_by {
                sets.push((0..group_by.len()).collect());
            }
            let _ = input;
            sets
        }
        LogicalPlan::Distinct { input } => {
            let mut sets = resolve(input);
            if opts.from_group_by {
                sets.push((0..input.schema().len()).collect());
            }
            sets
        }
        LogicalPlan::Sort { input, .. } => {
            if opts.through_sort_limit {
                resolve(input)
            } else {
                Vec::new()
            }
        }
        LogicalPlan::Limit { input, fetch, .. } => {
            let mut sets = if opts.through_sort_limit { resolve(input) } else { Vec::new() };
            if matches!(fetch, Some(0) | Some(1)) {
                sets.push(BTreeSet::new());
            }
            sets
        }
    }
}

/// True when the right child of an equi join matches *at most one* row per
/// left row: the right join columns cover a unique set of the right child,
/// or the query declared a many-to-one cardinality (§7.3).
pub fn join_right_at_most_one(
    right: &LogicalPlan,
    on: &[(usize, usize)],
    declared: Option<DeclaredCardinality>,
    opts: &DeriveOptions,
) -> bool {
    if opts.trust_declared && declared.is_some() {
        return true;
    }
    let right_cols: BTreeSet<usize> = on.iter().map(|&(_, r)| r).collect();
    covers_unique(&unique_sets(right, opts), &right_cols)
}

#[allow(clippy::too_many_arguments)]
fn derive_join(
    left: &PlanRef,
    right: &PlanRef,
    kind: JoinKind,
    on: &[(usize, usize)],
    declared: Option<DeclaredCardinality>,
    opts: &DeriveOptions,
    resolve: SetsResolver<'_>,
) -> Vec<BTreeSet<usize>> {
    if !opts.through_join {
        return Vec::new();
    }
    let left_sets = resolve(left);
    let right_sets = resolve(right);
    let nl = left.schema().len();
    let shift = |s: &BTreeSet<usize>| -> BTreeSet<usize> { s.iter().map(|c| c + nl).collect() };

    let mut out = Vec::new();

    // Right side at-most-one match: left keys stay keys.
    let at_most_one = (opts.trust_declared && declared.is_some()) || {
        let right_cols: BTreeSet<usize> = on.iter().map(|&(_, r)| r).collect();
        covers_unique(&right_sets, &right_cols)
    };
    if at_most_one {
        out.extend(left_sets.iter().cloned());
    }

    // Left side at-most-one match (inner only: outer joins emit NULL-padded
    // right keys that can repeat across unmatched left rows).
    if kind == JoinKind::Inner {
        let left_cols: BTreeSet<usize> = on.iter().map(|&(l, _)| l).collect();
        if covers_unique(&left_sets, &left_cols) {
            out.extend(right_sets.iter().map(&shift));
        }
    }

    // A left key combined with a right key always identifies the row pair.
    // Combinations already covered by a kept set are non-minimal and would
    // be dropped by `minimize` anyway — skip them to bound the product.
    for l in left_sets.iter().take(4) {
        for r in right_sets.iter().take(4) {
            let mut c = l.clone();
            c.extend(shift(r));
            if !covers_unique(&out, &c) {
                out.push(c);
            }
        }
    }
    out
}

/// Decomposes a plan into `(table_name, predicate-over-scan-ordinals,
/// out_map)` when it is a (possibly projected/filtered) scan of one table.
/// `out_map[i]` is the scan ordinal that output column `i` passes through
/// unchanged, or `None` for computed columns.
fn as_filtered_source(plan: &LogicalPlan) -> Option<(String, Vec<Expr>, Vec<Option<usize>>)> {
    match plan {
        LogicalPlan::Scan { table, schema, .. } => {
            Some((table.name.clone(), Vec::new(), (0..schema.len()).map(Some).collect()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let (name, mut preds, map) = as_filtered_source(input)?;
            // Remap the predicate to scan ordinals; bail if it touches a
            // computed column.
            let ok = std::cell::Cell::new(true);
            let remapped = predicate.transform(&|e| {
                if let Expr::Col(i) = e {
                    match map.get(*i).copied().flatten() {
                        Some(scan_ord) => return Some(Expr::Col(scan_ord)),
                        None => {
                            ok.set(false);
                            return Some(e.clone());
                        }
                    }
                }
                None
            });
            if !ok.get() {
                return None;
            }
            preds.push(remapped);
            Some((name, preds, map))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let (name, preds, map) = as_filtered_source(input)?;
            let out_map = exprs
                .iter()
                .map(|(e, _)| match e {
                    Expr::Col(i) => map.get(*i).copied().flatten(),
                    _ => None,
                })
                .collect();
            Some((name, preds, out_map))
        }
        _ => None,
    }
}

fn derive_union(
    inputs: &[PlanRef],
    opts: &DeriveOptions,
    resolve: SetsResolver<'_>,
) -> Vec<BTreeSet<usize>> {
    if inputs.len() == 1 {
        return resolve(&inputs[0]);
    }
    let child_sets: Vec<Vec<BTreeSet<usize>>> = inputs.iter().map(resolve).collect();
    // A candidate S is "per-child unique" when every child has a unique set
    // contained in S (children share one output layout positionally).
    let per_child_unique =
        |s: &BTreeSet<usize>| -> bool { child_sets.iter().all(|sets| covers_unique(sets, s)) };

    let mut out = Vec::new();

    // Fig. 12(a): disjoint subsets of the same relation — per-child-unique
    // sets remain unique across the union because no row (hence no key
    // value) can appear in two children.
    if opts.union_disjoint {
        let sources: Option<Vec<_>> = inputs.iter().map(|c| as_filtered_source(c)).collect();
        if let Some(sources) = sources {
            let (name0, _, map0) = &sources[0];
            let same_shape = sources.iter().all(|(n, _, m)| n == name0 && m == map0);
            let pairwise_disjoint = || {
                for i in 0..sources.len() {
                    for j in (i + 1)..sources.len() {
                        let pi = Expr::conjunction(sources[i].1.clone());
                        let pj = Expr::conjunction(sources[j].1.clone());
                        if !predicate::disjoint(&pi, &pj) {
                            return false;
                        }
                    }
                }
                true
            };
            if same_shape && pairwise_disjoint() {
                for s in &child_sets[0] {
                    if per_child_unique(s) {
                        out.push(s.clone());
                    }
                }
            }
        }
    }

    // Fig. 12(b): a branch-id column holding a distinct constant per child
    // makes ⟨bid, per-child key⟩ unique across the union.
    if opts.union_branch_id {
        let width = inputs[0].schema().len();
        for b in 0..width {
            let mut consts = Vec::with_capacity(inputs.len());
            for child in inputs {
                match branch_constant(child, b) {
                    Some(v) => consts.push(v),
                    None => {
                        consts.clear();
                        break;
                    }
                }
            }
            if consts.len() == inputs.len() {
                let all_distinct = {
                    let mut seen = Vec::new();
                    consts.iter().all(|v| {
                        if seen.contains(v) {
                            false
                        } else {
                            seen.push(v.clone());
                            true
                        }
                    })
                };
                if all_distinct {
                    for s in &child_sets[0] {
                        if per_child_unique(s) {
                            let mut with_bid = s.clone();
                            with_bid.insert(b);
                            out.push(with_bid);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Statically-empty relation detection (AJ 2b: `R ⟕ ∅`).
pub fn statically_empty(plan: &LogicalPlan) -> bool {
    statically_empty_with(plan, &mut |c| statically_empty(c))
}

/// Single-node emptiness check with child results supplied by `resolve`.
pub(crate) fn statically_empty_with(
    plan: &LogicalPlan,
    resolve: &mut dyn FnMut(&PlanRef) -> bool,
) -> bool {
    match plan {
        LogicalPlan::Values { rows, .. } => rows.is_empty(),
        LogicalPlan::Filter { input, predicate } => {
            fold::is_always_false(predicate) || resolve(input)
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. } => resolve(input),
        LogicalPlan::Limit { input, fetch, .. } => *fetch == Some(0) || resolve(input),
        LogicalPlan::Join { left, right, kind, .. } => {
            resolve(left) || (*kind == JoinKind::Inner && resolve(right))
        }
        LogicalPlan::UnionAll { inputs, .. } => inputs.iter().all(resolve),
        _ => false,
    }
}

/// The constant a child emits in output column `b`, when provable.
fn branch_constant(plan: &LogicalPlan, b: usize) -> Option<vdm_types::Value> {
    match plan {
        LogicalPlan::Project { exprs, .. } => match &exprs.get(b)?.0 {
            Expr::Lit(v) if !v.is_null() => Some(v.clone()),
            _ => None,
        },
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => branch_constant(input, b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SortKey;
    use std::sync::Arc;
    use vdm_catalog::{TableBuilder, TableDef};
    use vdm_expr::{AggExpr, AggFunc, BinOp};
    use vdm_types::SqlType;

    fn lineitem() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("lineitem")
                .column("l_orderkey", SqlType::Int, false)
                .column("l_linenumber", SqlType::Int, false)
                .column("l_quantity", SqlType::Int, false)
                .primary_key(&["l_orderkey", "l_linenumber"])
                .build()
                .unwrap(),
        )
    }

    fn customer() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("customer")
                .column("c_custkey", SqlType::Int, false)
                .column("c_nationkey", SqlType::Int, false)
                .primary_key(&["c_custkey"])
                .build()
                .unwrap(),
        )
    }

    fn nation() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("nation")
                .column("n_nationkey", SqlType::Int, false)
                .column("n_name", SqlType::Text, false)
                .primary_key(&["n_nationkey"])
                .build()
                .unwrap(),
        )
    }

    fn set(cols: &[usize]) -> BTreeSet<usize> {
        cols.iter().copied().collect()
    }

    #[test]
    fn scan_seeds_from_primary_key() {
        let s = LogicalPlan::scan(customer());
        assert_eq!(unique_sets(&s, &DeriveOptions::all()), vec![set(&[0])]);
        assert!(unique_sets(&s, &DeriveOptions::none()).is_empty());
    }

    #[test]
    fn const_filter_shrinks_composite_key() {
        // AJ 2a-3: lineitem WHERE l_linenumber = 1 → l_orderkey unique.
        let scan = LogicalPlan::scan(lineitem());
        let f = LogicalPlan::filter(scan, Expr::col(1).eq(Expr::int(1))).unwrap();
        let sets = unique_sets(&f, &DeriveOptions::all());
        assert!(covers_unique(&sets, &set(&[0])), "sets: {sets:?}");
        let mut no_cf = DeriveOptions::all();
        no_cf.from_const_filter = false;
        let sets = unique_sets(&f, &no_cf);
        assert!(!covers_unique(&sets, &set(&[0])));
        assert!(covers_unique(&sets, &set(&[0, 1])));
    }

    #[test]
    fn group_by_key_is_unique() {
        // AJ 2a-2.
        let scan = LogicalPlan::scan(lineitem());
        let agg = LogicalPlan::aggregate(
            scan,
            vec![(Expr::col(0), "ok".into())],
            vec![(AggExpr::new(AggFunc::Sum, Expr::col(2)), "qty".into())],
        )
        .unwrap();
        assert!(covers_unique(&unique_sets(&agg, &DeriveOptions::all()), &set(&[0])));
        let mut no_gb = DeriveOptions::all();
        no_gb.from_group_by = false;
        assert!(!covers_unique(&unique_sets(&agg, &no_gb), &set(&[0])));
    }

    #[test]
    fn global_aggregate_has_one_row() {
        let scan = LogicalPlan::scan(lineitem());
        let agg = LogicalPlan::aggregate(scan, vec![], vec![(AggExpr::count_star(), "n".into())])
            .unwrap();
        let sets = unique_sets(&agg, &DeriveOptions::none());
        assert_eq!(sets, vec![BTreeSet::new()]);
    }

    #[test]
    fn uniqueness_survives_augmenting_join() {
        // UAJ 1a's augmenter: customer ⋈ nation on c_nationkey = n_nationkey.
        let c = LogicalPlan::scan(customer());
        let n = LogicalPlan::scan(nation());
        let j = LogicalPlan::inner_join(c, n, vec![(1, 0)]).unwrap();
        let sets = unique_sets(&j, &DeriveOptions::all());
        assert!(covers_unique(&sets, &set(&[0])), "c_custkey must stay unique: {sets:?}");
        let mut no_tj = DeriveOptions::all();
        no_tj.through_join = false;
        assert!(!covers_unique(&unique_sets(&j, &no_tj), &set(&[0])));
    }

    #[test]
    fn left_outer_does_not_propagate_right_keys() {
        // Unmatched left rows pad right keys with NULL; right keys are not
        // unique in the output even when the left side is keyed.
        let c = LogicalPlan::scan(customer());
        let n = LogicalPlan::scan(nation());
        // customer LEFT JOIN nation on c_custkey = n_nationkey (left side keyed).
        let j = LogicalPlan::left_join(c, n, vec![(0, 0)]).unwrap();
        let sets = unique_sets(&j, &DeriveOptions::all());
        assert!(!covers_unique(&sets, &set(&[2])), "sets: {sets:?}");
        // But the inner variant does propagate.
        let c = LogicalPlan::scan(customer());
        let n = LogicalPlan::scan(nation());
        let j = LogicalPlan::inner_join(c, n, vec![(0, 0)]).unwrap();
        assert!(covers_unique(&unique_sets(&j, &DeriveOptions::all()), &set(&[2])));
    }

    #[test]
    fn sort_limit_preserve_keys_when_enabled() {
        // UAJ 1b: ORDER BY + LIMIT on top of the augmenter.
        let c = LogicalPlan::scan(customer());
        let s = LogicalPlan::sort(c, vec![SortKey::desc(1)]).unwrap();
        let l = LogicalPlan::limit(s, 0, Some(10));
        assert!(covers_unique(&unique_sets(&l, &DeriveOptions::all()), &set(&[0])));
        let mut no_sl = DeriveOptions::all();
        no_sl.through_sort_limit = false;
        assert!(!covers_unique(&unique_sets(&l, &no_sl), &set(&[0])));
    }

    #[test]
    fn limit_one_means_single_row() {
        let c = LogicalPlan::scan(customer());
        let l = LogicalPlan::limit(c, 0, Some(1));
        assert!(unique_sets(&l, &DeriveOptions::none()).contains(&BTreeSet::new()));
    }

    #[test]
    fn projection_maps_keys_through_pure_columns() {
        let c = LogicalPlan::scan(customer());
        let p = LogicalPlan::project(
            c,
            vec![(Expr::col(1), "nat".into()), (Expr::col(0), "key".into())],
        )
        .unwrap();
        assert!(covers_unique(&unique_sets(&p, &DeriveOptions::all()), &set(&[1])));
        // Dropping the key column loses the set.
        let c = LogicalPlan::scan(customer());
        let p = LogicalPlan::project(c, vec![(Expr::col(1), "nat".into())]).unwrap();
        assert!(unique_sets(&p, &DeriveOptions::all()).is_empty());
    }

    #[test]
    fn union_of_disjoint_subsets_preserves_key() {
        // Fig. 12(a): σ(c_nationkey = 1) ∪ σ(c_nationkey <> 1) over customer.
        let a = LogicalPlan::filter(LogicalPlan::scan(customer()), Expr::col(1).eq(Expr::int(1)))
            .unwrap();
        let b = LogicalPlan::filter(
            LogicalPlan::scan(customer()),
            Expr::col(1).binary(BinOp::NotEq, Expr::int(1)),
        )
        .unwrap();
        let u = LogicalPlan::union_all(vec![a, b]).unwrap();
        let sets = unique_sets(&u, &DeriveOptions::all());
        assert!(covers_unique(&sets, &set(&[0])), "sets: {sets:?}");
        let mut no_ud = DeriveOptions::all();
        no_ud.union_disjoint = false;
        assert!(!covers_unique(&unique_sets(&u, &no_ud), &set(&[0])));
    }

    #[test]
    fn union_with_overlapping_predicates_is_not_unique() {
        let a = LogicalPlan::filter(
            LogicalPlan::scan(customer()),
            Expr::col(1).binary(BinOp::Gt, Expr::int(0)),
        )
        .unwrap();
        let b = LogicalPlan::filter(
            LogicalPlan::scan(customer()),
            Expr::col(1).binary(BinOp::Gt, Expr::int(5)),
        )
        .unwrap();
        let u = LogicalPlan::union_all(vec![a, b]).unwrap();
        assert!(!covers_unique(&unique_sets(&u, &DeriveOptions::all()), &set(&[0])));
    }

    #[test]
    fn union_branch_id_makes_composite_key() {
        // Fig. 12(b): active ⊎ draft with a literal branch id column.
        let mk = |bid: i64| {
            LogicalPlan::project(
                LogicalPlan::scan(customer()),
                vec![
                    (Expr::int(bid), "bid".into()),
                    (Expr::col(0), "key".into()),
                    (Expr::col(1), "nat".into()),
                ],
            )
            .unwrap()
        };
        let u = LogicalPlan::union_all(vec![mk(0), mk(1)]).unwrap();
        let sets = unique_sets(&u, &DeriveOptions::all());
        assert!(covers_unique(&sets, &set(&[0, 1])), "sets: {sets:?}");
        assert!(!covers_unique(&sets, &set(&[1])), "key alone collides across branches");
        // Identical branch ids: no uniqueness.
        let u = LogicalPlan::union_all(vec![mk(7), mk(7)]).unwrap();
        assert!(!covers_unique(&unique_sets(&u, &DeriveOptions::all()), &set(&[0, 1])));
    }

    #[test]
    fn declared_cardinality_trusted_when_enabled() {
        // No key on the right side at all, but the query declared m:1.
        let c = LogicalPlan::scan(customer());
        let right =
            LogicalPlan::project(LogicalPlan::scan(nation()), vec![(Expr::col(1), "name".into())])
                .unwrap();
        let on = vec![];
        assert!(!join_right_at_most_one(&right, &on, None, &DeriveOptions::all()));
        assert!(join_right_at_most_one(
            &right,
            &on,
            Some(DeclaredCardinality::ManyToOne),
            &DeriveOptions::all()
        ));
        let mut no_trust = DeriveOptions::all();
        no_trust.trust_declared = false;
        assert!(!join_right_at_most_one(
            &right,
            &on,
            Some(DeclaredCardinality::ManyToOne),
            &no_trust
        ));
        let _ = c;
    }

    #[test]
    fn values_single_row_is_singleton() {
        let schema = vdm_types::Schema::new(vec![vdm_types::Field::new("x", SqlType::Int, false)]);
        let v = LogicalPlan::values(schema.clone(), vec![vec![vdm_types::Value::Int(1)]]).unwrap();
        assert_eq!(unique_sets(&v, &DeriveOptions::none()), vec![BTreeSet::new()]);
        let v2 = LogicalPlan::values(
            schema,
            vec![vec![vdm_types::Value::Int(1)], vec![vdm_types::Value::Int(2)]],
        )
        .unwrap();
        assert!(unique_sets(&v2, &DeriveOptions::none()).is_empty());
    }

    #[test]
    fn distinct_makes_all_columns_unique() {
        let c = LogicalPlan::scan(customer());
        let p = LogicalPlan::project(c, vec![(Expr::col(1), "nat".into())]).unwrap();
        let d = LogicalPlan::distinct(p);
        assert!(covers_unique(&unique_sets(&d, &DeriveOptions::all()), &set(&[0])));
    }
}
