//! The shared rewrite driver: bottom-up transformation that visits every
//! DAG node **once** and preserves `Arc` sharing.
//!
//! Before this existed, every optimizer rule hand-rolled its own recursion
//! over `children()` + per-variant rebuild. That recursion is tree-shaped:
//! a subquery shared under two joins is visited once *per path* and — worse
//! — rebuilt once per path, silently exploding the shared `Arc` into
//! structurally equal but distinct subtrees that the executor then computes
//! twice. [`transform_up`] fixes both: a per-walk pointer memo guarantees
//! one visit and one result per node, so shared inputs stay shared in the
//! output (pointer-equal subtrees stay pointer-equal, rewritten or not).

use crate::node::{LogicalPlan, PlanRef};
use std::collections::HashMap;
use std::sync::Arc;
use vdm_types::Result;

/// Rebuilds `plan` over `new_children`, preserving `Arc` identity when no
/// child actually changed (`Arc::ptr_eq`). The single-level building block
/// of [`transform_up`]; usable on its own for one-off node surgery.
pub fn map_children(plan: &PlanRef, new_children: Vec<PlanRef>) -> Result<PlanRef> {
    let old_children = plan.children();
    debug_assert_eq!(old_children.len(), new_children.len());
    if old_children.iter().zip(&new_children).all(|(o, n)| Arc::ptr_eq(o, n)) {
        return Ok(plan.clone());
    }
    let mut kids = new_children.into_iter();
    Ok(match plan.as_ref() {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => unreachable!("no children"),
        LogicalPlan::Project { exprs, .. } => {
            LogicalPlan::project(kids.next().unwrap(), exprs.clone())?
        }
        LogicalPlan::Filter { predicate, .. } => {
            LogicalPlan::filter(kids.next().unwrap(), predicate.clone())?
        }
        LogicalPlan::Join { kind, on, filter, declared, asj_intent, .. } => LogicalPlan::join(
            kids.next().unwrap(),
            kids.next().unwrap(),
            *kind,
            on.clone(),
            filter.clone(),
            *declared,
            *asj_intent,
        )?,
        LogicalPlan::UnionAll { .. } => LogicalPlan::union_all(kids.collect())?,
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            LogicalPlan::aggregate(kids.next().unwrap(), group_by.clone(), aggs.clone())?
        }
        LogicalPlan::Distinct { .. } => LogicalPlan::distinct(kids.next().unwrap()),
        LogicalPlan::Sort { keys, .. } => LogicalPlan::sort(kids.next().unwrap(), keys.clone())?,
        LogicalPlan::Limit { skip, fetch, .. } => {
            LogicalPlan::limit(kids.next().unwrap(), *skip, *fetch)
        }
    })
}

/// Applies `f` to every node bottom-up (children already transformed when
/// `f` sees a node), visiting each shared DAG node exactly once.
///
/// `f` receives the node rebuilt over its transformed children — with its
/// original `Arc` identity whenever nothing below it changed — and returns
/// the replacement (or the input unchanged). Because results are memoized
/// by the *input* node's address, the two parents of a shared subtree
/// receive the same output `Arc`: sharing survives rewriting.
pub fn transform_up(
    plan: &PlanRef,
    f: &mut dyn FnMut(PlanRef) -> Result<PlanRef>,
) -> Result<PlanRef> {
    // Keys point into the input DAG, which outlives the walk via `plan`.
    let mut memo: HashMap<*const LogicalPlan, PlanRef> = HashMap::new();
    transform_up_memo(plan, f, &mut memo)
}

fn transform_up_memo(
    plan: &PlanRef,
    f: &mut dyn FnMut(PlanRef) -> Result<PlanRef>,
    memo: &mut HashMap<*const LogicalPlan, PlanRef>,
) -> Result<PlanRef> {
    let key = Arc::as_ptr(plan);
    if let Some(done) = memo.get(&key) {
        return Ok(done.clone());
    }
    let children = plan.children();
    let mut new_children = Vec::with_capacity(children.len());
    for c in children {
        new_children.push(transform_up_memo(c, f, memo)?);
    }
    let rebuilt = map_children(plan, new_children)?;
    let out = f(rebuilt)?;
    memo.insert(key, out.clone());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_expr::Expr;
    use vdm_types::SqlType;

    fn scan() -> PlanRef {
        LogicalPlan::scan(std::sync::Arc::new(
            TableBuilder::new("t")
                .column("a", SqlType::Int, false)
                .column("b", SqlType::Int, false)
                .primary_key(&["a"])
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn identity_transform_returns_same_arcs() {
        let shared = LogicalPlan::filter(scan(), Expr::col(0).eq(Expr::int(1))).unwrap();
        let join = LogicalPlan::inner_join(shared.clone(), shared.clone(), vec![(0, 0)]).unwrap();
        let mut visits = 0;
        let out = transform_up(&join, &mut |node| {
            visits += 1;
            Ok(node)
        })
        .unwrap();
        assert!(Arc::ptr_eq(&out, &join), "identity transform must not rebuild");
        // Shared filter + its scan visited once each, plus the join.
        assert_eq!(visits, 3);
    }

    #[test]
    fn rewritten_shared_subtree_stays_shared() {
        let shared = LogicalPlan::filter(scan(), Expr::col(0).eq(Expr::int(1))).unwrap();
        let join = LogicalPlan::inner_join(shared.clone(), shared.clone(), vec![(0, 0)]).unwrap();
        // Strip every filter: both join inputs must end up the *same* scan.
        let out = transform_up(&join, &mut |node| {
            if let LogicalPlan::Filter { input, .. } = node.as_ref() {
                return Ok(input.clone());
            }
            Ok(node)
        })
        .unwrap();
        let LogicalPlan::Join { left, right, .. } = out.as_ref() else {
            panic!("join survives");
        };
        assert!(Arc::ptr_eq(left, right), "rewritten shared subtree must stay shared");
        assert!(matches!(left.as_ref(), LogicalPlan::Scan { .. }));
    }
}
