//! Per-node cardinality estimation (§7 of the paper).
//!
//! The estimator derives a row-count estimate for every node of a logical
//! plan DAG from four evidence sources, in decreasing order of authority:
//!
//! 1. **Observed overrides** — true per-subtree row counts injected by the
//!    feedback loop (keyed by canonical subtree digest, so they survive
//!    re-binding of parameterized plans).
//! 2. **Table statistics** — exact base-table row counts and per-column
//!    zone-map min/max ranges supplied by a [`StatsProvider`].
//! 3. **Structural properties** — `PropertyCache` unique sets and column
//!    lineage: a join whose keys are unique on both sides returns at most
//!    `min(l, r)` rows; a witnessed foreign-key join is many-to-exactly-one
//!    and returns the left cardinality (scaled when the dimension side is
//!    filtered).
//! 4. **Textbook defaults** — fixed selectivities when nothing better is
//!    known (equality 0.1, other predicates 0.25, grouping 0.1).
//!
//! Estimates are memoized per DAG node by `Arc` address, mirroring
//! `PropertyCache`, so shared subtrees are estimated once and repeated
//! probes during join enumeration are O(1).

use crate::cache::PropertyCache;
use crate::digest::plan_digest_canonical;
use crate::explain::{explain_annotated, number_nodes};
use crate::node::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef};
use crate::props::{covers_unique, DeriveOptions};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use vdm_expr::predicate::{as_atom, split_conjunction, Atom};
use vdm_expr::{BinOp, Expr};
use vdm_types::Value;

/// Fallback row count for tables with no statistics.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;
/// Fallback selectivity for equality predicates on non-unique columns.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Fallback selectivity for range and other predicates.
pub const DEFAULT_PRED_SELECTIVITY: f64 = 0.25;
/// Fallback fraction of input rows surviving a GROUP BY / DISTINCT.
pub const DEFAULT_GROUP_FRACTION: f64 = 0.1;

/// Base-table statistics handed to the estimator by the storage layer.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Visible row count.
    pub rows: u64,
    /// Per-column `(min, max)` over non-NULL values; `None` when the
    /// column has no zone-map coverage (strings, empty tables).
    pub ranges: Vec<Option<(Value, Value)>>,
}

/// Source of base-table statistics. Implemented by the storage engine;
/// the estimator itself never touches storage directly.
pub trait StatsProvider {
    /// Statistics for `table`, or `None` when the table is unknown.
    fn table_stats(&self, table: &str) -> Option<TableStats>;
}

/// Observed row counts injected as overriding estimates, keyed by the
/// canonical digest of the subtree they were measured at. Canonical
/// digests are stable across parameter re-binding and scan-instance
/// renumbering, which is what lets feedback recorded on one execution
/// apply to a structurally identical later plan.
#[derive(Debug, Clone, Default)]
pub struct CardOverrides {
    rows: HashMap<u64, f64>,
}

impl CardOverrides {
    /// An empty override set.
    pub fn new() -> CardOverrides {
        CardOverrides::default()
    }

    /// Records `rows` as the observed cardinality of the subtree whose
    /// canonical digest is `digest`.
    pub fn insert(&mut self, digest: u64, rows: f64) {
        self.rows.insert(digest, rows.max(0.0));
    }

    /// The observed cardinality for `digest`, if recorded.
    pub fn get(&self, digest: u64) -> Option<f64> {
        self.rows.get(&digest).copied()
    }

    /// Number of recorded overrides.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no overrides are recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Memoized per-node cardinality estimator over one plan DAG (or several
/// sharing the same `PropertyCache`).
pub struct Cardinality<'a> {
    stats: Option<&'a dyn StatsProvider>,
    overrides: Option<&'a CardOverrides>,
    props: &'a PropertyCache,
    opts: DeriveOptions,
    memo: RefCell<HashMap<usize, f64>>,
    digests: RefCell<HashMap<usize, u64>>,
    keepalive: RefCell<Vec<PlanRef>>,
}

impl<'a> Cardinality<'a> {
    /// An estimator with no table statistics: structural evidence and
    /// defaults only.
    pub fn new(props: &'a PropertyCache, opts: DeriveOptions) -> Cardinality<'a> {
        Cardinality {
            stats: None,
            overrides: None,
            props,
            opts,
            memo: RefCell::new(HashMap::new()),
            digests: RefCell::new(HashMap::new()),
            keepalive: RefCell::new(Vec::new()),
        }
    }

    /// Attaches a base-table statistics source.
    pub fn with_stats(mut self, stats: &'a dyn StatsProvider) -> Cardinality<'a> {
        self.stats = Some(stats);
        self
    }

    /// Attaches observed-cardinality overrides (the feedback loop).
    pub fn with_overrides(mut self, overrides: &'a CardOverrides) -> Cardinality<'a> {
        self.overrides = Some(overrides);
        self
    }

    /// Estimated row count for `plan`, memoized by node address.
    pub fn estimate(&self, plan: &PlanRef) -> f64 {
        let key = PlanRef::as_ptr(plan) as usize;
        if let Some(&rows) = self.memo.borrow().get(&key) {
            return rows;
        }
        // Observed evidence outranks any model-derived estimate.
        let rows = match self.overrides.and_then(|o| o.get(self.subtree_digest(plan))) {
            Some(observed) => observed,
            None => self.estimate_node(plan),
        };
        let rows = if rows.is_finite() { rows.max(0.0) } else { f64::MAX };
        self.keepalive.borrow_mut().push(PlanRef::clone(plan));
        self.memo.borrow_mut().insert(key, rows);
        rows
    }

    /// Estimated row count rounded to a whole number of rows (what
    /// `EXPLAIN` prints as `est=N`).
    pub fn estimate_rounded(&self, plan: &PlanRef) -> u64 {
        let e = self.estimate(plan);
        if e >= u64::MAX as f64 {
            u64::MAX
        } else {
            e.round() as u64
        }
    }

    /// Canonical digest of `plan`'s subtree, memoized by node address.
    fn subtree_digest(&self, plan: &PlanRef) -> u64 {
        let key = PlanRef::as_ptr(plan) as usize;
        if let Some(&d) = self.digests.borrow().get(&key) {
            return d;
        }
        let d = plan_digest_canonical(plan);
        self.keepalive.borrow_mut().push(PlanRef::clone(plan));
        self.digests.borrow_mut().insert(key, d);
        d
    }

    fn table_rows(&self, table: &str) -> f64 {
        self.stats
            .and_then(|s| s.table_stats(table))
            .map(|t| t.rows as f64)
            .unwrap_or(DEFAULT_TABLE_ROWS)
    }

    fn estimate_node(&self, plan: &PlanRef) -> f64 {
        match plan.as_ref() {
            LogicalPlan::Scan { table, .. } => self.table_rows(&table.name),
            LogicalPlan::Values { rows, .. } => rows.len() as f64,
            LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
                self.estimate(input)
            }
            LogicalPlan::Filter { input, predicate } => {
                let child = self.estimate(input);
                child * self.predicate_selectivity(predicate, input, child)
            }
            LogicalPlan::Join { .. } => self.join_estimate(plan),
            LogicalPlan::UnionAll { inputs, .. } => {
                // UNION ALL concatenates: the estimate is the sum.
                inputs.iter().map(|i| self.estimate(i)).sum()
            }
            LogicalPlan::Aggregate { input, group_by, .. } => {
                if group_by.is_empty() {
                    return 1.0;
                }
                let child = self.estimate(input);
                let cols: Option<BTreeSet<usize>> = group_by
                    .iter()
                    .map(|(e, _)| match e {
                        Expr::Col(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                match cols {
                    Some(cols)
                        if covers_unique(&self.props.unique_sets(input, &self.opts), &cols) =>
                    {
                        // Grouping on a unique key: one group per row.
                        child
                    }
                    _ => (child * DEFAULT_GROUP_FRACTION).max(1.0).min(child),
                }
            }
            LogicalPlan::Distinct { input } => {
                let child = self.estimate(input);
                if self.props.unique_sets(input, &self.opts).is_empty() {
                    (child * DEFAULT_GROUP_FRACTION).max(1.0).min(child)
                } else {
                    // Some column set is already unique: DISTINCT keeps all rows.
                    child
                }
            }
            LogicalPlan::Limit { input, skip, fetch } => {
                let child = (self.estimate(input) - *skip as f64).max(0.0);
                match fetch {
                    Some(n) => child.min(*n as f64),
                    None => child,
                }
            }
        }
    }

    fn join_estimate(&self, plan: &PlanRef) -> f64 {
        let LogicalPlan::Join { left, right, kind, on, filter, declared, .. } = plan.as_ref()
        else {
            unreachable!("join_estimate on non-join");
        };
        let l = self.estimate(left);
        let r = self.estimate(right);
        let mut est = if on.is_empty() {
            l * r
        } else {
            let lcols: BTreeSet<usize> = on.iter().map(|(a, _)| *a).collect();
            let rcols: BTreeSet<usize> = on.iter().map(|(_, b)| *b).collect();
            let l_unique = covers_unique(&self.props.unique_sets(left, &self.opts), &lcols);
            let r_unique = covers_unique(&self.props.unique_sets(right, &self.opts), &rcols);
            if l_unique && r_unique {
                // Key-key join: one-to-at-most-one.
                l.min(r)
            } else if let Some(frac) = self.fk_match_fraction(left, right, on) {
                // FK join: many-to-exactly-one against the full dimension,
                // scaled by the fraction of the dimension that survives
                // any filtering below the join.
                l * frac.min(1.0)
            } else if self.opts.trust_declared
                && matches!(declared, Some(DeclaredCardinality::ManyToExactOne))
            {
                l
            } else if r_unique
                || (self.opts.trust_declared
                    && matches!(declared, Some(DeclaredCardinality::ManyToOne)))
            {
                // At most one match per left row.
                l
            } else if l_unique {
                r
            } else {
                // General equi-join: containment-style l*r / max distinct.
                (l * r) / l.max(r).max(1.0)
            }
        };
        if matches!(kind, JoinKind::LeftOuter) {
            // Outer joins preserve every left row.
            est = est.max(l);
        }
        if let Some(f) = filter {
            est *= self.predicate_selectivity(f, plan, est);
        }
        est
    }

    /// Selectivity of `pred` evaluated over `input`'s output (estimated at
    /// `input_rows` rows). `input` is used for lineage/uniqueness probes
    /// only — it is never re-estimated here, so passing the node currently
    /// being estimated (residual join filters) cannot recurse.
    fn predicate_selectivity(&self, pred: &Expr, input: &PlanRef, input_rows: f64) -> f64 {
        split_conjunction(pred)
            .iter()
            .map(|c| self.conjunct_selectivity(c, input, input_rows))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    fn conjunct_selectivity(&self, e: &Expr, input: &PlanRef, input_rows: f64) -> f64 {
        if let Expr::Binary { op: BinOp::Or, left, right } = e {
            let s1 = self.predicate_selectivity(left, input, input_rows);
            let s2 = self.predicate_selectivity(right, input, input_rows);
            return (s1 + s2 - s1 * s2).clamp(0.0, 1.0);
        }
        if let Some(atom) = as_atom(e) {
            return self.atom_selectivity(&atom, input, input_rows);
        }
        match e {
            Expr::IsNull(_) => 0.1,
            Expr::IsNotNull(_) => 0.9,
            Expr::Not(inner) => {
                (1.0 - self.conjunct_selectivity(inner, input, input_rows)).clamp(0.0, 1.0)
            }
            _ => DEFAULT_PRED_SELECTIVITY,
        }
    }

    fn atom_selectivity(&self, atom: &Atom, input: &PlanRef, input_rows: f64) -> f64 {
        let range = self.base_range(input, atom.col);
        match atom.op {
            BinOp::Eq => {
                let col: BTreeSet<usize> = [atom.col].into_iter().collect();
                if covers_unique(&self.props.unique_sets(input, &self.opts), &col) {
                    return (1.0 / input_rows.max(1.0)).min(1.0);
                }
                match range.and_then(|r| numeric_range(&r, &atom.value)) {
                    Some((lo, hi, v)) => {
                        if v < lo || v > hi {
                            // Outside the zone-map range: no row can match.
                            0.0
                        } else {
                            (1.0 / ((hi - lo) + 1.0)).clamp(0.0, 1.0)
                        }
                    }
                    None => DEFAULT_EQ_SELECTIVITY,
                }
            }
            BinOp::NotEq => {
                1.0 - self.atom_selectivity(
                    &Atom { col: atom.col, op: BinOp::Eq, value: atom.value.clone() },
                    input,
                    input_rows,
                )
            }
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                match range.and_then(|r| numeric_range(&r, &atom.value)) {
                    Some((lo, hi, v)) => {
                        let width = (hi - lo).max(f64::MIN_POSITIVE);
                        let frac = match atom.op {
                            BinOp::Lt | BinOp::LtEq => (v - lo) / width,
                            _ => (hi - v) / width,
                        };
                        frac.clamp(0.0, 1.0)
                    }
                    None => DEFAULT_PRED_SELECTIVITY,
                }
            }
            _ => DEFAULT_PRED_SELECTIVITY,
        }
    }

    /// Zone-map `(min, max)` of the base column behind output column
    /// `col` of `input`, when it traces purely to a base table with
    /// statistics.
    fn base_range(&self, input: &PlanRef, col: usize) -> Option<(Value, Value)> {
        let origin = self.props.origin(input, col)?;
        let stats = self.stats?.table_stats(&origin.table.name)?;
        stats.ranges.get(origin.column).cloned().flatten()
    }

    /// When `on` is witnessed as a foreign-key join from `left` into
    /// `right`'s base table, returns the match fraction: `rows(right) /
    /// rows(base dimension)` — 1.0 for an unfiltered dimension, smaller
    /// when the dimension side is filtered below the join.
    fn fk_match_fraction(
        &self,
        left: &PlanRef,
        right: &PlanRef,
        on: &[(usize, usize)],
    ) -> Option<f64> {
        let lorigins: Vec<_> =
            on.iter().map(|(a, _)| self.props.origin(left, *a)).collect::<Option<_>>()?;
        let rorigins: Vec<_> =
            on.iter().map(|(_, b)| self.props.origin(right, *b)).collect::<Option<_>>()?;
        // All key columns must come from one scan instance on each side,
        // and the left path must not cross NULL-padding (padded keys
        // match nothing, breaking exactly-one).
        let lt = &lorigins[0];
        let rt = &rorigins[0];
        if lorigins.iter().any(|o| o.instance != lt.instance || o.nulled)
            || rorigins.iter().any(|o| o.instance != rt.instance || o.nulled)
        {
            return None;
        }
        let ltab = &lt.table;
        let rtab = &rt.table;
        for fk in &ltab.foreign_keys {
            if fk.ref_table != rtab.name || fk.columns.len() != on.len() {
                continue;
            }
            let pairs_match = (0..on.len()).all(|i| {
                fk.columns
                    .iter()
                    .position(|&c| c == lorigins[i].column)
                    .map(|p| rtab.schema.field(rorigins[i].column).name == fk.ref_columns[p])
                    .unwrap_or(false)
            });
            let non_nullable = fk.columns.iter().all(|&c| !ltab.schema.field(c).nullable);
            if pairs_match && non_nullable {
                let stats = self.stats?;
                let base = stats.table_stats(&rtab.name)?.rows as f64;
                return Some(self.estimate(right) / base.max(1.0));
            }
        }
        None
    }
}

/// Coerces a zone-map range and probe value to `f64` for interpolation.
/// Returns `None` for non-numeric columns.
fn numeric_range(range: &(Value, Value), probe: &Value) -> Option<(f64, f64, f64)> {
    Some((value_to_f64(&range.0)?, value_to_f64(&range.1)?, value_to_f64(probe)?))
}

fn value_to_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Dec(d) => Some(d.to_f64()),
        Value::Date(d) => Some(*d as f64),
        Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        Value::Null | Value::Str(_) => None,
    }
}

/// Renders `plan` with a trailing `[est=N]` annotation on every node.
pub fn explain_with_estimates(plan: &PlanRef, card: &Cardinality) -> String {
    explain_annotated(plan, &|node| Some(format!("[est={}]", card.estimate_rounded(node))))
}

/// Pre-order node id → canonical subtree digest, the keying used to match
/// observed per-node cardinalities back onto a plan.
pub fn subtree_digests(plan: &PlanRef) -> HashMap<usize, u64> {
    let ids = number_nodes(plan);
    let mut out = HashMap::new();
    let mut stack = vec![PlanRef::clone(plan)];
    let mut seen = std::collections::HashSet::new();
    while let Some(node) = stack.pop() {
        let ptr = PlanRef::as_ptr(&node);
        if !seen.insert(ptr) {
            continue;
        }
        if let Some(&id) = ids.get(&ptr) {
            out.insert(id, plan_digest_canonical(&node));
        }
        for child in node.children() {
            stack.push(PlanRef::clone(child));
        }
    }
    out
}

/// Pre-order node id → estimated rows for every node of `plan`.
pub fn node_estimates(plan: &PlanRef, card: &Cardinality) -> Vec<(u32, u64)> {
    let ids = number_nodes(plan);
    let mut out = Vec::new();
    let mut stack = vec![PlanRef::clone(plan)];
    let mut seen = std::collections::HashSet::new();
    while let Some(node) = stack.pop() {
        let ptr = PlanRef::as_ptr(&node);
        if !seen.insert(ptr) {
            continue;
        }
        if let Some(&id) = ids.get(&ptr) {
            out.push((id as u32, card.estimate_rounded(&node)));
        }
        for child in node.children() {
            stack.push(PlanRef::clone(child));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::{TableBuilder, TableDef};
    use vdm_types::{SplitMix64, SqlType};

    struct MapStats(HashMap<String, TableStats>);

    impl StatsProvider for MapStats {
        fn table_stats(&self, table: &str) -> Option<TableStats> {
            self.0.get(table).cloned()
        }
    }

    fn dim() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("dim")
                .column("id", SqlType::Int, false)
                .column("val", SqlType::Int, false)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
    }

    fn fact() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("fact")
                .column("f_id", SqlType::Int, false)
                .column("fk", SqlType::Int, false)
                .primary_key(&["f_id"])
                .foreign_key(&["fk"], "dim", &["id"])
                .build()
                .unwrap(),
        )
    }

    /// dim: 100 rows, id in [0, 99], val in [0, 99]; fact: 10_000 rows.
    fn stats() -> MapStats {
        let int_range = |lo: i64, hi: i64| Some((Value::Int(lo), Value::Int(hi)));
        let mut m = HashMap::new();
        m.insert(
            "dim".to_string(),
            TableStats { rows: 100, ranges: vec![int_range(0, 99), int_range(0, 99)] },
        );
        m.insert(
            "fact".to_string(),
            TableStats { rows: 10_000, ranges: vec![int_range(0, 9_999), int_range(0, 99)] },
        );
        MapStats(m)
    }

    fn card<'a>(props: &'a PropertyCache, stats: &'a MapStats) -> Cardinality<'a> {
        Cardinality::new(props, DeriveOptions::all()).with_stats(stats)
    }

    #[test]
    fn scans_are_exact_with_stats_and_default_without() {
        let props = PropertyCache::new();
        let stats = stats();
        let scan = LogicalPlan::scan(fact());
        assert_eq!(card(&props, &stats).estimate(&scan), 10_000.0);
        let bare = Cardinality::new(&props, DeriveOptions::all());
        assert_eq!(bare.estimate(&scan), DEFAULT_TABLE_ROWS);
    }

    #[test]
    fn zone_map_filters_interpolate_and_prune() {
        let props = PropertyCache::new();
        let stats = stats();
        let c = card(&props, &stats);
        // Range predicate: val <= 9 over val in [0, 99] → ~10% of 100.
        let le = LogicalPlan::filter(
            LogicalPlan::scan(dim()),
            Expr::col(1).binary(BinOp::LtEq, Expr::int(9)),
        )
        .unwrap();
        let est = c.estimate(&le);
        assert!((8.0..=10.0).contains(&est), "interpolated estimate: {est}");
        // Equality outside the zone-map range can match nothing.
        let out =
            LogicalPlan::filter(LogicalPlan::scan(dim()), Expr::col(1).eq(Expr::int(500))).unwrap();
        assert_eq!(c.estimate(&out), 0.0);
        // Equality on a unique key: exactly one row.
        let pk =
            LogicalPlan::filter(LogicalPlan::scan(dim()), Expr::col(0).eq(Expr::int(7))).unwrap();
        assert_eq!(c.estimate_rounded(&pk), 1);
    }

    #[test]
    fn unique_key_joins_take_the_min() {
        let props = PropertyCache::new();
        let stats = stats();
        let c = card(&props, &stats);
        // dim pk ⋈ fact pk: both sides unique → at most min(100, 10_000).
        let j = LogicalPlan::inner_join(
            LogicalPlan::scan(dim()),
            LogicalPlan::scan(fact()),
            vec![(0, 0)],
        )
        .unwrap();
        assert_eq!(c.estimate(&j), 100.0);
    }

    #[test]
    fn fk_joins_return_left_cardinality_scaled_by_dim_filtering() {
        let props = PropertyCache::new();
        let stats = stats();
        let c = card(&props, &stats);
        // fact.fk → dim.id is a declared FK: many-to-exactly-one.
        let j = LogicalPlan::inner_join(
            LogicalPlan::scan(fact()),
            LogicalPlan::scan(dim()),
            vec![(1, 0)],
        )
        .unwrap();
        assert_eq!(c.estimate(&j), 10_000.0);
        // A filtered dimension scales the match fraction: val <= 9 keeps
        // ~10% of dim, so ~10% of fact rows find their dimension row.
        let filtered = LogicalPlan::filter(
            LogicalPlan::scan(dim()),
            Expr::col(1).binary(BinOp::LtEq, Expr::int(9)),
        )
        .unwrap();
        let j = LogicalPlan::inner_join(LogicalPlan::scan(fact()), filtered, vec![(1, 0)]).unwrap();
        let est = c.estimate(&j);
        assert!((800.0..=1_100.0).contains(&est), "scaled FK join: {est}");
    }

    #[test]
    fn union_all_sums_branch_estimates() {
        let props = PropertyCache::new();
        let stats = stats();
        let c = card(&props, &stats);
        let u = LogicalPlan::union_all(vec![
            LogicalPlan::scan(dim()),
            LogicalPlan::scan(dim()),
            LogicalPlan::scan(dim()),
        ])
        .unwrap();
        assert_eq!(c.estimate(&u), 300.0);
    }

    /// A small random plan over dim/fact, deterministic in `seed`: the
    /// same seed always constructs the same shape (with fresh `Arc`s).
    fn random_plan(seed: u64) -> PlanRef {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut plan = if rng.random_range(0..2) == 0 {
            LogicalPlan::scan(dim())
        } else {
            LogicalPlan::inner_join(
                LogicalPlan::scan(fact()),
                LogicalPlan::scan(dim()),
                vec![(1, 0)],
            )
            .unwrap()
        };
        for _ in 0..rng.random_range(1..4) {
            plan = match rng.random_range(0..3) {
                0 => LogicalPlan::filter(
                    plan,
                    Expr::col(1).binary(BinOp::LtEq, Expr::int(rng.random_range(0..120))),
                )
                .unwrap(),
                1 => LogicalPlan::project(
                    plan,
                    vec![(Expr::col(0), "a".into()), (Expr::col(1), "b".into())],
                )
                .unwrap(),
                _ => LogicalPlan::limit(plan, 0, Some(rng.random_range(1..500))),
            };
        }
        plan
    }

    #[test]
    fn estimates_and_overrides_are_digest_invariant() {
        // Property: two independent constructions of the same plan shape
        // agree on canonical digests and estimates, and an override
        // recorded against one construction's subtree digest redirects
        // the estimate of the *other* construction — the invariance the
        // feedback loop depends on across plan-cache re-optimizations.
        let stats = stats();
        for seed in 0..40u64 {
            let a = random_plan(seed);
            let b = random_plan(seed);
            assert!(!Arc::ptr_eq(&a, &b));
            assert_eq!(
                plan_digest_canonical(&a),
                plan_digest_canonical(&b),
                "seed {seed}: same construction must canonicalize identically"
            );
            let props = PropertyCache::new();
            let ca = card(&props, &stats);
            let cb = card(&props, &stats);
            assert_eq!(ca.estimate(&a), cb.estimate(&b), "seed {seed}: estimate mismatch");

            let mut overrides = CardOverrides::new();
            overrides.insert(plan_digest_canonical(&a), 123_456.0);
            let cb = Cardinality::new(&props, DeriveOptions::all())
                .with_stats(&stats)
                .with_overrides(&overrides);
            assert_eq!(
                cb.estimate(&b),
                123_456.0,
                "seed {seed}: override keyed by a's digest must apply to b"
            );
        }
    }
}
