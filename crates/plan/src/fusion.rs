//! Execution-time projection-chain fusion (detection side).
//!
//! The VDM unfolder stacks dozens of pass-through/renaming `Project`
//! nodes — the paper's §4.4 paging browser carries a 28-node chain where
//! every node only reorders, renames, or duplicates input columns. Each
//! such node is a *pure column mapping*: every output expression is
//! `Expr::Col(i)`. Adjacent column mappings compose into one mapping
//! (`(outer ∘ inner)[j] = inner[outer[j]]`), so the whole chain can run
//! as a single column-select kernel instead of N per-row evaluation
//! passes.
//!
//! This module only *detects and composes* chains; executing the fused
//! mapping (and attributing per-node stats back to the covered nodes)
//! is the executor's job. Fusion is deliberately an execution-time
//! rewrite, not an optimizer rule: the logical plan keeps its per-node
//! shape so EXPLAIN, lineage, and rewrite traces still see every
//! projection the view unfolder produced.

use crate::node::{LogicalPlan, PlanRef};
use std::sync::Arc;
use vdm_expr::Expr;
use vdm_types::Schema;

/// Returns the column mapping of a pure pass-through/renaming projection:
/// `Some(m)` with `m[j] = i` iff every output expression `j` is
/// `Expr::Col(i)`. Computed expressions disqualify the node.
pub fn column_mapping(exprs: &[(Expr, String)]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|(e, _)| match e {
            Expr::Col(i) => Some(*i),
            _ => None,
        })
        .collect()
}

/// A maximal run of adjacent column-mapping `Project` nodes, composed
/// into a single mapping over the chain's input.
#[derive(Debug)]
pub struct FusedChain<'p> {
    /// The first non-column-mapping descendant — the fused kernel's input.
    pub input: &'p PlanRef,
    /// Composed mapping: output column `j` of the chain is column
    /// `mapping[j]` of `input`.
    pub mapping: Vec<usize>,
    /// The covered `Project` nodes, outermost first. Stats attribution
    /// records each of these ids against the fused group.
    pub nodes: Vec<&'p PlanRef>,
    /// Output schema of the chain (= the outermost node's schema).
    pub schema: &'p Arc<Schema>,
}

/// Detects the maximal column-mapping projection chain rooted at `plan`.
/// Returns `None` unless the chain covers at least `min_len` nodes.
pub fn fused_projection_chain(plan: &PlanRef, min_len: usize) -> Option<FusedChain<'_>> {
    let LogicalPlan::Project { exprs, schema, .. } = plan.as_ref() else {
        return None;
    };
    let mut mapping = column_mapping(exprs)?;
    let mut nodes = vec![plan];
    let mut cursor = match plan.as_ref() {
        LogicalPlan::Project { input, .. } => input,
        _ => unreachable!(),
    };
    while let LogicalPlan::Project { input, exprs, .. } = cursor.as_ref() {
        let Some(inner) = column_mapping(exprs) else { break };
        for m in &mut mapping {
            *m = inner[*m];
        }
        nodes.push(cursor);
        cursor = input;
    }
    if nodes.len() < min_len {
        return None;
    }
    Some(FusedChain { input: cursor, mapping, nodes, schema })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::{Field, SqlType};

    fn schema(names: &[&str]) -> Arc<Schema> {
        Arc::new(Schema::new(
            names.iter().map(|n| Field::new(n.to_string(), SqlType::Int, true)).collect(),
        ))
    }

    fn values(width: usize) -> PlanRef {
        Arc::new(LogicalPlan::Values { schema: schema(&vec!["v"; width]), rows: vec![] })
    }

    fn project(input: PlanRef, cols: &[usize]) -> PlanRef {
        let s = schema(&cols.iter().map(|_| "p").collect::<Vec<_>>());
        Arc::new(LogicalPlan::Project {
            input,
            exprs: cols.iter().map(|&c| (Expr::col(c), format!("c{c}"))).collect(),
            schema: s,
        })
    }

    #[test]
    fn composes_reorder_rename_and_duplication() {
        // base(4 cols) → keep [2,0,3] → keep [1,1,2] ⇒ [0,0,3] over base.
        let base = values(4);
        let chain = project(project(base, &[2, 0, 3]), &[1, 1, 2]);
        let fused = fused_projection_chain(&chain, 2).expect("chain of 2");
        assert_eq!(fused.mapping, vec![0, 0, 3]);
        assert_eq!(fused.nodes.len(), 2);
        assert!(matches!(fused.input.as_ref(), LogicalPlan::Values { .. }));
    }

    #[test]
    fn stops_at_computed_projection() {
        let base = values(2);
        let computed = Arc::new(LogicalPlan::Project {
            input: base,
            exprs: vec![(Expr::col(0).binary(vdm_expr::BinOp::Add, Expr::int(1)), "x".into())],
            schema: schema(&["x"]),
        });
        let chain = project(project(computed.clone(), &[0]), &[0]);
        let fused = fused_projection_chain(&chain, 2).expect("two pass-throughs above");
        assert_eq!(fused.nodes.len(), 2);
        assert!(Arc::ptr_eq(fused.input, &computed), "fusion must stop above the computed node");
        // The computed node itself is not a chain head.
        assert!(fused_projection_chain(&computed, 1).is_none());
    }

    #[test]
    fn honors_min_len() {
        let single = project(values(3), &[1]);
        assert!(fused_projection_chain(&single, 2).is_none());
        let fused = fused_projection_chain(&single, 1).expect("min_len=1 takes singletons");
        assert_eq!(fused.mapping, vec![1]);
    }

    #[test]
    fn deep_chain_composes_to_identity() {
        // 28 stacked identity projections — the browser shape.
        let mut plan = values(3);
        for _ in 0..28 {
            plan = project(plan, &[0, 1, 2]);
        }
        let fused = fused_projection_chain(&plan, 2).unwrap();
        assert_eq!(fused.nodes.len(), 28);
        assert_eq!(fused.mapping, vec![0, 1, 2]);
    }
}
