//! Column lineage: tracing an output column to its originating base-table
//! scan through pure column references.
//!
//! This is the second load-bearing analysis behind ASJ elimination (§5 of
//! the paper): re-wiring an augmenter field to the anchor is only sound
//! when the anchor's join key *is* the base table's key column, reached
//! without computation. The `filtered`/`nulled` flags record whether the
//! path can drop rows (inner joins, filters, limits) or NULL-pad them
//! (the padded side of an outer join) — each blocks a different rewrite.

use crate::node::{JoinKind, LogicalPlan, PlanRef};
use std::sync::Arc;
use vdm_catalog::TableDef;
use vdm_expr::Expr;

/// Where an output column comes from.
#[derive(Debug, Clone)]
pub struct Origin {
    /// The originating base table.
    pub table: Arc<TableDef>,
    /// Scan instance id (distinguishes self-join instances).
    pub instance: usize,
    /// Column ordinal within the base table.
    pub column: usize,
    /// The path may drop rows (filter, limit, inner join, join matching).
    pub filtered: bool,
    /// The path crosses the NULL-padded side of an outer join.
    pub nulled: bool,
}

/// Traces output column `ord` of `plan` to its base-table origin, if it is
/// a pure (uncomputed) column reference all the way down.
pub fn trace_column(plan: &PlanRef, ord: usize) -> Option<Origin> {
    match plan.as_ref() {
        LogicalPlan::Scan { table, instance, .. } => Some(Origin {
            table: Arc::clone(table),
            instance: *instance,
            column: ord,
            filtered: false,
            nulled: false,
        }),
        LogicalPlan::Project { input, exprs, .. } => match &exprs.get(ord)?.0 {
            Expr::Col(i) => trace_column(input, *i),
            _ => None,
        },
        LogicalPlan::Filter { input, .. } => {
            let mut o = trace_column(input, ord)?;
            o.filtered = true;
            Some(o)
        }
        LogicalPlan::Sort { input, .. } => trace_column(input, ord),
        LogicalPlan::Limit { input, .. } => {
            // LIMIT can drop the row carrying a given base row's value.
            let mut o = trace_column(input, ord)?;
            o.filtered = true;
            Some(o)
        }
        LogicalPlan::Join { left, right, kind, .. } => {
            let nl = left.schema().len();
            if ord < nl {
                let mut o = trace_column(left, ord)?;
                // An inner join can drop unmatched left rows; a left-outer
                // join never does.
                o.filtered |= *kind == JoinKind::Inner;
                Some(o)
            } else {
                let mut o = trace_column(right, ord - nl)?;
                // The right side can always miss rows (no probe match)...
                o.filtered = true;
                // ...and a left-outer join NULL-pads it.
                o.nulled |= *kind == JoinKind::LeftOuter;
                Some(o)
            }
        }
        // Unions mix instances; aggregates/distinct/values compute rows.
        _ => None,
    }
}

/// Lineage of every output column (None = computed or untraceable).
pub fn column_lineage(plan: &PlanRef) -> Vec<Option<Origin>> {
    (0..plan.schema().len()).map(|i| trace_column(plan, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn table(name: &str) -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new(name)
                .column("k", SqlType::Int, false)
                .column("v", SqlType::Int, false)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn traces_through_pure_wrappers() {
        let t = table("t");
        let plan = LogicalPlan::project(
            LogicalPlan::filter(LogicalPlan::scan(Arc::clone(&t)), Expr::col(1).eq(Expr::int(1)))
                .unwrap(),
            vec![(Expr::col(1), "vee".into()), (Expr::col(0), "kay".into())],
        )
        .unwrap();
        let o = trace_column(&plan, 1).unwrap();
        assert_eq!(o.table.name, "t");
        assert_eq!(o.column, 0);
        assert!(o.filtered, "filter on the path");
        assert!(!o.nulled);
        // Computed columns have no lineage.
        let plan = LogicalPlan::project(
            LogicalPlan::scan(t),
            vec![(Expr::col(0).binary(vdm_expr::BinOp::Add, Expr::int(1)), "c".into())],
        )
        .unwrap();
        assert!(trace_column(&plan, 0).is_none());
    }

    #[test]
    fn join_sides_set_flags() {
        let l = LogicalPlan::scan(table("l"));
        let r = LogicalPlan::scan(table("r"));
        let join = LogicalPlan::left_join(l, r, vec![(0, 0)]).unwrap();
        let left_col = trace_column(&join, 0).unwrap();
        assert!(!left_col.filtered && !left_col.nulled, "left of ⟕ is preserved");
        let right_col = trace_column(&join, 2).unwrap();
        assert!(right_col.filtered && right_col.nulled, "right of ⟕ may be padded");
        let l = LogicalPlan::scan(table("l"));
        let r = LogicalPlan::scan(table("r"));
        let inner = LogicalPlan::inner_join(l, r, vec![(0, 0)]).unwrap();
        let left_col = trace_column(&inner, 0).unwrap();
        assert!(left_col.filtered, "inner join can drop left rows");
        assert!(!left_col.nulled);
    }

    #[test]
    fn lineage_vector_and_instances() {
        let t = table("t");
        let a = LogicalPlan::scan(Arc::clone(&t));
        let b = LogicalPlan::scan(t);
        let join = LogicalPlan::inner_join(a, b, vec![(0, 0)]).unwrap();
        let lin = column_lineage(&join);
        assert_eq!(lin.len(), 4);
        let (i0, i2) = (lin[0].as_ref().unwrap().instance, lin[2].as_ref().unwrap().instance);
        assert_ne!(i0, i2, "self-join instances stay distinguishable");
        assert_eq!(lin[0].as_ref().unwrap().table.name, "t");
    }

    #[test]
    fn blocked_by_aggregates_and_unions() {
        let t = table("t");
        let agg = LogicalPlan::aggregate(
            LogicalPlan::scan(Arc::clone(&t)),
            vec![(Expr::col(0), "k".into())],
            vec![],
        )
        .unwrap();
        assert!(trace_column(&agg, 0).is_none());
        let u =
            LogicalPlan::union_all(vec![LogicalPlan::scan(Arc::clone(&t)), LogicalPlan::scan(t)])
                .unwrap();
        assert!(trace_column(&u, 0).is_none());
    }
}
