//! Logical query plans and their derived properties.
//!
//! A [`LogicalPlan`] is an immutable DAG (`Arc`-shared children — SAP HANA
//! shares subqueries the same way, which is why Fig. 3 of the paper counts
//! 47 table instances shared vs 62 unshared). Construction goes through
//! validating constructors that compute output schemas eagerly.
//!
//! The properties module implements the *unique key set* derivation at the
//! heart of augmentation-join detection (§4.2), parameterised by
//! [`props::DeriveOptions`] so optimizer capability profiles can disable
//! individual derivations and reproduce the behaviour differences of
//! Tables 1–4.

pub mod cache;
pub mod card;
pub mod delta;
pub mod digest;
pub mod explain;
pub mod fusion;
pub mod lineage;
pub mod node;
pub mod params;
pub mod props;
pub mod registry;
pub mod stats;
pub mod transform;

pub use cache::{CacheStats, PropertyCache};
pub use card::{
    explain_with_estimates, node_estimates, subtree_digests, CardOverrides, Cardinality,
    StatsProvider, TableStats,
};
pub use delta::{
    delta_capable, derive_delta_plan, folded_aggregate, scan_tables, DeltaClass, DeltaPlan,
};
pub use digest::{plan_digest, plan_digest_canonical};
pub use explain::{explain, explain_annotated, number_nodes};
pub use fusion::{column_mapping, fused_projection_chain, FusedChain};
pub use lineage::{column_lineage, trace_column, Origin};
pub use node::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef, SortKey};
pub use params::{bind_params, contains_params, max_param_index};
pub use props::{statically_empty, unique_sets, DeriveOptions};
pub use registry::ViewRegistry;
pub use stats::{plan_stats, PlanStats};
pub use transform::{map_children, transform_up};
