//! Logical plan nodes and validating constructors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vdm_catalog::TableDef;
use vdm_expr::{AggExpr, Expr};
use vdm_types::{Field, Result, Schema, SqlType, Value, VdmError};

/// Shared plan handle. Plans form DAGs: sharing a subquery is just cloning
/// the `Arc`.
pub type PlanRef = Arc<LogicalPlan>;

/// Join kinds. The paper's augmentation-join analysis needs exactly these
/// two; other kinds (right/full outer, semi, anti) are out of scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

/// A declared join cardinality (§7.3): the HANA SQL extension
/// `LEFT OUTER MANY TO ONE JOIN`. Not enforced — trusted by the optimizer
/// when the `TRUST_DECLARED_CARDINALITY` capability is on, and checkable
/// against data with `vdm_model`'s verification tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclaredCardinality {
    /// Each left record matches at most one right record (`1..m : 0..1`).
    ManyToOne,
    /// Each left record matches exactly one right record (`1..m : 1..1`).
    ManyToExactOne,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub asc: bool,
    pub nulls_first: bool,
}

impl SortKey {
    /// Ascending key over a column, NULLs first.
    pub fn asc(col: usize) -> SortKey {
        SortKey { expr: Expr::col(col), asc: true, nulls_first: true }
    }

    /// Descending key over a column, NULLs last.
    pub fn desc(col: usize) -> SortKey {
        SortKey { expr: Expr::col(col), asc: false, nulls_first: false }
    }
}

static NEXT_INSTANCE: AtomicUsize = AtomicUsize::new(1);

/// A logical relational operator.
///
/// Output schemas are precomputed by the constructors; expressions in every
/// node reference *child output ordinals* (for joins: left columns first,
/// then right).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan. `instance` distinguishes several scans of the same
    /// table (self joins) and identifies scans for lineage tracking.
    Scan { table: Arc<TableDef>, instance: usize, schema: Arc<Schema> },
    /// Literal rows (also models the empty relation of AJ 2b).
    Values { schema: Arc<Schema>, rows: Vec<Vec<Value>> },
    /// Projection: computes `exprs` over the input; output field `i` is
    /// named `exprs[i].1`.
    Project { input: PlanRef, exprs: Vec<(Expr, String)>, schema: Arc<Schema> },
    /// Filter: keeps rows where the predicate evaluates to TRUE.
    Filter { input: PlanRef, predicate: Expr },
    /// Equi join with optional residual filter over the combined schema.
    Join {
        left: PlanRef,
        right: PlanRef,
        kind: JoinKind,
        /// Equi-key pairs: (left ordinal, right ordinal in right schema).
        on: Vec<(usize, usize)>,
        /// Residual non-equi condition over `left ++ right` ordinals.
        filter: Option<Expr>,
        /// §7.3 declared cardinality, if the query spelled one.
        declared: Option<DeclaredCardinality>,
        /// §6.3 case join: the query declared ASJ intent, so the optimizer
        /// must preserve the augmenter-side UNION ALL subgraph and try ASJ
        /// elimination eagerly.
        asj_intent: bool,
        schema: Arc<Schema>,
    },
    /// Bag union of arity-compatible inputs.
    UnionAll { inputs: Vec<PlanRef>, schema: Arc<Schema> },
    /// Grouped aggregation; output = group columns then aggregates.
    Aggregate {
        input: PlanRef,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<(AggExpr, String)>,
        schema: Arc<Schema>,
    },
    /// Duplicate elimination over all columns.
    Distinct { input: PlanRef },
    /// ORDER BY.
    Sort { input: PlanRef, keys: Vec<SortKey> },
    /// LIMIT/OFFSET: skips `skip` rows, then emits at most `fetch` rows.
    Limit { input: PlanRef, skip: u64, fetch: Option<u64> },
}

impl LogicalPlan {
    /// Fresh scan of `table` with a new instance id.
    pub fn scan(table: Arc<TableDef>) -> PlanRef {
        let schema = Arc::new(table.schema.clone());
        Arc::new(LogicalPlan::Scan {
            table,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            schema,
        })
    }

    /// Literal rows; validates row arity against the schema.
    pub fn values(schema: Schema, rows: Vec<Vec<Value>>) -> Result<PlanRef> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != schema.len() {
                return Err(VdmError::Plan(format!(
                    "VALUES row {i} has {} fields, schema has {}",
                    r.len(),
                    schema.len()
                )));
            }
        }
        Ok(Arc::new(LogicalPlan::Values { schema: Arc::new(schema), rows }))
    }

    /// The empty relation with the given schema (AJ 2b's `R ⟕ ∅`).
    pub fn empty(schema: Schema) -> PlanRef {
        Arc::new(LogicalPlan::Values { schema: Arc::new(schema), rows: Vec::new() })
    }

    /// Projection; type-checks every expression.
    pub fn project(input: PlanRef, exprs: Vec<(Expr, String)>) -> Result<PlanRef> {
        let in_schema = input.schema();
        let mut fields = Vec::with_capacity(exprs.len());
        for (e, name) in &exprs {
            let (ty, nullable) = e.data_type(&in_schema)?;
            fields.push(Field::new(name.clone(), ty, nullable));
        }
        Ok(Arc::new(LogicalPlan::Project { input, exprs, schema: Arc::new(Schema::new(fields)) }))
    }

    /// Identity projection passing through `cols` of the input by ordinal,
    /// keeping their names.
    pub fn project_cols(input: PlanRef, cols: &[usize]) -> Result<PlanRef> {
        let schema = input.schema();
        let exprs = cols.iter().map(|&i| (Expr::col(i), schema.field(i).name.clone())).collect();
        LogicalPlan::project(input, exprs)
    }

    /// Filter; the predicate must be boolean.
    pub fn filter(input: PlanRef, predicate: Expr) -> Result<PlanRef> {
        let (ty, _) = predicate.data_type(&input.schema())?;
        if ty != SqlType::Bool {
            return Err(VdmError::Plan(format!("filter predicate must be boolean, got {ty}")));
        }
        Ok(Arc::new(LogicalPlan::Filter { input, predicate }))
    }

    /// Equi join with validation of key ordinals/types and the residual
    /// filter.
    pub fn join(
        left: PlanRef,
        right: PlanRef,
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        filter: Option<Expr>,
        declared: Option<DeclaredCardinality>,
        asj_intent: bool,
    ) -> Result<PlanRef> {
        let ls = left.schema();
        let rs = right.schema();
        for &(l, r) in &on {
            if l >= ls.len() || r >= rs.len() {
                return Err(VdmError::Plan(format!(
                    "join key ({l}, {r}) out of range for schemas of {} and {} fields",
                    ls.len(),
                    rs.len()
                )));
            }
            let lt = ls.field(l).ty;
            let rt = rs.field(r).ty;
            if lt.unify(&rt).is_none() {
                return Err(VdmError::Plan(format!("join key type mismatch: {lt} vs {rt}")));
            }
        }
        let schema = Arc::new(ls.join(&rs, kind == JoinKind::LeftOuter));
        if let Some(f) = &filter {
            let (ty, _) = f.data_type(&schema)?;
            if ty != SqlType::Bool {
                return Err(VdmError::Plan("join filter must be boolean".into()));
            }
        }
        Ok(Arc::new(LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            filter,
            declared,
            asj_intent,
            schema,
        }))
    }

    /// Plain inner equi join.
    pub fn inner_join(left: PlanRef, right: PlanRef, on: Vec<(usize, usize)>) -> Result<PlanRef> {
        LogicalPlan::join(left, right, JoinKind::Inner, on, None, None, false)
    }

    /// Plain left-outer equi join.
    pub fn left_join(left: PlanRef, right: PlanRef, on: Vec<(usize, usize)>) -> Result<PlanRef> {
        LogicalPlan::join(left, right, JoinKind::LeftOuter, on, None, None, false)
    }

    /// UNION ALL; inputs must agree in arity and unify in types. Output
    /// fields take the first child's names and the unified types; a field
    /// is nullable if nullable in any child.
    pub fn union_all(inputs: Vec<PlanRef>) -> Result<PlanRef> {
        let first = inputs
            .first()
            .ok_or_else(|| VdmError::Plan("UNION ALL needs at least one input".into()))?;
        let mut fields: Vec<Field> = first.schema().fields().to_vec();
        for inp in &inputs[1..] {
            let s = inp.schema();
            if s.len() != fields.len() {
                return Err(VdmError::Plan(format!(
                    "UNION ALL arity mismatch: {} vs {}",
                    fields.len(),
                    s.len()
                )));
            }
            for (f, other) in fields.iter_mut().zip(s.fields()) {
                f.ty = f.ty.unify(&other.ty).ok_or_else(|| {
                    VdmError::Plan(format!(
                        "UNION ALL type mismatch on {:?}: {} vs {}",
                        f.name, f.ty, other.ty
                    ))
                })?;
                f.nullable |= other.nullable;
            }
        }
        Ok(Arc::new(LogicalPlan::UnionAll { inputs, schema: Arc::new(Schema::new(fields)) }))
    }

    /// Grouped aggregation.
    pub fn aggregate(
        input: PlanRef,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<(AggExpr, String)>,
    ) -> Result<PlanRef> {
        let in_schema = input.schema();
        let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
        for (e, name) in &group_by {
            let (ty, nullable) = e.data_type(&in_schema)?;
            fields.push(Field::new(name.clone(), ty, nullable));
        }
        for (a, name) in &aggs {
            let (ty, nullable) = a.data_type(&in_schema)?;
            fields.push(Field::new(name.clone(), ty, nullable));
        }
        Ok(Arc::new(LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema: Arc::new(Schema::new(fields)),
        }))
    }

    /// DISTINCT over all columns.
    pub fn distinct(input: PlanRef) -> PlanRef {
        Arc::new(LogicalPlan::Distinct { input })
    }

    /// ORDER BY; keys are type-checked.
    pub fn sort(input: PlanRef, keys: Vec<SortKey>) -> Result<PlanRef> {
        let s = input.schema();
        for k in &keys {
            k.expr.data_type(&s)?;
        }
        Ok(Arc::new(LogicalPlan::Sort { input, keys }))
    }

    /// LIMIT `fetch` OFFSET `skip`.
    pub fn limit(input: PlanRef, skip: u64, fetch: Option<u64>) -> PlanRef {
        Arc::new(LogicalPlan::Limit { input, skip, fetch })
    }

    /// The node's output schema.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Values { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::UnionAll { schema, .. }
            | LogicalPlan::Aggregate { schema, .. } => Arc::clone(schema),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Child plans in order.
    pub fn children(&self) -> Vec<&PlanRef> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::UnionAll { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Short operator name for EXPLAIN output and stats.
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Values { .. } => "Values",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::UnionAll { .. } => "UnionAll",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Distinct { .. } => "Distinct",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;

    fn customer() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("customer")
                .column("c_custkey", SqlType::Int, false)
                .column("c_name", SqlType::Text, false)
                .column("c_nationkey", SqlType::Int, false)
                .primary_key(&["c_custkey"])
                .build()
                .unwrap(),
        )
    }

    fn orders() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("orders")
                .column("o_orderkey", SqlType::Int, false)
                .column("o_custkey", SqlType::Int, false)
                .primary_key(&["o_orderkey"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn scan_instances_are_distinct() {
        let t = customer();
        let a = LogicalPlan::scan(Arc::clone(&t));
        let b = LogicalPlan::scan(t);
        let (ia, ib) = match (a.as_ref(), b.as_ref()) {
            (LogicalPlan::Scan { instance: ia, .. }, LogicalPlan::Scan { instance: ib, .. }) => {
                (*ia, *ib)
            }
            _ => unreachable!(),
        };
        assert_ne!(ia, ib);
    }

    #[test]
    fn join_schema_marks_outer_side_nullable() {
        let o = LogicalPlan::scan(orders());
        let c = LogicalPlan::scan(customer());
        let j = LogicalPlan::left_join(o, c, vec![(1, 0)]).unwrap();
        let s = j.schema();
        assert_eq!(s.len(), 5);
        assert!(!s.field(0).nullable);
        assert!(s.field(2).nullable, "left-outer right side must be nullable");
    }

    #[test]
    fn join_validates_keys() {
        let o = LogicalPlan::scan(orders());
        let c = LogicalPlan::scan(customer());
        assert!(LogicalPlan::inner_join(Arc::clone(&o), Arc::clone(&c), vec![(9, 0)]).is_err());
        // Type mismatch: orders.o_orderkey (Int) vs customer.c_name (Text).
        assert!(LogicalPlan::inner_join(o, c, vec![(0, 1)]).is_err());
    }

    #[test]
    fn union_all_unifies_and_validates() {
        let a = LogicalPlan::scan(orders());
        let b = LogicalPlan::scan(orders());
        let u = LogicalPlan::union_all(vec![a, b]).unwrap();
        assert_eq!(u.schema().len(), 2);
        let c = LogicalPlan::scan(customer());
        let o = LogicalPlan::scan(orders());
        assert!(LogicalPlan::union_all(vec![o, c]).is_err());
        assert!(LogicalPlan::union_all(vec![]).is_err());
    }

    #[test]
    fn project_types_exprs() {
        let o = LogicalPlan::scan(orders());
        let p = LogicalPlan::project(
            o,
            vec![(Expr::col(0), "k".into()), (Expr::col(0).eq(Expr::int(1)), "is_one".into())],
        )
        .unwrap();
        assert_eq!(p.schema().field(1).ty, SqlType::Bool);
        let o = LogicalPlan::scan(orders());
        assert!(LogicalPlan::project(o, vec![(Expr::col(7), "x".into())]).is_err());
    }

    #[test]
    fn filter_must_be_boolean() {
        let o = LogicalPlan::scan(orders());
        assert!(LogicalPlan::filter(Arc::clone(&o), Expr::col(0)).is_err());
        assert!(LogicalPlan::filter(o, Expr::col(0).eq(Expr::int(1))).is_ok());
    }

    #[test]
    fn values_arity_checked() {
        let s = Schema::new(vec![Field::new("a", SqlType::Int, false)]);
        assert!(LogicalPlan::values(s.clone(), vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        assert!(LogicalPlan::values(s, vec![vec![Value::Int(1)]]).is_ok());
    }

    #[test]
    fn aggregate_schema_layout() {
        let o = LogicalPlan::scan(orders());
        let a = LogicalPlan::aggregate(
            o,
            vec![(Expr::col(1), "cust".into())],
            vec![(AggExpr::count_star(), "n".into())],
        )
        .unwrap();
        let s = a.schema();
        assert_eq!(s.field(0).name, "cust");
        assert_eq!(s.field(1).name, "n");
        assert_eq!(s.field(1).ty, SqlType::Int);
    }
}
