//! Structural plan digests for cheap change detection.
//!
//! The optimizer's fixpoint loop needs to know whether a round changed the
//! plan. Comparing node counts ([`crate::stats::plan_stats`]) misses
//! count-neutral rewrites (e.g. an ASJ rewiring that swaps a join input
//! without adding or removing nodes); comparing full plans with `==` walks
//! shared subtrees once per path. [`plan_digest`] hashes the whole
//! structure — operator, per-variant content, and child digests — with a
//! DAG memo, so equal digests mean "no observable rewrite happened" and
//! each shared node is hashed once.

use crate::node::{LogicalPlan, PlanRef};
use std::collections::HashMap;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0xff]); // separator so "ab"+"c" != "a"+"bc"
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Structural digest of a plan DAG. Two plans with equal digests are
/// structurally identical for fixpoint purposes; shared nodes hash once.
pub fn plan_digest(plan: &PlanRef) -> u64 {
    let mut memo: HashMap<*const LogicalPlan, u64> = HashMap::new();
    digest_memo(plan, &mut memo, None)
}

/// Like [`plan_digest`], but scan instance ids are renumbered by first
/// visit in traversal order. Instance ids come from a process-global
/// counter at bind time, so two plans bound independently from the same
/// statement never share them — this variant makes such plans compare
/// equal (used to assert a cached plan matches a cold re-optimize) while
/// still distinguishing *which* scans a DAG shares.
pub fn plan_digest_canonical(plan: &PlanRef) -> u64 {
    let mut memo: HashMap<*const LogicalPlan, u64> = HashMap::new();
    let mut renumber: HashMap<usize, u64> = HashMap::new();
    digest_memo(plan, &mut memo, Some(&mut renumber))
}

fn digest_memo(
    plan: &PlanRef,
    memo: &mut HashMap<*const LogicalPlan, u64>,
    mut renumber: Option<&mut HashMap<usize, u64>>,
) -> u64 {
    let key = Arc::as_ptr(plan);
    if let Some(&d) = memo.get(&key) {
        return d;
    }
    let mut h = Fnv::new();
    h.str(plan.op_name());
    match plan.as_ref() {
        LogicalPlan::Scan { table, instance, .. } => {
            h.str(&table.name);
            let id = match renumber.as_deref_mut() {
                Some(map) => {
                    let next = map.len() as u64;
                    *map.entry(*instance).or_insert(next)
                }
                None => *instance as u64,
            };
            h.u64(id);
        }
        LogicalPlan::Values { rows, schema } => {
            h.str(&format!("{rows:?}"));
            h.u64(schema.len() as u64);
        }
        LogicalPlan::Project { exprs, .. } => h.str(&format!("{exprs:?}")),
        LogicalPlan::Filter { predicate, .. } => h.str(&format!("{predicate:?}")),
        LogicalPlan::Join { kind, on, filter, declared, asj_intent, .. } => {
            h.str(&format!("{kind:?} {on:?} {filter:?} {declared:?} {asj_intent}"));
        }
        LogicalPlan::UnionAll { inputs, .. } => h.u64(inputs.len() as u64),
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            h.str(&format!("{group_by:?} {aggs:?}"));
        }
        LogicalPlan::Distinct { .. } => {}
        LogicalPlan::Sort { keys, .. } => h.str(&format!("{keys:?}")),
        LogicalPlan::Limit { skip, fetch, .. } => {
            h.u64(*skip);
            h.u64(fetch.map_or(u64::MAX, |f| f));
            h.u64(u64::from(fetch.is_some()));
        }
    }
    for c in plan.children() {
        let d = digest_memo(c, memo, renumber.as_deref_mut());
        h.u64(d);
    }
    memo.insert(key, h.0);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_expr::Expr;
    use vdm_types::SqlType;

    fn scan() -> PlanRef {
        LogicalPlan::scan(std::sync::Arc::new(
            TableBuilder::new("t")
                .column("a", SqlType::Int, false)
                .column("b", SqlType::Int, false)
                .primary_key(&["a"])
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let s = scan();
        let p1 = LogicalPlan::filter(s.clone(), Expr::col(0).eq(Expr::int(1))).unwrap();
        let p2 = LogicalPlan::filter(s.clone(), Expr::col(0).eq(Expr::int(1))).unwrap();
        let p3 = LogicalPlan::filter(s, Expr::col(0).eq(Expr::int(2))).unwrap();
        assert_eq!(plan_digest(&p1), plan_digest(&p2));
        assert_ne!(plan_digest(&p1), plan_digest(&p3));
    }

    #[test]
    fn canonical_digest_ignores_instance_numbering() {
        // Two binds of the same statement get fresh instance ids: raw
        // digests differ, canonical digests agree.
        let p1 = LogicalPlan::inner_join(scan(), scan(), vec![(0, 0)]).unwrap();
        let p2 = LogicalPlan::inner_join(scan(), scan(), vec![(0, 0)]).unwrap();
        assert_ne!(plan_digest(&p1), plan_digest(&p2));
        assert_eq!(plan_digest_canonical(&p1), plan_digest_canonical(&p2));
        // But a self-join of ONE scan is still distinct from a join of two
        // scans of the same table — sharing matters.
        let s = scan();
        let shared = LogicalPlan::inner_join(s.clone(), s, vec![(0, 0)]).unwrap();
        assert_ne!(plan_digest_canonical(&shared), plan_digest_canonical(&p1));
    }

    #[test]
    fn digest_distinguishes_count_equal_plans() {
        // Same node counts, different wiring — exactly what plan_stats-based
        // fixpoint detection cannot see.
        let a = scan();
        let b = scan();
        let j1 = LogicalPlan::inner_join(a.clone(), b.clone(), vec![(0, 0)]).unwrap();
        let j2 = LogicalPlan::inner_join(b, a, vec![(0, 0)]).unwrap();
        assert_ne!(plan_digest(&j1), plan_digest(&j2));
        assert_eq!(crate::stats::plan_stats(&j1), crate::stats::plan_stats(&j2));
    }
}
