//! Execute-time parameter substitution for cached plans.
//!
//! A parameterized plan keeps [`Expr::Param`] placeholders through binding
//! and optimization; the plan cache stores that optimized form once per
//! statement shape. Each execution then calls [`bind_params`] to splice the
//! call's literal values in — a cheap structural rewrite (shared subtrees
//! without placeholders keep their `Arc` identity) that replaces the full
//! parse + bind + optimize pipeline on the hot path.

use crate::node::{LogicalPlan, PlanRef, SortKey};
use crate::transform::transform_up;
use vdm_expr::Expr;
use vdm_types::{Result, Value};

/// True when any expression anywhere in the plan contains a placeholder.
pub fn contains_params(plan: &PlanRef) -> bool {
    max_param_index(plan).is_some()
}

/// Highest 0-based placeholder index referenced by the plan, if any.
pub fn max_param_index(plan: &PlanRef) -> Option<usize> {
    let mut max: Option<usize> = None;
    let mut note = |e: &Expr| {
        e.visit(&mut |n| {
            if let Expr::Param { idx, .. } = n {
                max = Some(max.map_or(*idx, |m| m.max(*idx)));
            }
        });
    };
    for_each_expr(plan, &mut note);
    max
}

/// Replaces every [`Expr::Param`] in the plan with the literal at its index
/// in `values`. Nodes without placeholders are reused as-is (the rewrite is
/// `Arc`-identity preserving), so the per-execution cost is proportional to
/// the number of parameterized nodes, not the plan size. Errors when the
/// plan references an index `values` does not cover.
pub fn bind_params(plan: &PlanRef, values: &[Value]) -> Result<PlanRef> {
    transform_up(plan, &mut |node| {
        let rewrite = |e: &Expr| -> Result<Option<Expr>> {
            if e.contains_param() {
                Ok(Some(e.bind_params(values)?))
            } else {
                Ok(None)
            }
        };
        Ok(match node.as_ref() {
            LogicalPlan::Project { input, exprs, .. } => {
                let mut changed = false;
                let mut new_exprs = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    match rewrite(e)? {
                        Some(b) => {
                            changed = true;
                            new_exprs.push((b, name.clone()));
                        }
                        None => new_exprs.push((e.clone(), name.clone())),
                    }
                }
                if changed {
                    LogicalPlan::project(input.clone(), new_exprs)?
                } else {
                    node
                }
            }
            LogicalPlan::Filter { input, predicate } => match rewrite(predicate)? {
                Some(p) => LogicalPlan::filter(input.clone(), p)?,
                None => node,
            },
            LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } => {
                match filter.as_ref().map(&rewrite).transpose()?.flatten() {
                    Some(f) => LogicalPlan::join(
                        left.clone(),
                        right.clone(),
                        *kind,
                        on.clone(),
                        Some(f),
                        *declared,
                        *asj_intent,
                    )?,
                    None => node,
                }
            }
            LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
                let mut changed = false;
                let mut new_groups = Vec::with_capacity(group_by.len());
                for (e, name) in group_by {
                    match rewrite(e)? {
                        Some(b) => {
                            changed = true;
                            new_groups.push((b, name.clone()));
                        }
                        None => new_groups.push((e.clone(), name.clone())),
                    }
                }
                let mut new_aggs = Vec::with_capacity(aggs.len());
                for (a, name) in aggs {
                    let arg = a.arg.as_ref().map(&rewrite).transpose()?.flatten();
                    match arg {
                        Some(b) => {
                            changed = true;
                            let mut na = a.clone();
                            na.arg = Some(b);
                            new_aggs.push((na, name.clone()));
                        }
                        None => new_aggs.push((a.clone(), name.clone())),
                    }
                }
                if changed {
                    LogicalPlan::aggregate(input.clone(), new_groups, new_aggs)?
                } else {
                    node
                }
            }
            LogicalPlan::Sort { input, keys } => {
                let mut changed = false;
                let mut new_keys = Vec::with_capacity(keys.len());
                for k in keys {
                    match rewrite(&k.expr)? {
                        Some(b) => {
                            changed = true;
                            new_keys.push(SortKey {
                                expr: b,
                                asc: k.asc,
                                nulls_first: k.nulls_first,
                            });
                        }
                        None => new_keys.push(k.clone()),
                    }
                }
                if changed {
                    LogicalPlan::sort(input.clone(), new_keys)?
                } else {
                    node
                }
            }
            // Scan / Values / UnionAll / Distinct / Limit carry no
            // expressions.
            _ => node,
        })
    })
}

/// Calls `f` on every expression of every node (each DAG node once).
fn for_each_expr(plan: &PlanRef, f: &mut impl FnMut(&Expr)) {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![plan.clone()];
    while let Some(node) = stack.pop() {
        if !seen.insert(std::sync::Arc::as_ptr(&node)) {
            continue;
        }
        match node.as_ref() {
            LogicalPlan::Project { exprs, .. } => {
                for (e, _) in exprs {
                    f(e);
                }
            }
            LogicalPlan::Filter { predicate, .. } => f(predicate),
            LogicalPlan::Join { filter: Some(x), .. } => f(x),
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                for (e, _) in group_by {
                    f(e);
                }
                for (a, _) in aggs {
                    if let Some(e) = &a.arg {
                        f(e);
                    }
                }
            }
            LogicalPlan::Sort { keys, .. } => {
                for k in keys {
                    f(&k.expr);
                }
            }
            _ => {}
        }
        for c in node.children() {
            stack.push(c.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn scan() -> PlanRef {
        LogicalPlan::scan(Arc::new(
            TableBuilder::new("t")
                .column("a", SqlType::Int, false)
                .column("b", SqlType::Int, false)
                .primary_key(&["a"])
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn binds_params_and_preserves_identity() {
        let filtered =
            LogicalPlan::filter(scan(), Expr::col(0).eq(Expr::param(0, SqlType::Int))).unwrap();
        let plan = LogicalPlan::limit(filtered, 0, Some(10));
        assert!(contains_params(&plan));
        assert_eq!(max_param_index(&plan), Some(0));

        let bound = bind_params(&plan, &[Value::Int(42)]).unwrap();
        assert!(!contains_params(&bound));
        let LogicalPlan::Limit { input, .. } = bound.as_ref() else { panic!() };
        let LogicalPlan::Filter { predicate, .. } = input.as_ref() else { panic!() };
        assert_eq!(*predicate, Expr::col(0).eq(Expr::int(42)));

        // A plan with no placeholders comes back untouched.
        let plain = LogicalPlan::filter(scan(), Expr::col(0).eq(Expr::int(1))).unwrap();
        let out = bind_params(&plain, &[]).unwrap();
        assert!(Arc::ptr_eq(&plain, &out));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let plan =
            LogicalPlan::filter(scan(), Expr::col(0).eq(Expr::param(1, SqlType::Int))).unwrap();
        let err = bind_params(&plan, &[Value::Int(1)]).unwrap_err().to_string();
        assert!(err.contains("parameter $2"), "{err}");
    }
}
