//! EXPLAIN: human-readable plan rendering.
//!
//! Shared subtrees (DAG nodes referenced more than once) are rendered once
//! and referenced by id afterwards, mirroring how SAP HANA displays shared
//! subqueries.

use crate::node::{JoinKind, LogicalPlan, PlanRef};
use std::collections::HashMap;
use std::fmt::Write;

/// Renders a plan tree as indented text.
pub fn explain(plan: &PlanRef) -> String {
    explain_annotated(plan, &|_| None)
}

/// Like [`explain`], appending a caller-supplied annotation to each node
/// line (e.g. the `[#id rows=… time=…]` notes of EXPLAIN ANALYZE).
/// Shared subtrees are annotated once, at their first (defining) render.
pub fn explain_annotated(plan: &PlanRef, note: &dyn Fn(&PlanRef) -> Option<String>) -> String {
    let mut shared: HashMap<*const LogicalPlan, usize> = HashMap::new();
    collect_shared(plan, &mut HashMap::new(), &mut shared);
    let mut out = String::new();
    let mut printed: HashMap<*const LogicalPlan, usize> = HashMap::new();
    render(plan, 0, &shared, &mut printed, note, &mut out);
    out
}

/// Numbers every distinct node of the DAG in pre-order (root = 0); shared
/// subtrees keep the id of their first visit. These are the stable node
/// ids the observability layer keys rewrite events and runtime profiles by.
pub fn number_nodes(plan: &PlanRef) -> HashMap<*const LogicalPlan, usize> {
    fn walk(plan: &PlanRef, ids: &mut HashMap<*const LogicalPlan, usize>) {
        let ptr = std::sync::Arc::as_ptr(plan);
        if ids.contains_key(&ptr) {
            return;
        }
        ids.insert(ptr, ids.len());
        for c in plan.children() {
            walk(c, ids);
        }
    }
    let mut ids = HashMap::new();
    walk(plan, &mut ids);
    ids
}

fn collect_shared(
    plan: &PlanRef,
    refcount: &mut HashMap<*const LogicalPlan, usize>,
    shared: &mut HashMap<*const LogicalPlan, usize>,
) {
    let ptr = std::sync::Arc::as_ptr(plan);
    let count = refcount.entry(ptr).or_insert(0);
    *count += 1;
    if *count == 2 {
        let id = shared.len() + 1;
        shared.insert(ptr, id);
        return;
    }
    if *count > 1 {
        return;
    }
    for c in plan.children() {
        collect_shared(c, refcount, shared);
    }
}

fn render(
    plan: &PlanRef,
    indent: usize,
    shared: &HashMap<*const LogicalPlan, usize>,
    printed: &mut HashMap<*const LogicalPlan, usize>,
    note: &dyn Fn(&PlanRef) -> Option<String>,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    let ptr = std::sync::Arc::as_ptr(plan);
    if let Some(id) = shared.get(&ptr) {
        if printed.contains_key(&ptr) {
            let _ = writeln!(out, "{pad}[shared #{id}]");
            return;
        }
        printed.insert(ptr, *id);
        let _ = write!(out, "{pad}#{id}: ");
    } else {
        let _ = write!(out, "{pad}");
    }
    render_node(plan, out);
    if let Some(n) = note(plan) {
        debug_assert!(out.ends_with('\n'));
        out.pop();
        let _ = writeln!(out, " {n}");
    }
    for c in plan.children() {
        render(c, indent + 1, shared, printed, note, out);
    }
}

fn render_node(plan: &PlanRef, out: &mut String) {
    match plan.as_ref() {
        LogicalPlan::Scan { table, instance, .. } => {
            let _ = writeln!(out, "Scan {} (inst {})", table.name, instance);
        }
        LogicalPlan::Values { rows, schema } => {
            let _ = writeln!(out, "Values {} row(s), {} col(s)", rows.len(), schema.len());
        }
        LogicalPlan::Project { exprs, input, .. } => {
            let names = exprs
                .iter()
                .map(|(e, n)| format!("{n}={}", render_expr(e, &input.schema())))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "Project [{names}]");
        }
        LogicalPlan::Filter { predicate, input } => {
            let _ = writeln!(out, "Filter {}", render_expr(predicate, &input.schema()));
        }
        LogicalPlan::Join { kind, on, declared, asj_intent, filter, left, right, .. } => {
            let kind_s = match kind {
                JoinKind::Inner => "InnerJoin",
                JoinKind::LeftOuter => "LeftOuterJoin",
            };
            let ls = left.schema();
            let rs = right.schema();
            let keys = on
                .iter()
                .map(|&(l, r)| format!("{}={}", ls.field(l).name, rs.field(r).name))
                .collect::<Vec<_>>()
                .join(" AND ");
            let mut extra = String::new();
            if let Some(d) = declared {
                let _ = write!(extra, " [{d:?}]");
            }
            if *asj_intent {
                extra.push_str(" [CASE JOIN]");
            }
            if filter.is_some() {
                extra.push_str(" [+filter]");
            }
            let _ = writeln!(out, "{kind_s} on {keys}{extra}");
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            let _ = writeln!(out, "UnionAll ({} inputs)", inputs.len());
        }
        LogicalPlan::Aggregate { group_by, aggs, input, .. } => {
            let g = group_by
                .iter()
                .map(|(e, n)| format!("{n}={}", render_expr(e, &input.schema())))
                .collect::<Vec<_>>()
                .join(", ");
            let a = aggs.iter().map(|(x, n)| format!("{n}={x}")).collect::<Vec<_>>().join(", ");
            let _ = writeln!(out, "Aggregate group=[{g}] aggs=[{a}]");
        }
        LogicalPlan::Distinct { .. } => {
            let _ = writeln!(out, "Distinct");
        }
        LogicalPlan::Sort { keys, .. } => {
            let k = keys
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.asc { " ASC" } else { " DESC" }))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "Sort [{k}]");
        }
        LogicalPlan::Limit { skip, fetch, .. } => {
            let f = fetch.map(|f| f.to_string()).unwrap_or_else(|| "ALL".into());
            let _ = writeln!(out, "Limit fetch={f} offset={skip}");
        }
    }
}

/// Renders an expression substituting `$i` ordinals with field names.
fn render_expr(e: &vdm_expr::Expr, schema: &vdm_types::Schema) -> String {
    use vdm_expr::Expr;
    let pretty = e.transform(&|node| {
        if let Expr::Col(i) = node {
            if *i < schema.len() {
                // Encode the name as a string literal leaf for display only.
                return Some(Expr::Lit(vdm_types::Value::str(format!(
                    "\u{1}{}\u{2}",
                    schema.field(*i).name
                ))));
            }
        }
        None
    });
    pretty.to_string().replace("'\u{1}", "").replace("\u{2}'", "").replace(['\u{1}', '\u{2}'], "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_expr::Expr;
    use vdm_types::SqlType;

    fn table(name: &str) -> Arc<vdm_catalog::TableDef> {
        Arc::new(
            TableBuilder::new(name)
                .column("k", SqlType::Int, false)
                .column("v", SqlType::Text, false)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn renders_tree_with_field_names() {
        let t = LogicalPlan::scan(table("orders"));
        let f = LogicalPlan::filter(t, Expr::col(0).eq(Expr::int(5))).unwrap();
        let text = explain(&f);
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("k"), "field name resolved: {text}");
        assert!(text.contains("Scan orders"), "{text}");
    }

    #[test]
    fn numbers_nodes_preorder_sharing_ids() {
        let t = LogicalPlan::scan(table("t"));
        let j = LogicalPlan::inner_join(Arc::clone(&t), Arc::clone(&t), vec![(0, 0)]).unwrap();
        let ids = number_nodes(&j);
        assert_eq!(ids.len(), 2, "join + one shared scan");
        assert_eq!(ids[&Arc::as_ptr(&j)], 0);
        assert_eq!(ids[&Arc::as_ptr(&t)], 1);
    }

    #[test]
    fn annotations_attach_to_node_lines() {
        let t = LogicalPlan::scan(table("orders"));
        let f = LogicalPlan::filter(t, Expr::col(0).eq(Expr::int(5))).unwrap();
        let ids = number_nodes(&f);
        let text = explain_annotated(&f, &|p| {
            ids.get(&Arc::as_ptr(p)).map(|id| format!("[#{id} rows=0]"))
        });
        assert!(text.contains("Filter (k = 5) [#0 rows=0]"), "{text}");
        assert!(text.contains("Scan orders (inst") && text.contains(") [#1 rows=0]"), "{text}");
    }

    #[test]
    fn shared_subtrees_rendered_once() {
        let t = LogicalPlan::scan(table("t"));
        let j = LogicalPlan::inner_join(Arc::clone(&t), t, vec![(0, 0)]).unwrap();
        let text = explain(&j);
        assert_eq!(text.matches("Scan t").count(), 1, "{text}");
        assert!(text.contains("[shared #1]"), "{text}");
    }
}
