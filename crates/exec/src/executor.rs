//! The recursive plan executor.

use crate::ops;
use std::sync::Arc;
use vdm_obs::{NodeIndex, QueryProfile};
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_storage::{Batch, Snapshot, StorageEngine};
use vdm_types::{Result, VdmError};

/// Rows-processed counters, grouped by operator class, plus wall-clock
/// nanoseconds spent inside each class (children excluded — a join's time
/// covers build+probe, not the scans feeding it).
///
/// Row counters are identical between the serial and the morsel-parallel
/// executor (parallel workers merge their counters at pipeline joins);
/// time counters sum worker-local time, so under parallelism they report
/// aggregate CPU time per class, not elapsed wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rows produced by scans.
    pub rows_scanned: usize,
    /// Rows inserted into join hash tables.
    pub join_build_rows: usize,
    /// Rows emitted by joins.
    pub join_output_rows: usize,
    /// Rows fed into aggregations.
    pub agg_input_rows: usize,
    /// Rows evaluated by filters.
    pub filter_input_rows: usize,
    /// Rows probed against join hash tables (the non-build side).
    pub join_probe_rows: usize,
    /// Rows emitted by LIMIT operators (after skip/fetch).
    pub limit_rows_emitted: usize,
    /// Rows concatenated by UNION ALL operators.
    pub union_rows_concatenated: usize,
    /// Operators executed.
    pub operators: usize,
    /// Time spent materializing scans.
    pub scan_nanos: u64,
    /// Time spent evaluating filter predicates.
    pub filter_nanos: u64,
    /// Time spent evaluating projections.
    pub project_nanos: u64,
    /// Time spent building and probing join hash tables.
    pub join_nanos: u64,
    /// Time spent in hash aggregation.
    pub agg_nanos: u64,
    /// Time spent sorting.
    pub sort_nanos: u64,
    /// Time spent concatenating UNION ALL branches.
    pub union_nanos: u64,
    /// Morsels a parallel worker stole from another worker's deque
    /// (always 0 on the serial path).
    pub morsel_steals: usize,
    /// Claim batches the work-stealing scheduler dispatched.
    pub morsel_claims: usize,
    /// Estimated payload bytes dispatched in scan morsels and operator
    /// chunks (feeds the `vdm_morsel_size_bytes` registry counter).
    pub morsel_bytes: usize,
}

impl Metrics {
    /// Adds another metrics bundle into this one — used when per-worker
    /// counters meet at a parallel pipeline join.
    pub fn merge(&mut self, other: &Metrics) {
        self.rows_scanned += other.rows_scanned;
        self.join_build_rows += other.join_build_rows;
        self.join_output_rows += other.join_output_rows;
        self.agg_input_rows += other.agg_input_rows;
        self.filter_input_rows += other.filter_input_rows;
        self.join_probe_rows += other.join_probe_rows;
        self.limit_rows_emitted += other.limit_rows_emitted;
        self.union_rows_concatenated += other.union_rows_concatenated;
        self.operators += other.operators;
        self.scan_nanos += other.scan_nanos;
        self.filter_nanos += other.filter_nanos;
        self.project_nanos += other.project_nanos;
        self.join_nanos += other.join_nanos;
        self.agg_nanos += other.agg_nanos;
        self.sort_nanos += other.sort_nanos;
        self.union_nanos += other.union_nanos;
        self.morsel_steals += other.morsel_steals;
        self.morsel_claims += other.morsel_claims;
        self.morsel_bytes += other.morsel_bytes;
    }
}

/// Elapsed nanoseconds since `start`, saturating into `u64`.
pub(crate) fn nanos_since(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-node profiling state for EXPLAIN ANALYZE: the node-id index of the
/// plan being executed plus the profile being filled.
pub struct Profiler {
    /// Pre-order node ids of the executed plan (see `vdm_plan::number_nodes`).
    pub index: Arc<NodeIndex>,
    /// Stats recorded so far.
    pub profile: QueryProfile,
}

impl Profiler {
    /// A profiler recording against `index`.
    pub fn new(index: Arc<NodeIndex>) -> Profiler {
        Profiler { index, profile: QueryProfile::default() }
    }

    /// Records one execution of `plan` (no-op for nodes outside the index,
    /// e.g. internal wrappers).
    pub fn record(&mut self, plan: &PlanRef, rows_out: usize, nanos: u64) {
        if let Some(id) = self.index.id_of(plan) {
            self.profile.record(id, rows_out as u64, nanos);
        }
    }
}

/// Execution context: storage handle, snapshot, metrics.
pub struct ExecContext<'a> {
    pub engine: &'a StorageEngine,
    pub snapshot: Snapshot,
    pub metrics: Metrics,
    /// Guard against runaway plans in tests.
    pub row_limit: usize,
    /// Per-node profile sink (`None` = profiling off, the default).
    pub profiler: Option<Profiler>,
    /// Nanoseconds spent in child operators of the node currently running —
    /// subtracted from its elapsed time to get self time.
    child_nanos: u64,
}

impl<'a> ExecContext<'a> {
    /// Context reading at the engine's current snapshot.
    pub fn new(engine: &'a StorageEngine) -> ExecContext<'a> {
        ExecContext::at(engine, engine.snapshot())
    }

    /// Context pinned to a snapshot.
    pub fn at(engine: &'a StorageEngine, snapshot: Snapshot) -> ExecContext<'a> {
        ExecContext {
            engine,
            snapshot,
            metrics: Metrics::default(),
            row_limit: usize::MAX,
            profiler: None,
            child_nanos: 0,
        }
    }
}

/// Executes `plan` against `engine` at the current snapshot.
pub fn execute(plan: &PlanRef, engine: &StorageEngine) -> Result<Batch> {
    let mut ctx = ExecContext::new(engine);
    run(plan, &mut ctx)
}

/// Executes `plan` at a pinned snapshot, returning the batch and metrics.
pub fn execute_at(
    plan: &PlanRef,
    engine: &StorageEngine,
    snapshot: Snapshot,
) -> Result<(Batch, Metrics)> {
    let mut ctx = ExecContext::at(engine, snapshot);
    let batch = run(plan, &mut ctx)?;
    Ok((batch, ctx.metrics))
}

/// Serial execution with a per-node runtime profile keyed by `index`
/// (EXPLAIN ANALYZE). `index` must number the nodes of this `plan`.
pub fn execute_profiled_serial(
    plan: &PlanRef,
    engine: &StorageEngine,
    snapshot: Snapshot,
    index: Arc<NodeIndex>,
) -> Result<(Batch, Metrics, QueryProfile)> {
    let mut ctx = ExecContext::at(engine, snapshot);
    ctx.profiler = Some(Profiler::new(index));
    let batch = run(plan, &mut ctx)?;
    let profile = ctx.profiler.take().map(|p| p.profile).unwrap_or_default();
    Ok((batch, ctx.metrics, profile))
}

/// Runs `f` (the body of one operator) under the profiling wrapper: the
/// node's elapsed time minus the time its children accumulated is recorded
/// as self time, together with its output rows. Zero-cost when profiling
/// is off.
pub(crate) fn with_profile(
    plan: &PlanRef,
    ctx: &mut ExecContext<'_>,
    f: impl FnOnce(&mut ExecContext<'_>) -> Result<Batch>,
) -> Result<Batch> {
    if ctx.profiler.is_none() {
        return f(ctx);
    }
    let start = std::time::Instant::now();
    let saved_children = std::mem::take(&mut ctx.child_nanos);
    let out = f(ctx);
    let total = nanos_since(start);
    let self_nanos = total.saturating_sub(ctx.child_nanos);
    if let (Ok(batch), Some(p)) = (&out, ctx.profiler.as_mut()) {
        p.record(plan, batch.num_rows(), self_nanos);
    }
    ctx.child_nanos = saved_children + total;
    out
}

pub(crate) fn run(plan: &PlanRef, ctx: &mut ExecContext<'_>) -> Result<Batch> {
    with_profile(plan, ctx, |c| run_node(plan, c))
}

fn run_node(plan: &PlanRef, ctx: &mut ExecContext<'_>) -> Result<Batch> {
    use std::time::Instant;
    ctx.metrics.operators += 1;
    let out = match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => {
            let t = Instant::now();
            let batch = ctx.engine.scan(&table.name, ctx.snapshot)?;
            ctx.metrics.scan_nanos += nanos_since(t);
            ctx.metrics.rows_scanned += batch.num_rows();
            // Storage returns the table's own schema; adopt the plan's
            // (identical fields, shared Arc).
            Batch::new(Arc::clone(schema), batch.columns)?
        }
        LogicalPlan::Values { schema, rows } => Batch::from_rows(Arc::clone(schema), rows)?,
        LogicalPlan::Project { input, exprs, schema } => {
            let child = run(input, ctx)?;
            let t = Instant::now();
            let out = ops::project(&child, exprs, Arc::clone(schema))?;
            ctx.metrics.project_nanos += nanos_since(t);
            out
        }
        LogicalPlan::Filter { input, predicate } => {
            // Zone-map fast path: a range atom over a base-table scan prunes
            // main-fragment blocks before the predicate even runs.
            let child = match (input.as_ref(), prune_range(predicate)) {
                (LogicalPlan::Scan { table, schema, .. }, Some((col, range))) => {
                    let t = Instant::now();
                    let batch = ctx.engine.scan_pruned(&table.name, ctx.snapshot, col, &range)?;
                    let scan_nanos = nanos_since(t);
                    ctx.metrics.scan_nanos += scan_nanos;
                    ctx.metrics.rows_scanned += batch.num_rows();
                    ctx.metrics.operators += 1; // the scan it replaces
                    let b = Batch::new(Arc::clone(schema), batch.columns)?;
                    // The scan node never goes through run(); record it here
                    // and charge its time as child time of the filter.
                    if let Some(p) = ctx.profiler.as_mut() {
                        p.record(input, b.num_rows(), scan_nanos);
                        ctx.child_nanos += scan_nanos;
                    }
                    b
                }
                _ => run(input, ctx)?,
            };
            ctx.metrics.filter_input_rows += child.num_rows();
            let t = Instant::now();
            let out = ops::filter(&child, predicate)?;
            ctx.metrics.filter_nanos += nanos_since(t);
            out
        }
        LogicalPlan::Join { left, right, kind, on, filter, schema, .. } => {
            let lb = run(left, ctx)?;
            let rb = run(right, ctx)?;
            ctx.metrics.join_build_rows += rb.num_rows();
            ctx.metrics.join_probe_rows += lb.num_rows();
            let t = Instant::now();
            let out = ops::hash_join(&lb, &rb, *kind, on, filter.as_ref(), Arc::clone(schema))?;
            ctx.metrics.join_nanos += nanos_since(t);
            ctx.metrics.join_output_rows += out.num_rows();
            out
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let mut parts = Vec::with_capacity(inputs.len());
            for inp in inputs {
                parts.push(run(inp, ctx)?);
            }
            let t = Instant::now();
            let out = Batch::concat(Arc::clone(schema), &parts)?;
            ctx.metrics.union_nanos += nanos_since(t);
            ctx.metrics.union_rows_concatenated += out.num_rows();
            out
        }
        LogicalPlan::Aggregate { input, group_by, aggs, schema } => {
            let child = run(input, ctx)?;
            ctx.metrics.agg_input_rows += child.num_rows();
            let t = Instant::now();
            let out = ops::aggregate(&child, group_by, aggs, Arc::clone(schema))?;
            ctx.metrics.agg_nanos += nanos_since(t);
            out
        }
        LogicalPlan::Distinct { input } => {
            let child = run(input, ctx)?;
            ops::distinct(&child)?
        }
        LogicalPlan::Sort { input, keys } => {
            let child = run(input, ctx)?;
            let t = Instant::now();
            let out = ops::sort(&child, keys)?;
            ctx.metrics.sort_nanos += nanos_since(t);
            out
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            // Budgeted execution: a finite fetch lets the subtree stop
            // materializing once skip+fetch rows exist (sound without an
            // intervening Sort — Sort falls back to full execution below).
            let child = match fetch {
                Some(f) => {
                    let budget = (*skip as usize).saturating_add(*f as usize);
                    run_budgeted(input, budget, ctx)?
                }
                None => run(input, ctx)?,
            };
            let out = ops::limit(&child, *skip, *fetch);
            ctx.metrics.limit_rows_emitted += out.num_rows();
            out
        }
    };
    if out.num_rows() > ctx.row_limit {
        return Err(VdmError::Exec(format!(
            "operator {} exceeded row limit ({} > {})",
            plan.op_name(),
            out.num_rows(),
            ctx.row_limit
        )));
    }
    Ok(out)
}

/// Extracts a prunable `(column, range)` from a filter predicate: the
/// first conjunct of the form `col ⟨cmp⟩ literal` over an orderable type.
pub(crate) fn prune_range(predicate: &vdm_expr::Expr) -> Option<(usize, vdm_storage::ScanRange)> {
    use vdm_expr::{predicate as preds, BinOp};
    use vdm_storage::ScanRange;
    for conj in preds::split_conjunction(predicate) {
        if let Some(atom) = preds::as_atom(conj) {
            let range = match atom.op {
                BinOp::Eq => ScanRange::point(atom.value.clone()),
                BinOp::Gt | BinOp::GtEq => ScanRange::at_least(atom.value.clone()),
                BinOp::Lt | BinOp::LtEq => ScanRange::at_most(atom.value.clone()),
                _ => continue,
            };
            return Some((atom.col, range));
        }
    }
    None
}

/// Executes `plan` needing at most `budget` output rows. Truncation is
/// only applied where it cannot change which rows *could* appear under a
/// LIMIT-without-ORDER semantics: scans, projections, unions, stacked
/// limits, and literal rows. Anything else executes fully and is truncated
/// afterwards.
pub(crate) fn run_budgeted(
    plan: &PlanRef,
    budget: usize,
    ctx: &mut ExecContext<'_>,
) -> Result<Batch> {
    match plan.as_ref() {
        LogicalPlan::Scan { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::Project { .. }
        | LogicalPlan::UnionAll { .. }
        | LogicalPlan::Limit { .. } => {
            with_profile(plan, ctx, |c| run_budgeted_node(plan, budget, c))
        }
        _ => {
            // run() counts, profiles, and row-limits this node itself.
            let full = run(plan, ctx)?;
            let take: Vec<usize> = (0..full.num_rows().min(budget)).collect();
            Ok(full.take(&take))
        }
    }
}

fn run_budgeted_node(plan: &PlanRef, budget: usize, ctx: &mut ExecContext<'_>) -> Result<Batch> {
    use std::time::Instant;
    ctx.metrics.operators += 1;
    match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => {
            let t = Instant::now();
            let batch = ctx.engine.scan_limited(&table.name, ctx.snapshot, budget)?;
            ctx.metrics.scan_nanos += nanos_since(t);
            ctx.metrics.rows_scanned += batch.num_rows();
            Batch::new(Arc::clone(schema), batch.columns)
        }
        LogicalPlan::Values { schema, rows } => {
            let take = rows.len().min(budget);
            Batch::from_rows(Arc::clone(schema), &rows[..take])
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let child = run_budgeted(input, budget, ctx)?;
            let t = Instant::now();
            let out = ops::project(&child, exprs, Arc::clone(schema));
            ctx.metrics.project_nanos += nanos_since(t);
            out
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let mut parts = Vec::new();
            let mut have = 0usize;
            for inp in inputs {
                if have >= budget {
                    break;
                }
                let b = run_budgeted(inp, budget - have, ctx)?;
                have += b.num_rows();
                parts.push(b);
            }
            let t = Instant::now();
            let merged = Batch::concat(Arc::clone(schema), &parts)?;
            ctx.metrics.union_nanos += nanos_since(t);
            ctx.metrics.union_rows_concatenated += merged.num_rows();
            if merged.num_rows() > budget {
                let take: Vec<usize> = (0..budget).collect();
                Ok(merged.take(&take))
            } else {
                Ok(merged)
            }
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let inner_budget = match fetch {
                Some(f) => budget.min((*skip as usize).saturating_add(*f as usize)),
                None => budget.saturating_add(*skip as usize),
            };
            let child = run_budgeted(input, inner_budget, ctx)?;
            let limited = ops::limit(&child, *skip, *fetch);
            let take: Vec<usize> = (0..limited.num_rows().min(budget)).collect();
            let out = limited.take(&take);
            ctx.metrics.limit_rows_emitted += out.num_rows();
            Ok(out)
        }
        _ => unreachable!("run_budgeted routes other operators through run()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_expr::{AggExpr, AggFunc, Expr};
    use vdm_plan::{JoinKind, SortKey};
    use vdm_types::{SqlType, Value};

    fn setup() -> (StorageEngine, Arc<vdm_catalog::TableDef>, Arc<vdm_catalog::TableDef>) {
        let orders = Arc::new(
            TableBuilder::new("orders")
                .column("o_orderkey", SqlType::Int, false)
                .column("o_custkey", SqlType::Int, false)
                .column("o_total", SqlType::Decimal { scale: 2 }, false)
                .primary_key(&["o_orderkey"])
                .build()
                .unwrap(),
        );
        let customer = Arc::new(
            TableBuilder::new("customer")
                .column("c_custkey", SqlType::Int, false)
                .column("c_name", SqlType::Text, false)
                .primary_key(&["c_custkey"])
                .build()
                .unwrap(),
        );
        let e = StorageEngine::new();
        e.create_table(Arc::clone(&orders)).unwrap();
        e.create_table(Arc::clone(&customer)).unwrap();
        e.insert(
            "customer",
            vec![vec![Value::Int(1), Value::str("alice")], vec![Value::Int(2), Value::str("bob")]],
        )
        .unwrap();
        e.insert(
            "orders",
            vec![
                vec![Value::Int(10), Value::Int(1), Value::Dec("5.00".parse().unwrap())],
                vec![Value::Int(11), Value::Int(1), Value::Dec("7.50".parse().unwrap())],
                vec![Value::Int(12), Value::Int(9), Value::Dec("1.00".parse().unwrap())],
            ],
        )
        .unwrap();
        (e, orders, customer)
    }

    #[test]
    fn scan_filter_project() {
        let (e, orders, _) = setup();
        let scan = LogicalPlan::scan(orders);
        let f = LogicalPlan::filter(scan, Expr::col(1).eq(Expr::int(1))).unwrap();
        let p = LogicalPlan::project(f, vec![(Expr::col(0), "k".into())]).unwrap();
        let b = execute(&p, &e).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.schema.field(0).name, "k");
    }

    #[test]
    fn inner_join_matches() {
        let (e, orders, customer) = setup();
        let j = LogicalPlan::inner_join(
            LogicalPlan::scan(orders),
            LogicalPlan::scan(customer),
            vec![(1, 0)],
        )
        .unwrap();
        let b = execute(&j, &e).unwrap();
        assert_eq!(b.num_rows(), 2, "order 12 has no customer 9");
    }

    #[test]
    fn left_outer_join_pads_nulls() {
        let (e, orders, customer) = setup();
        let j = LogicalPlan::left_join(
            LogicalPlan::scan(orders),
            LogicalPlan::scan(customer),
            vec![(1, 0)],
        )
        .unwrap();
        let b = execute(&j, &e).unwrap();
        assert_eq!(b.num_rows(), 3);
        let rows = b.to_rows();
        let unmatched = rows.iter().find(|r| r[0] == Value::Int(12)).unwrap();
        assert!(unmatched[3].is_null() && unmatched[4].is_null());
    }

    #[test]
    fn aggregate_group_by() {
        let (e, orders, _) = setup();
        let a = LogicalPlan::aggregate(
            LogicalPlan::scan(orders),
            vec![(Expr::col(1), "cust".into())],
            vec![
                (AggExpr::count_star(), "n".into()),
                (AggExpr::new(AggFunc::Sum, Expr::col(2)), "total".into()),
            ],
        )
        .unwrap();
        let b = execute(&a, &e).unwrap();
        let mut rows = b.to_rows();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            vec![Value::Int(1), Value::Int(2), Value::Dec("12.50".parse().unwrap())]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let (e, orders, _) = setup();
        let empty = LogicalPlan::filter(LogicalPlan::scan(orders), Expr::boolean(false)).unwrap();
        let a = LogicalPlan::aggregate(
            empty,
            vec![],
            vec![
                (AggExpr::count_star(), "n".into()),
                (AggExpr::new(AggFunc::Sum, Expr::col(2)), "s".into()),
            ],
        )
        .unwrap();
        let b = execute(&a, &e).unwrap();
        assert_eq!(b.num_rows(), 1);
        assert_eq!(b.row(0), vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn sort_and_limit() {
        let (e, orders, _) = setup();
        let s = LogicalPlan::sort(LogicalPlan::scan(orders), vec![SortKey::desc(2)]).unwrap();
        let l = LogicalPlan::limit(s, 1, Some(1));
        let b = execute(&l, &e).unwrap();
        assert_eq!(b.num_rows(), 1);
        assert_eq!(b.row(0)[0], Value::Int(10), "second-highest total");
    }

    #[test]
    fn union_all_and_distinct() {
        let (e, orders, _) = setup();
        let a = LogicalPlan::project(
            LogicalPlan::scan(Arc::clone(&orders)),
            vec![(Expr::col(1), "c".into())],
        )
        .unwrap();
        let b2 = LogicalPlan::project(LogicalPlan::scan(orders), vec![(Expr::col(1), "c".into())])
            .unwrap();
        let u = LogicalPlan::union_all(vec![a, b2]).unwrap();
        let all = execute(&u, &e).unwrap();
        assert_eq!(all.num_rows(), 6);
        let d = LogicalPlan::distinct(u);
        let b = execute(&d, &e).unwrap();
        assert_eq!(b.num_rows(), 2);
    }

    #[test]
    fn snapshot_pinning() {
        let (e, orders, _) = setup();
        let snap = e.snapshot();
        e.insert(
            "orders",
            vec![vec![Value::Int(13), Value::Int(2), Value::Dec("3.00".parse().unwrap())]],
        )
        .unwrap();
        let scan = LogicalPlan::scan(orders);
        let (b, m) = execute_at(&scan, &e, snap).unwrap();
        assert_eq!(b.num_rows(), 3, "pinned snapshot misses the new row");
        assert_eq!(m.rows_scanned, 3);
        assert_eq!(execute(&scan, &e).unwrap().num_rows(), 4);
    }

    #[test]
    fn metrics_count_join_work() {
        let (e, orders, customer) = setup();
        let j = LogicalPlan::left_join(
            LogicalPlan::scan(orders),
            LogicalPlan::scan(customer),
            vec![(1, 0)],
        )
        .unwrap();
        let (_, m) = execute_at(&j, &e, e.snapshot()).unwrap();
        assert_eq!(m.join_build_rows, 2, "customer side builds the hash table");
        assert_eq!(m.join_output_rows, 3);
        assert_eq!(m.rows_scanned, 5);
    }

    #[test]
    fn join_residual_filter_left_outer_semantics() {
        // ON c.custkey = o.custkey AND c.name = 'bob' — alice orders get NULLs.
        let (e, orders, customer) = setup();
        let j = LogicalPlan::join(
            LogicalPlan::scan(orders),
            LogicalPlan::scan(customer),
            JoinKind::LeftOuter,
            vec![(1, 0)],
            Some(Expr::col(4).eq(Expr::str("bob"))),
            None,
            false,
        )
        .unwrap();
        let b = execute(&j, &e).unwrap();
        assert_eq!(b.num_rows(), 3, "every order survives a left join");
        for r in b.to_rows() {
            assert!(r[4].is_null(), "no order belongs to bob: {r:?}");
        }
    }
}
