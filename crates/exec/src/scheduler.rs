//! Work-stealing morsel scheduler with adaptive claim sizing.
//!
//! Each worker owns a deque of contiguous item ranges. Workers claim a
//! small run of items from the *front* of their own deque; when it runs
//! dry they steal the *back half* of a victim's rearmost range, so a
//! thief walks off with the work its victim would have reached last and
//! contiguity (cache locality for the victim) is preserved. The claim
//! size adapts per worker from an EWMA of observed per-item latency:
//! claims shrink under skew (expensive items must stay stealable) and
//! grow when dispatch overhead dominates (cheap items amortize the
//! deque lock).
//!
//! Determinism contract: item `i`'s result always lands in output slot
//! `i` and every item runs exactly once, so the output vector — and
//! anything merged from it in slot order — is schedule-independent. On
//! error, the *lowest-index* error wins regardless of which worker hit
//! an error first, matching what a serial left-to-right run would
//! report.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use vdm_types::{Result, VdmError};

/// Target wall time for one claim batch: long enough that deque locking
/// is noise, short enough that a straggler's remaining work stays
/// stealable.
const TARGET_CLAIM_NANOS: u64 = 500_000;

/// Upper bound on items claimed at once, independent of how cheap they
/// look — a cap on how much work a single claim can hide from thieves.
const MAX_CLAIM: usize = 64;

/// Aggregate telemetry from one scheduler run.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Times a worker took work from another worker's deque.
    pub steals: usize,
    /// Claim batches executed (own-deque pops + steals).
    pub claims: usize,
    /// Items dispatched (always `n` on success).
    pub items: usize,
    /// Per-worker nanoseconds spent inside the item closure.
    pub busy_nanos: Vec<u64>,
    /// Wall-clock nanoseconds for the whole run.
    pub wall_nanos: u64,
}

impl SchedulerStats {
    /// Largest per-worker idle fraction: 1 − busy/wall. Used by skew
    /// tests to assert no worker sat out the run.
    pub fn max_idle_fraction(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.busy_nanos
            .iter()
            .map(|&b| 1.0 - (b.min(self.wall_nanos) as f64 / self.wall_nanos as f64))
            .fold(0.0, f64::max)
    }
}

/// Per-worker claim-size controller: EWMA of per-item nanos, claim size
/// chosen so one batch lands near [`TARGET_CLAIM_NANOS`].
struct ClaimSizer {
    ewma_item_nanos: f64,
}

impl ClaimSizer {
    fn new() -> ClaimSizer {
        ClaimSizer { ewma_item_nanos: 0.0 }
    }

    /// Items to claim next. The first claim is always 1 — latency is
    /// unknown and a misjudged large claim is exactly what starves
    /// thieves under skew.
    fn next_claim(&self) -> usize {
        if self.ewma_item_nanos <= 0.0 {
            return 1;
        }
        ((TARGET_CLAIM_NANOS as f64 / self.ewma_item_nanos) as usize).clamp(1, MAX_CLAIM)
    }

    fn observe(&mut self, items: usize, nanos: u64) {
        if items == 0 {
            return;
        }
        let per_item = nanos as f64 / items as f64;
        self.ewma_item_nanos = if self.ewma_item_nanos <= 0.0 {
            per_item
        } else {
            0.7 * self.ewma_item_nanos + 0.3 * per_item
        };
    }
}

/// One worker's share of the item space.
struct WorkerQueue {
    ranges: Mutex<VecDeque<Range<usize>>>,
}

/// Pops up to `want` items off the front of `q`'s first range.
fn claim_front(q: &WorkerQueue, want: usize) -> Option<Range<usize>> {
    let mut ranges = q.ranges.lock().unwrap();
    let first = ranges.front_mut()?;
    let take = want.min(first.len());
    let claimed = first.start..first.start + take;
    first.start += take;
    if first.start >= first.end {
        ranges.pop_front();
    }
    Some(claimed)
}

/// Steals the back half of `q`'s rearmost range (the whole range when it
/// holds a single item).
fn steal_back(q: &WorkerQueue) -> Option<Range<usize>> {
    let mut ranges = q.ranges.lock().unwrap();
    let last = ranges.back_mut()?;
    let keep = last.len() / 2;
    let stolen = last.start + keep..last.end;
    last.end = stolen.start;
    if last.start >= last.end {
        ranges.pop_back();
    }
    Some(stolen)
}

/// Runs items `0..n` across `threads` workers with work stealing.
///
/// Each worker builds its own scratch state via `mk_state`; the states
/// come back in worker-index order so the caller can merge them
/// deterministically. `f(item, state)` produces the item's result, which
/// lands in output slot `item`.
pub fn run_with<T, S, F>(
    threads: usize,
    n: usize,
    mk_state: impl Fn() -> S + Sync,
    f: F,
) -> Result<(Vec<T>, Vec<S>, SchedulerStats)>
where
    T: Send,
    S: Send,
    F: Fn(usize, &mut S) -> Result<T> + Sync,
{
    let start = Instant::now();
    if threads <= 1 || n <= 1 {
        // Inline serial path: same closure contract, no thread overhead.
        let mut state = mk_state();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(f(i, &mut state)?);
        }
        let wall = start.elapsed().as_nanos() as u64;
        let stats = SchedulerStats {
            steals: 0,
            claims: n,
            items: n,
            busy_nanos: vec![wall],
            wall_nanos: wall,
        };
        return Ok((out, vec![state], stats));
    }

    let threads = threads.min(n);
    // Contiguous initial split: worker w starts where a static range
    // partition would put it, so with zero steals the claim order per
    // worker matches the static schedule.
    let queues: Vec<WorkerQueue> = (0..threads)
        .map(|w| {
            let per = n / threads;
            let extra = n % threads;
            let start = w * per + w.min(extra);
            let end = start + per + usize::from(w < extra);
            WorkerQueue { ranges: Mutex::new(std::iter::once(start..end).collect()) }
        })
        .collect();

    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicUsize::new(0);
    let claims = AtomicUsize::new(0);
    let state_slots: Vec<Mutex<Option<S>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    let busy: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();

    let worker = |w: usize| {
        let mut state = mk_state();
        let mut sizer = ClaimSizer::new();
        let mut my_busy = 0u64;
        // Every item runs even after another item failed: slots are
        // all filled on exit, so the error reported below is the
        // lowest-index one regardless of scheduling.
        'work: loop {
            let run = match claim_front(&queues[w], sizer.next_claim()) {
                Some(r) => r,
                None => {
                    // Own deque dry: sweep victims once, then quit
                    // if everyone is dry. Queues are monotone-empty
                    // (nothing is ever pushed back), so a full sweep
                    // observing all of them empty stays true.
                    let mut stolen = None;
                    for off in 1..threads {
                        let v = (w + off) % threads;
                        if let Some(r) = steal_back(&queues[v]) {
                            stolen = Some(r);
                            break;
                        }
                    }
                    match stolen {
                        Some(r) => {
                            steals.fetch_add(1, Ordering::Relaxed);
                            r
                        }
                        None => break 'work,
                    }
                }
            };
            claims.fetch_add(1, Ordering::Relaxed);
            let items = run.len();
            let t0 = Instant::now();
            for i in run {
                *slots[i].lock().unwrap() = Some(f(i, &mut state));
            }
            let spent = t0.elapsed().as_nanos() as u64;
            my_busy += spent;
            sizer.observe(items, spent);
        }
        busy[w].fetch_add(my_busy as usize, Ordering::Relaxed);
        *state_slots[w].lock().unwrap() = Some(state);
    };

    // A serving layer installs a persistent pool (`with_worker_pool`);
    // one-shot callers get scoped threads, exactly as before.
    match crate::pool::current_worker_pool() {
        Some(pool) => pool.broadcast(threads, &worker),
        None => std::thread::scope(|scope| {
            for w in 0..threads {
                let worker = &worker;
                scope.spawn(move || worker(w));
            }
        }),
    }

    let stats = SchedulerStats {
        steals: steals.load(Ordering::Relaxed),
        claims: claims.load(Ordering::Relaxed),
        items: n,
        busy_nanos: busy.iter().map(|b| b.load(Ordering::Relaxed) as u64).collect(),
        wall_nanos: start.elapsed().as_nanos() as u64,
    };

    // Lowest-index error wins — schedule-independent, matches serial.
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap() {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => return Err(VdmError::Exec(format!("parallel worker dropped morsel {i}"))),
        }
    }

    // Pool dispatch may cancel a role whose share was already stolen; such
    // a role never builds a state, so slots can be empty. Surviving states
    // still come back in worker-index order.
    let states = state_slots.into_iter().filter_map(|s| s.into_inner().unwrap()).collect();
    Ok((out, states, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_item_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for n in [0, 1, 2, 7, 100, 1000] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                let (out, states, stats) = run_with(
                    threads,
                    n,
                    || 0usize,
                    |i, s: &mut usize| {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                        *s += 1;
                        Ok(i * 3)
                    },
                )
                .unwrap();
                assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
                assert_eq!(states.iter().sum::<usize>(), n, "threads={threads} n={n}");
                assert_eq!(stats.items, n);
            }
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        // Serial path reports the first error left-to-right.
        let err = run_with(
            1,
            10,
            || (),
            |i, _| {
                if i >= 3 {
                    Err(VdmError::Exec(format!("boom {i}")))
                } else {
                    Ok(i)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, VdmError::Exec("boom 3".into()));
        // Parallel path: all items run, and the lowest failing index is
        // reported no matter which worker hit an error first.
        let err = run_with(
            4,
            100,
            || (),
            |i, _| {
                if i >= 57 {
                    Err(VdmError::Exec(format!("boom {i}")))
                } else {
                    Ok(i)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, VdmError::Exec("boom 57".into()));
    }

    #[test]
    fn pool_dispatch_matches_scoped_threads() {
        let pool = crate::pool::WorkerPool::new(3);
        crate::pool::with_worker_pool(&pool, || {
            for n in [2, 7, 100, 1000] {
                let (out, states, stats) = run_with(
                    4,
                    n,
                    || 0usize,
                    |i, s: &mut usize| {
                        *s += 1;
                        Ok(i * 3)
                    },
                )
                .unwrap();
                assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
                // Cancelled roles publish no state, but every item ran
                // exactly once somewhere.
                assert_eq!(states.iter().sum::<usize>(), n);
                assert_eq!(stats.items, n);
            }
            // Errors keep the lowest-index-wins contract through the pool.
            let err = run_with(
                4,
                100,
                || (),
                |i, _| {
                    if i >= 57 {
                        Err(VdmError::Exec(format!("boom {i}")))
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(err, VdmError::Exec("boom 57".into()));
        });
    }

    #[test]
    fn claim_sizer_adapts_both_ways() {
        let mut s = ClaimSizer::new();
        assert_eq!(s.next_claim(), 1, "first claim probes with a single item");
        // Cheap items → larger claims (dispatch overhead dominates).
        s.observe(1, 1_000);
        assert!(s.next_claim() > 16, "cheap items should batch: {}", s.next_claim());
        // Then a skewed, expensive item drags the claim size back down.
        for _ in 0..8 {
            s.observe(1, 4 * TARGET_CLAIM_NANOS);
        }
        assert_eq!(s.next_claim(), 1, "expensive items must stay stealable");
    }

    #[test]
    fn steal_back_takes_rear_half() {
        let q = WorkerQueue { ranges: Mutex::new(std::iter::once(0..8).collect()) };
        assert_eq!(steal_back(&q), Some(4..8));
        assert_eq!(steal_back(&q), Some(2..4));
        assert_eq!(steal_back(&q), Some(1..2));
        assert_eq!(steal_back(&q), Some(0..1));
        assert_eq!(steal_back(&q), None);
    }

    #[test]
    fn skewed_work_is_stolen_and_results_stay_exact() {
        // Worker 0's initial share holds one hot item that takes ~40ms of
        // spinning while everything else is free. Even on one core the
        // OS preempts the hot worker, so thieves drain its remaining
        // share and the steal counter must move.
        let n = 256;
        let (out, _, stats) = run_with(
            4,
            n,
            || (),
            |i, _| {
                if i == 1 {
                    let t0 = Instant::now();
                    let mut x = 0u64;
                    while t0.elapsed().as_millis() < 40 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                        std::hint::black_box(x);
                    }
                }
                Ok(i as u64)
            },
        )
        .unwrap();
        assert_eq!(out, (0..n as u64).collect::<Vec<_>>());
        assert!(stats.steals > 0, "idle workers must steal the hot worker's share: {stats:?}");
        assert!(stats.max_idle_fraction() <= 1.0);
    }
}
