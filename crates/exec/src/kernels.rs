//! Tight columnar kernels shared by the parallel operators.
//!
//! Three families live here, all safe Rust tuned so the compiler can
//! auto-vectorize the inner loops (plain index arithmetic over typed
//! payload slices, no `unsafe` SIMD intrinsics):
//!
//! * **hashing** — a branch-free splitmix64 finalizer ([`mix64`]), an
//!   FxHash-style [`Hasher`] replacing SipHash for `Vec<Value>` hash-table
//!   keys, and columnar key hashing ([`hash_keys`]) that hashes whole key
//!   columns payload-at-a-time (string columns hash each *dictionary
//!   entry* once and fan the result out over the codes);
//! * **filtering** — [`CompiledPredicate`], a selection-vector evaluator
//!   for conjunctions of `col ⟨cmp⟩ literal` atoms that scans typed
//!   payloads directly instead of materializing `Value` rows;
//! * **projection** — [`apply_column_map`], the execution kernel of a
//!   fused pass-through/renaming projection chain: output column `j` is
//!   input column `map[j]`, moved or memcpy'd wholesale.
//!
//! Hash-consistency contract: two rows whose key values are equal under
//! [`Value`] equality must receive the same routing hash. The columnar
//! path guarantees this only *within one physical column type* (equal
//! values of one column share a payload representation), so callers
//! hashing across two batches — the join build/probe sides — must check
//! [`Column::sql_type`] equality first and otherwise fall back to
//! [`hash_values`], which hashes through `Value::hash` (canonical across
//! the numeric family).

use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;
use std::sync::Arc;
use vdm_expr::{predicate, BinOp, Expr};
use vdm_storage::{Batch, Column, ColumnData};
use vdm_types::{Decimal, Result, Schema, Value};

// ---------------------------------------------------------------------------
// Hash mixing.

/// splitmix64 finalizer: a full-avalanche, branch-free 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Seed every composite-key hash starts from (any odd constant works).
const KEY_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Payload stand-in for NULL slots, distinct from any mixed real payload.
const NULL_PAYLOAD: u64 = 0x632b_e593_04b4_d3b1;

/// Order-dependent combine of one key part into a running hash.
#[inline]
fn combine(h: u64, payload: u64) -> u64 {
    mix64(h ^ payload.wrapping_mul(KEY_SEED))
}

/// FxHash-style multiplicative hasher — replaces the standard library's
/// SipHash for interior hash tables keyed by `Vec<Value>`, where DoS
/// resistance buys nothing and the per-key cost dominates aggregation and
/// join build/probe time.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Finalize so low bits (used by HashMap bucket masks) avalanche.
        mix64(self.hash)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i128(&mut self, v: i128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` using [`FxHasher`] — drop-in for hash-join and group-by maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Routing hash of a materialized key through `Value::hash` (canonical
/// across Int/Dec) — the fallback when columnar hashing is not applicable.
pub fn hash_values(key: &[Value]) -> u64 {
    use std::hash::Hash;
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Content hash of one string (used per dictionary entry, not per row).
fn str_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Mixes column `col` over `rows` into `hashes` (`hashes[k]` covers row
/// `rows.start + k`). Fixed-width payloads mix directly; string columns
/// hash each dictionary entry once and index the results by code.
fn hash_column_into(col: &Column, rows: Range<usize>, hashes: &mut [u64]) {
    debug_assert_eq!(hashes.len(), rows.len());
    let start = rows.start;
    // Stage payloads in a scratch vector so NULL slots can be *replaced*
    // by the sentinel before mixing — the dense per-type loops stay
    // branch-free and vectorizable, and the null patch-up touches only
    // the mask.
    let mut payloads = vec![0u64; hashes.len()];
    match col.data() {
        ColumnData::Int(v) => {
            for (k, p) in payloads.iter_mut().enumerate() {
                *p = v[start + k] as u64;
            }
        }
        ColumnData::Dec { units, .. } => {
            for (k, p) in payloads.iter_mut().enumerate() {
                let u = units[start + k];
                *p = (u as u64).wrapping_add(mix64((u >> 64) as u64));
            }
        }
        ColumnData::Bool(v) => {
            for (k, p) in payloads.iter_mut().enumerate() {
                *p = v[start + k] as u64;
            }
        }
        ColumnData::Date(v) => {
            for (k, p) in payloads.iter_mut().enumerate() {
                *p = v[start + k] as u64;
            }
        }
        ColumnData::Str(s) => {
            let dict_hashes: Vec<u64> = s.dict.iter().map(|d| str_hash(d)).collect();
            for (k, p) in payloads.iter_mut().enumerate() {
                // NULL slots carry code 0 over a possibly empty dict;
                // whatever lands here is overwritten by the sentinel below.
                *p = dict_hashes.get(s.codes[start + k] as usize).copied().unwrap_or(0);
            }
        }
    }
    for (k, p) in payloads.iter_mut().enumerate() {
        if col.is_null(start + k) {
            *p = NULL_PAYLOAD;
        }
    }
    for (h, p) in hashes.iter_mut().zip(&payloads) {
        *h = combine(*h, *p);
    }
}

/// Routing hashes for the composite key `cols` over `rows` of `batch`,
/// computed column-at-a-time. Consistent with [`Value`] equality within
/// each physical column type (see the module docs for the cross-batch
/// contract).
pub fn hash_keys(batch: &Batch, cols: &[usize], rows: Range<usize>) -> Vec<u64> {
    let mut hashes = vec![KEY_SEED; rows.len()];
    for &c in cols {
        hash_column_into(&batch.columns[c], rows.clone(), &mut hashes);
    }
    hashes
}

// ---------------------------------------------------------------------------
// Selection-vector filtering.

/// One compiled `col ⟨cmp⟩ literal` conjunct. String comparisons resolve
/// per batch (dictionaries are batch-local); everything else is closed at
/// compile time.
#[derive(Debug, Clone)]
enum CompiledAtom {
    Int {
        col: usize,
        op: BinOp,
        rhs: i64,
    },
    /// Numeric cross-type: an INT column against a DECIMAL literal (or any
    /// decimal/decimal pair) compares through [`Decimal`].
    Dec {
        col: usize,
        op: BinOp,
        rhs: Decimal,
    },
    Date {
        col: usize,
        op: BinOp,
        rhs: i32,
    },
    Bool {
        col: usize,
        op: BinOp,
        rhs: bool,
    },
    Str {
        col: usize,
        op: BinOp,
        rhs: Arc<str>,
    },
}

/// A predicate compiled to a conjunction of typed payload comparisons,
/// evaluated into a selection vector without materializing rows.
///
/// Semantics mirror `Expr::eval_row` exactly: a row is kept iff every
/// conjunct evaluates to TRUE, and a NULL column value makes its conjunct
/// UNKNOWN (row dropped) — so compiling only conjunctions of non-NULL
/// literal atoms is lossless.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    atoms: Vec<CompiledAtom>,
}

#[inline]
fn keep(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::NotEq => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::LtEq => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::GtEq => ord != Less,
        _ => false,
    }
}

impl CompiledPredicate {
    /// Compiles `pred` when every top-level conjunct is `col ⟨cmp⟩ lit`
    /// (either side) with a non-NULL literal. Returns `None` — caller
    /// falls back to row-at-a-time evaluation — for any other shape.
    pub fn compile(pred: &Expr) -> Option<CompiledPredicate> {
        let mut atoms = Vec::new();
        for conj in predicate::split_conjunction(pred) {
            let a = predicate::as_atom(conj)?;
            let atom = match a.value {
                Value::Int(v) => CompiledAtom::Int { col: a.col, op: a.op, rhs: v },
                Value::Dec(d) => CompiledAtom::Dec { col: a.col, op: a.op, rhs: d },
                Value::Date(d) => CompiledAtom::Date { col: a.col, op: a.op, rhs: d },
                Value::Bool(b) => CompiledAtom::Bool { col: a.col, op: a.op, rhs: b },
                Value::Str(s) => CompiledAtom::Str { col: a.col, op: a.op, rhs: s },
                Value::Null => return None, // as_atom filters these already
            };
            atoms.push(atom);
        }
        Some(CompiledPredicate { atoms })
    }

    /// Evaluates over `rows` of `batch`, appending kept row indices to
    /// `sel` in ascending order. Returns `false` (leaving `sel` untouched
    /// beyond its original length) when a column's physical type doesn't
    /// pair with its compiled literal — the caller then row-evaluates.
    pub fn eval_into(&self, batch: &Batch, rows: Range<usize>, sel: &mut Vec<usize>) -> bool {
        let base = sel.len();
        for (k, atom) in self.atoms.iter().enumerate() {
            let ok = if k == 0 {
                eval_atom_range(atom, batch, rows.clone(), sel)
            } else {
                eval_atom_retain(atom, batch, sel, base)
            };
            if !ok {
                sel.truncate(base);
                return false;
            }
        }
        true
    }
}

/// First conjunct: scan the whole range, pushing matches.
fn eval_atom_range(
    atom: &CompiledAtom,
    batch: &Batch,
    rows: Range<usize>,
    sel: &mut Vec<usize>,
) -> bool {
    atom_tester(atom, batch, |test| {
        for i in rows.clone() {
            if test(i) {
                sel.push(i);
            }
        }
    })
}

/// Later conjuncts: shrink the existing selection in place.
fn eval_atom_retain(atom: &CompiledAtom, batch: &Batch, sel: &mut Vec<usize>, base: usize) -> bool {
    atom_tester(atom, batch, |test| {
        let mut w = base;
        for r in base..sel.len() {
            let i = sel[r];
            if test(i) {
                sel[w] = i;
                w += 1;
            }
        }
        sel.truncate(w);
    })
}

/// Resolves one atom against the batch's physical column and hands the
/// caller a `row -> keep` tester. Returns `false` when the column type
/// doesn't pair with the literal (caller falls back).
fn atom_tester(
    atom: &CompiledAtom,
    batch: &Batch,
    mut scan: impl FnMut(&mut dyn FnMut(usize) -> bool),
) -> bool {
    match atom {
        CompiledAtom::Int { col, op, rhs } => {
            let c = &batch.columns[*col];
            match c.data() {
                ColumnData::Int(v) => {
                    scan(&mut |i| !c.is_null(i) && keep(*op, v[i].cmp(rhs)));
                    true
                }
                ColumnData::Dec { units, scale } => {
                    let rhs = Decimal::from_int(*rhs);
                    scan(&mut |i| {
                        !c.is_null(i) && keep(*op, Decimal::from_units(units[i], *scale).cmp(&rhs))
                    });
                    true
                }
                _ => false,
            }
        }
        CompiledAtom::Dec { col, op, rhs } => {
            let c = &batch.columns[*col];
            match c.data() {
                ColumnData::Dec { units, scale } => {
                    scan(&mut |i| {
                        !c.is_null(i) && keep(*op, Decimal::from_units(units[i], *scale).cmp(rhs))
                    });
                    true
                }
                ColumnData::Int(v) => {
                    scan(&mut |i| !c.is_null(i) && keep(*op, Decimal::from_int(v[i]).cmp(rhs)));
                    true
                }
                _ => false,
            }
        }
        CompiledAtom::Date { col, op, rhs } => {
            let c = &batch.columns[*col];
            match c.data() {
                ColumnData::Date(v) => {
                    scan(&mut |i| !c.is_null(i) && keep(*op, v[i].cmp(rhs)));
                    true
                }
                _ => false,
            }
        }
        CompiledAtom::Bool { col, op, rhs } => {
            let c = &batch.columns[*col];
            match c.data() {
                ColumnData::Bool(v) => {
                    scan(&mut |i| !c.is_null(i) && keep(*op, v[i].cmp(rhs)));
                    true
                }
                _ => false,
            }
        }
        CompiledAtom::Str { col, op, rhs } => {
            let c = &batch.columns[*col];
            match c.data() {
                ColumnData::Str(s) => {
                    // Compare once per dictionary entry, then test codes.
                    let verdict: Vec<bool> =
                        s.dict.iter().map(|d| keep(*op, d.as_ref().cmp(rhs.as_ref()))).collect();
                    scan(&mut |i| {
                        !c.is_null(i) && verdict.get(s.codes[i] as usize).copied().unwrap_or(false)
                    });
                    true
                }
                _ => false,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fused projection execution.

/// Applies a pure column mapping in one move: output column `j` is input
/// column `map[j]`, cloned at the payload level (a memcpy the compiler
/// vectorizes, and an `Arc` bump per dictionary) — no per-row expression
/// evaluation, no row materialization.
pub fn apply_column_map(input: &Batch, map: &[usize], schema: Arc<Schema>) -> Result<Batch> {
    let columns: Vec<Column> = map.iter().map(|&c| input.columns[c].clone()).collect();
    Batch::new(schema, columns)
}

/// Estimated payload bytes of one row of `batch` — feeds the
/// `vdm_morsel_size_bytes` dispatch counter (dictionary-encoded strings
/// count their 4-byte codes; dictionaries are shared, not per-row).
pub fn row_bytes(batch: &Batch) -> usize {
    batch
        .columns
        .iter()
        .map(|c| match c.data() {
            ColumnData::Int(_) => 8,
            ColumnData::Dec { .. } => 16,
            ColumnData::Bool(_) => 1,
            ColumnData::Date(_) => 4,
            ColumnData::Str(_) => 4,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::{Field, SqlType};

    fn batch(vals: Vec<(SqlType, Vec<Value>)>) -> Batch {
        let fields: Vec<Field> = vals
            .iter()
            .enumerate()
            .map(|(i, (ty, _))| Field::new(format!("c{i}"), *ty, true))
            .collect();
        let schema = Arc::new(Schema::new(fields));
        let cols = vals.into_iter().map(|(ty, v)| Column::from_values(ty, &v).unwrap()).collect();
        Batch::new(schema, cols).unwrap()
    }

    #[test]
    fn columnar_hash_agrees_within_a_column() {
        // Equal values → equal hashes, across two batches of the same type.
        let a = batch(vec![(SqlType::Text, vec![Value::str("x"), Value::str("y"), Value::Null])]);
        let b = batch(vec![(SqlType::Text, vec![Value::Null, Value::str("y"), Value::str("x")])]);
        let ha = hash_keys(&a, &[0], 0..3);
        let hb = hash_keys(&b, &[0], 0..3);
        assert_eq!(ha[0], hb[2], "same string, different dictionaries");
        assert_eq!(ha[1], hb[1]);
        assert_eq!(ha[2], hb[0], "NULLs hash to one sentinel");
        assert_ne!(ha[0], ha[1]);
        assert_ne!(ha[0], ha[2], "NULL must not collide with a real value");
    }

    #[test]
    fn columnar_hash_subrange_offsets_correctly() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let b = batch(vec![(SqlType::Int, vals)]);
        let full = hash_keys(&b, &[0], 0..100);
        let sub = hash_keys(&b, &[0], 40..60);
        assert_eq!(&full[40..60], &sub[..]);
    }

    #[test]
    fn compiled_predicate_matches_row_eval() {
        let b = batch(vec![
            (SqlType::Int, vec![Value::Int(1), Value::Int(5), Value::Null, Value::Int(9)]),
            (SqlType::Text, vec![Value::str("a"), Value::str("b"), Value::str("b"), Value::Null]),
        ]);
        let pred =
            Expr::col(0).binary(BinOp::GtEq, Expr::int(2)).and(Expr::col(1).eq(Expr::str("b")));
        let compiled = CompiledPredicate::compile(&pred).expect("compilable");
        let mut sel = Vec::new();
        assert!(compiled.eval_into(&b, 0..4, &mut sel));
        let mut expect = Vec::new();
        for i in 0..4 {
            if pred.eval_row(&b.row(i)).unwrap().as_bool().unwrap() == Some(true) {
                expect.push(i);
            }
        }
        assert_eq!(sel, expect);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn compiled_predicate_numeric_cross_type() {
        // INT column vs DECIMAL literal goes through Decimal comparison.
        let b = batch(vec![(SqlType::Int, vec![Value::Int(2), Value::Int(3)])]);
        let pred = Expr::col(0).binary(BinOp::Gt, Expr::Lit(Value::Dec("2.5".parse().unwrap())));
        let compiled = CompiledPredicate::compile(&pred).unwrap();
        let mut sel = Vec::new();
        assert!(compiled.eval_into(&b, 0..2, &mut sel));
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn compiled_predicate_rejects_non_atom_shapes() {
        assert!(CompiledPredicate::compile(&Expr::col(0).eq(Expr::col(1))).is_none());
        let arith = Expr::col(0).binary(BinOp::Add, Expr::int(1)).eq(Expr::int(2));
        assert!(CompiledPredicate::compile(&arith).is_none());
    }

    #[test]
    fn column_map_kernel_selects_and_duplicates() {
        let b = batch(vec![
            (SqlType::Int, vec![Value::Int(1), Value::Int(2)]),
            (SqlType::Text, vec![Value::str("a"), Value::Null]),
        ]);
        let schema = Arc::new(Schema::new(vec![
            Field::new("s", SqlType::Text, true),
            Field::new("k", SqlType::Int, true),
            Field::new("k2", SqlType::Int, true),
        ]));
        let out = apply_column_map(&b, &[1, 0, 0], schema).unwrap();
        assert_eq!(out.to_rows()[0], vec![Value::str("a"), Value::Int(1), Value::Int(1)]);
        assert_eq!(out.to_rows()[1], vec![Value::Null, Value::Int(2), Value::Int(2)]);
    }
}
