//! Morsel-driven parallel execution.
//!
//! The serial executor materializes each operator fully, one at a time.
//! This module runs the same plans across a pool of `std::thread::scope`
//! workers:
//!
//! * **scans** — and any filter/projection stack sitting directly on one —
//!   split the table into fixed-size morsels dispatched by the
//!   work-stealing [`crate::scheduler`], so filters and projections run
//!   per-morsel on the pool (filters through the selection-vector
//!   [`kernels::CompiledPredicate`] when the predicate compiles);
//! * **projection chains** of pure pass-through/renaming nodes fuse into a
//!   single composed column-mapping kernel
//!   ([`vdm_plan::fusion`] + [`kernels::apply_column_map`]), with per-node
//!   stats attributed back to every covered node;
//! * **joins** partition the build side by key hash (columnar branch-free
//!   hashing when both sides' key columns share a physical type), build
//!   per-partition hash maps in parallel, and probe morsels of the other
//!   side concurrently;
//! * **aggregations** radix-partition rows by group-key hash so each
//!   worker owns a disjoint key range and groups never merge across
//!   workers ([`vdm_expr::Accumulator::merge`] is only needed on the
//!   legacy small-input path);
//! * **UNION ALL** concatenates branch results columnar-wise.
//!
//! Results are bit-identical to the serial executor *including row order*:
//! every parallel merge happens in morsel/chunk index order, so output is
//! independent of scheduling and of the worker count. The one exception is
//! `Metrics::rows_scanned` under a pushed-down LIMIT, where the parallel
//! scan dispatches whole waves of morsels and may scan up to
//! `threads * morsel_rows` rows beyond the budget (the serial path stops
//! at exactly the budget).

use crate::executor::{nanos_since, prune_range, Metrics, Profiler};
use crate::kernels::{self, FxHashMap};
use crate::ops;
use crate::scheduler;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;
use vdm_expr::{AggExpr, Expr};
use vdm_obs::{NodeIndex, QueryProfile};
use vdm_plan::fusion::{self, FusedChain};
use vdm_plan::{JoinKind, LogicalPlan, PlanRef};
use vdm_storage::zonemap::ZONE_BLOCK_ROWS;
use vdm_storage::{Batch, ScanRange, Snapshot, StorageEngine};
use vdm_types::{Result, Schema, Value};

/// Worker-pool configuration for the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads. `1` (or `0`) takes the exact legacy serial path.
    pub threads: usize,
    /// Rows per scan morsel and per operator chunk.
    pub morsel_rows: usize,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            morsel_rows: 4 * ZONE_BLOCK_ROWS,
        }
    }
}

impl ParallelConfig {
    /// The legacy single-threaded executor.
    pub fn serial() -> ParallelConfig {
        ParallelConfig { threads: 1, ..ParallelConfig::default() }
    }

    /// A sane copy: at least one thread, at least one row per morsel.
    fn normalized(self) -> ParallelConfig {
        ParallelConfig { threads: self.threads.max(1), morsel_rows: self.morsel_rows.max(1) }
    }
}

/// Executes `plan` on a worker pool at the engine's current snapshot.
pub fn execute_parallel(
    plan: &PlanRef,
    engine: &StorageEngine,
    config: ParallelConfig,
) -> Result<Batch> {
    Ok(execute_parallel_at(plan, engine, engine.snapshot(), config)?.0)
}

/// Executes `plan` on a worker pool at a pinned snapshot, returning the
/// batch and the merged metrics. With `threads <= 1` this *is* the serial
/// executor — same code path, not an emulation.
pub fn execute_parallel_at(
    plan: &PlanRef,
    engine: &StorageEngine,
    snapshot: Snapshot,
    config: ParallelConfig,
) -> Result<(Batch, Metrics)> {
    let config = config.normalized();
    if config.threads <= 1 {
        return crate::executor::execute_at(plan, engine, snapshot);
    }
    let mut ctx = ParCtx::new(engine, snapshot, config);
    let batch = run_par(plan, &mut ctx)?;
    Ok((batch, ctx.metrics))
}

/// Executes `plan` with a per-node runtime profile (EXPLAIN ANALYZE),
/// dispatching to the serial or morsel-parallel engine per `config`.
/// Per-node `rows_out` is identical between the two; time, invocation, and
/// worker counts legitimately differ (see [`vdm_obs::NodeStats`]).
pub fn execute_profiled_at(
    plan: &PlanRef,
    engine: &StorageEngine,
    snapshot: Snapshot,
    config: ParallelConfig,
) -> Result<(Batch, Metrics, QueryProfile)> {
    let config = config.normalized();
    let index = Arc::new(NodeIndex::new(plan));
    if config.threads <= 1 {
        return crate::executor::execute_profiled_serial(plan, engine, snapshot, index);
    }
    let mut ctx = ParCtx::new(engine, snapshot, config);
    ctx.profiler = Some(Profiler::new(index));
    let batch = run_par(plan, &mut ctx)?;
    let profile = ctx.profiler.take().map(|p| p.profile).unwrap_or_default();
    Ok((batch, ctx.metrics, profile))
}

struct ParCtx<'a> {
    engine: &'a StorageEngine,
    snapshot: Snapshot,
    config: ParallelConfig,
    metrics: Metrics,
    /// Per-node profile sink (`None` = profiling off).
    profiler: Option<Profiler>,
    /// Child time of the node currently running (see `ExecContext`).
    child_nanos: u64,
}

impl<'a> ParCtx<'a> {
    fn new(engine: &'a StorageEngine, snapshot: Snapshot, config: ParallelConfig) -> ParCtx<'a> {
        ParCtx {
            engine,
            snapshot,
            config,
            metrics: Metrics::default(),
            profiler: None,
            child_nanos: 0,
        }
    }

    /// Merges a worker pool's counters and partial profile.
    fn absorb(&mut self, metrics: &Metrics, profile: &QueryProfile) {
        self.metrics.merge(metrics);
        if let Some(p) = self.profiler.as_mut() {
            p.profile.merge(profile);
        }
    }
}

/// Parallel twin of `executor::with_profile`: wraps one operator's body,
/// recording output rows and self time against the node.
fn with_profile_par(
    plan: &PlanRef,
    ctx: &mut ParCtx<'_>,
    f: impl FnOnce(&mut ParCtx<'_>) -> Result<Batch>,
) -> Result<Batch> {
    if ctx.profiler.is_none() {
        return f(ctx);
    }
    let start = Instant::now();
    let saved_children = std::mem::take(&mut ctx.child_nanos);
    let out = f(ctx);
    let total = nanos_since(start);
    let self_nanos = total.saturating_sub(ctx.child_nanos);
    if let (Ok(batch), Some(p)) = (&out, ctx.profiler.as_mut()) {
        p.record(plan, batch.num_rows(), self_nanos);
    }
    ctx.child_nanos = saved_children + total;
    out
}

/// OS worker threads actually spawned for a logical `threads` setting:
/// capped at the machine's available parallelism, because oversubscribing
/// cores only adds spawn and context-switch cost (results are
/// schedule-independent, so the cap cannot change output). A floor of two
/// keeps cross-worker merge paths exercised even on single-core hosts.
fn pool_workers(threads: usize) -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    let cores =
        *CORES.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    threads.min(cores.max(2))
}

/// Runs `f` over indices `0..n` on the work-stealing scheduler. Results
/// come back in index order and worker-local metrics/profiles are merged,
/// so the output is schedule-independent; errors surface as the failing
/// index's error (lowest index wins, matching the serial executor's
/// first-error). Steal and claim counts from the scheduler land in the
/// merged metrics' `morsel_steals` / `morsel_claims`.
fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Result<(Vec<T>, Metrics, QueryProfile)>
where
    T: Send,
    F: Fn(usize, &mut Metrics, &mut QueryProfile) -> Result<T> + Sync,
{
    let (out, states, stats) = scheduler::run_with(
        pool_workers(threads),
        n,
        || (Metrics::default(), QueryProfile::default()),
        |i, state: &mut (Metrics, QueryProfile)| f(i, &mut state.0, &mut state.1),
    )?;
    let mut merged = Metrics::default();
    let mut merged_profile = QueryProfile::default();
    for (m, p) in &states {
        merged.merge(m);
        merged_profile.merge(p);
    }
    merged.morsel_steals += stats.steals;
    merged.morsel_claims += stats.claims;
    Ok((out, merged, merged_profile))
}

/// Row range of chunk `i` when `total` rows split into `chunk`-row pieces.
fn chunk_range(i: usize, chunk: usize, total: usize) -> Range<usize> {
    let start = (i * chunk).min(total);
    start..(start + chunk).min(total)
}

fn chunk_count(total: usize, chunk: usize) -> usize {
    total.div_ceil(chunk).max(1)
}

// ---------------------------------------------------------------------------
// Leaf pipelines: Scan with optional Filter/Project stack, fused per morsel.

enum LeafStep<'p> {
    Filter(&'p Expr),
    Project(&'p [(Expr, String)], &'p Arc<Schema>),
    /// One or more adjacent pass-through/renaming projections, composed
    /// into a single column mapping executed by
    /// [`kernels::apply_column_map`]. `covered` is how many plan nodes
    /// (and `node_keys` entries) the mapping absorbs.
    FusedMap {
        mapping: Vec<usize>,
        schema: &'p Arc<Schema>,
        covered: usize,
    },
}

struct LeafPipeline<'p> {
    table: &'p str,
    scan_schema: &'p Arc<Schema>,
    /// Zone-map pruning from the filter sitting directly on the scan.
    prune: Option<(usize, ScanRange)>,
    /// Operators above the scan, bottom-up.
    steps: Vec<LeafStep<'p>>,
    /// Logical plan nodes covered (operator-count bookkeeping).
    nodes: usize,
    /// Node-address keys of the covered plan nodes: the scan first, then
    /// one per step in `steps` order (for per-node profiling).
    node_keys: Vec<usize>,
}

impl LeafPipeline<'_> {
    fn output_schema(&self) -> Arc<Schema> {
        for step in self.steps.iter().rev() {
            match step {
                LeafStep::Project(_, s) | LeafStep::FusedMap { schema: s, .. } => {
                    return Arc::clone(s)
                }
                LeafStep::Filter(_) => {}
            }
        }
        Arc::clone(self.scan_schema)
    }
}

/// Recognizes a scan-rooted pipeline (`Scan`, `Filter(Scan)`,
/// `Project(…(Scan))`, …) that can run morsel-at-a-time without any
/// cross-morsel state. Zone-map pruning attaches exactly where the serial
/// executor applies it: at a filter directly over the scan.
fn extract_leaf(plan: &PlanRef) -> Option<LeafPipeline<'_>> {
    match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => Some(LeafPipeline {
            table: &table.name,
            scan_schema: schema,
            prune: None,
            steps: Vec::new(),
            nodes: 1,
            node_keys: vec![NodeIndex::key(plan)],
        }),
        LogicalPlan::Filter { input, predicate } => {
            let mut p = extract_leaf(input)?;
            if p.steps.is_empty() {
                p.prune = prune_range(predicate);
            }
            p.steps.push(LeafStep::Filter(predicate));
            p.nodes += 1;
            p.node_keys.push(NodeIndex::key(plan));
            Some(p)
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let mut p = extract_leaf(input)?;
            match fusion::column_mapping(exprs) {
                // Pure column mapping: fuse into the step below when that
                // is itself a (possibly already fused) column mapping.
                Some(outer) => match p.steps.last_mut() {
                    Some(LeafStep::FusedMap { mapping, schema: s, covered }) => {
                        // out[j] = prev[outer[j]] — compose in place.
                        *mapping = outer.iter().map(|&j| mapping[j]).collect();
                        *s = schema;
                        *covered += 1;
                    }
                    _ => p.steps.push(LeafStep::FusedMap { mapping: outer, schema, covered: 1 }),
                },
                None => p.steps.push(LeafStep::Project(exprs, schema)),
            }
            p.nodes += 1;
            p.node_keys.push(NodeIndex::key(plan));
            Some(p)
        }
        _ => None,
    }
}

fn run_leaf(pipe: &LeafPipeline<'_>, ctx: &mut ParCtx<'_>) -> Result<Batch> {
    let start = Instant::now();
    ctx.metrics.operators += pipe.nodes;
    // Pruned scans align morsels to zone-map blocks so every block belongs
    // to exactly one morsel and the skip set matches the serial scan.
    let morsel_rows = if pipe.prune.is_some() {
        ctx.config.morsel_rows.div_ceil(ZONE_BLOCK_ROWS).max(1) * ZONE_BLOCK_ROWS
    } else {
        ctx.config.morsel_rows
    };
    let n = ctx.engine.morsel_count(pipe.table, morsel_rows)?;
    let engine = ctx.engine;
    let snapshot = ctx.snapshot;
    // Pre-resolve node ids so worker closures record into plain maps.
    let ids: Option<Vec<Option<usize>>> = ctx
        .profiler
        .as_ref()
        .map(|p| pipe.node_keys.iter().map(|&k| p.index.id_of_ptr(k)).collect());
    let (parts, wm, wp) = parallel_map(ctx.config.threads, n, |m, met, prof| {
        leaf_morsel(engine, snapshot, pipe, m, morsel_rows, met, ids.as_deref(), prof)
    })?;
    ctx.absorb(&wm, &wp);
    let out = Batch::concat(pipe.output_schema(), &parts);
    if ctx.profiler.is_some() {
        // The covered nodes were recorded per morsel by the workers; charge
        // the pipeline's wall time as child time of the enclosing operator.
        ctx.child_nanos += nanos_since(start);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn leaf_morsel(
    engine: &StorageEngine,
    snapshot: Snapshot,
    pipe: &LeafPipeline<'_>,
    morsel: usize,
    morsel_rows: usize,
    met: &mut Metrics,
    ids: Option<&[Option<usize>]>,
    prof: &mut QueryProfile,
) -> Result<Batch> {
    let t = Instant::now();
    let raw = match &pipe.prune {
        Some((col, range)) => {
            engine.scan_morsel_pruned(pipe.table, snapshot, morsel, morsel_rows, *col, range)?
        }
        None => engine.scan_morsel(pipe.table, snapshot, morsel, morsel_rows)?,
    };
    let scan_nanos = nanos_since(t);
    met.scan_nanos += scan_nanos;
    met.rows_scanned += raw.num_rows();
    let mut batch = Batch::new(Arc::clone(pipe.scan_schema), raw.columns)?;
    met.morsel_bytes += kernels::row_bytes(&batch) * batch.num_rows();
    if let Some(Some(id)) = ids.map(|ids| ids[0]) {
        prof.record(id, batch.num_rows() as u64, scan_nanos);
    }
    // `node_keys` holds one entry per covered plan node; steps advance the
    // cursor by however many nodes they absorb (FusedMap covers several).
    let mut key_idx = 1usize;
    for step in &pipe.steps {
        let step_nanos;
        let covered;
        match step {
            LeafStep::Filter(p) => {
                covered = 1;
                met.filter_input_rows += batch.num_rows();
                let t = Instant::now();
                batch = filter_batch(&batch, p, 0..batch.num_rows())?;
                step_nanos = nanos_since(t);
                met.filter_nanos += step_nanos;
            }
            LeafStep::Project(exprs, schema) => {
                covered = 1;
                let t = Instant::now();
                batch = ops::project(&batch, exprs, Arc::clone(schema))?;
                step_nanos = nanos_since(t);
                met.project_nanos += step_nanos;
            }
            LeafStep::FusedMap { mapping, schema, covered: c } => {
                covered = *c;
                let t = Instant::now();
                batch = kernels::apply_column_map(&batch, mapping, Arc::clone(schema))?;
                step_nanos = nanos_since(t);
                met.project_nanos += step_nanos;
            }
        }
        if let Some(ids) = ids {
            // Every covered node reports this morsel's rows; the kernel
            // time goes to the outermost covered node (the last key).
            for (k, id) in ids[key_idx..key_idx + covered].iter().enumerate() {
                if let Some(id) = id {
                    let nanos = if k + 1 == covered { step_nanos } else { 0 };
                    prof.record(*id, batch.num_rows() as u64, nanos);
                }
            }
        }
        key_idx += covered;
    }
    Ok(batch)
}

/// Columnar filter over `rows` of `batch`: selection vector via the
/// compiled-predicate kernel when the predicate is a conjunction of
/// `col ⟨cmp⟩ literal` atoms, row-at-a-time evaluation otherwise, then a
/// payload-level gather of the kept rows.
fn filter_batch(batch: &Batch, predicate: &Expr, rows: Range<usize>) -> Result<Batch> {
    let mut keep = Vec::new();
    let compiled = kernels::CompiledPredicate::compile(predicate);
    let fast = match &compiled {
        Some(c) => c.eval_into(batch, rows.clone(), &mut keep),
        None => false,
    };
    if !fast {
        keep.clear();
        for r in rows {
            if predicate.eval_row(&batch.row(r))?.as_bool()? == Some(true) {
                keep.push(r);
            }
        }
    }
    Ok(batch.gather(&keep))
}

// ---------------------------------------------------------------------------
// The recursive parallel executor.

fn run_par(plan: &PlanRef, ctx: &mut ParCtx<'_>) -> Result<Batch> {
    if let Some(pipe) = extract_leaf(plan) {
        return run_leaf(&pipe, ctx);
    }
    // Scan-rooted projection chains are absorbed by the leaf pipeline
    // above; this catches chains sitting on joins, aggregates, unions, …
    if let Some(chain) = fusion::fused_projection_chain(plan, 2) {
        return run_fused_chain(&chain, ctx);
    }
    with_profile_par(plan, ctx, |c| run_par_node(plan, c))
}

/// Executes a fused projection chain: run the chain's input, then apply
/// the composed column mapping in one kernel pass. Every covered node is
/// recorded in the profile with the chain's row count (column maps
/// preserve cardinality, so per-node `rows_out` matches the serial
/// executor's node-by-node execution exactly); the kernel's self time is
/// attributed to the outermost node of the fused group.
fn run_fused_chain(chain: &FusedChain<'_>, ctx: &mut ParCtx<'_>) -> Result<Batch> {
    ctx.metrics.operators += chain.nodes.len();
    if ctx.profiler.is_none() {
        let child = run_par(chain.input, ctx)?;
        let t = Instant::now();
        let out = kernels::apply_column_map(&child, &chain.mapping, Arc::clone(chain.schema))?;
        ctx.metrics.project_nanos += nanos_since(t);
        return Ok(out);
    }
    // Mirror `with_profile_par`'s child-time protocol by hand: the whole
    // chain behaves as one profiled operator whose self time is the
    // kernel application.
    let start = Instant::now();
    let saved_children = std::mem::take(&mut ctx.child_nanos);
    let child = run_par(chain.input, ctx)?;
    let t = Instant::now();
    let out = kernels::apply_column_map(&child, &chain.mapping, Arc::clone(chain.schema))?;
    let kernel_nanos = nanos_since(t);
    ctx.metrics.project_nanos += kernel_nanos;
    if let Some(p) = ctx.profiler.as_mut() {
        for (i, node) in chain.nodes.iter().copied().enumerate() {
            // `nodes` is outermost-first; the outermost carries the time.
            let nanos = if i == 0 { kernel_nanos } else { 0 };
            p.record(node, out.num_rows(), nanos);
        }
    }
    ctx.child_nanos = saved_children + nanos_since(start);
    Ok(out)
}

fn run_par_node(plan: &PlanRef, ctx: &mut ParCtx<'_>) -> Result<Batch> {
    ctx.metrics.operators += 1;
    match plan.as_ref() {
        // Scan-rooted shapes are taken by `extract_leaf` above; these arms
        // cover Filter/Project over non-scan children.
        LogicalPlan::Scan { table, schema, .. } => {
            let t = Instant::now();
            let batch = ctx.engine.scan(&table.name, ctx.snapshot)?;
            ctx.metrics.scan_nanos += nanos_since(t);
            ctx.metrics.rows_scanned += batch.num_rows();
            Batch::new(Arc::clone(schema), batch.columns)
        }
        LogicalPlan::Values { schema, rows } => Batch::from_rows(Arc::clone(schema), rows),
        LogicalPlan::Project { input, exprs, schema } => {
            let child = run_par(input, ctx)?;
            par_project(&child, exprs, Arc::clone(schema), ctx)
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = run_par(input, ctx)?;
            ctx.metrics.filter_input_rows += child.num_rows();
            par_filter(&child, predicate, ctx)
        }
        LogicalPlan::Join { left, right, kind, on, filter, schema, .. } => {
            let lb = run_par(left, ctx)?;
            let rb = run_par(right, ctx)?;
            ctx.metrics.join_build_rows += rb.num_rows();
            ctx.metrics.join_probe_rows += lb.num_rows();
            let t = Instant::now();
            let out = par_hash_join(&lb, &rb, *kind, on, filter.as_ref(), Arc::clone(schema), ctx)?;
            ctx.metrics.join_nanos += nanos_since(t);
            ctx.metrics.join_output_rows += out.num_rows();
            Ok(out)
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let mut parts = Vec::with_capacity(inputs.len());
            for inp in inputs {
                parts.push(run_par(inp, ctx)?);
            }
            let t = Instant::now();
            let out = Batch::concat(Arc::clone(schema), &parts)?;
            ctx.metrics.union_nanos += nanos_since(t);
            ctx.metrics.union_rows_concatenated += out.num_rows();
            Ok(out)
        }
        LogicalPlan::Aggregate { input, group_by, aggs, schema } => {
            let child = run_par(input, ctx)?;
            ctx.metrics.agg_input_rows += child.num_rows();
            let t = Instant::now();
            let out = par_aggregate(&child, group_by, aggs, Arc::clone(schema), ctx)?;
            ctx.metrics.agg_nanos += nanos_since(t);
            Ok(out)
        }
        LogicalPlan::Distinct { input } => {
            let child = run_par(input, ctx)?;
            ops::distinct(&child)
        }
        LogicalPlan::Sort { input, keys } => {
            let child = run_par(input, ctx)?;
            let t = Instant::now();
            let out = ops::sort(&child, keys)?;
            ctx.metrics.sort_nanos += nanos_since(t);
            Ok(out)
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let child = match fetch {
                Some(f) => {
                    let budget = (*skip as usize).saturating_add(*f as usize);
                    run_budgeted_par(input, budget, ctx)?
                }
                None => run_par(input, ctx)?,
            };
            let out = ops::limit(&child, *skip, *fetch);
            ctx.metrics.limit_rows_emitted += out.num_rows();
            Ok(out)
        }
    }
}

/// Filter over a materialized batch: selection-vector kernel per chunk,
/// chunked across the pool.
fn par_filter(child: &Batch, predicate: &Expr, ctx: &mut ParCtx<'_>) -> Result<Batch> {
    let chunk = ctx.config.morsel_rows;
    let n = chunk_count(child.num_rows(), chunk);
    let row_bytes = kernels::row_bytes(child);
    let (parts, wm, _wp) = parallel_map(ctx.config.threads, n, |i, met, _prof| {
        let t = Instant::now();
        let range = chunk_range(i, chunk, child.num_rows());
        met.morsel_bytes += row_bytes * range.len();
        let out = filter_batch(child, predicate, range)?;
        met.filter_nanos += nanos_since(t);
        Ok(out)
    })?;
    ctx.metrics.merge(&wm);
    Batch::concat(Arc::clone(&child.schema), &parts)
}

/// Projection over a materialized batch. Pure column mappings apply as a
/// single whole-batch kernel; computed projections evaluate row-at-a-time,
/// chunked across the pool.
fn par_project(
    child: &Batch,
    exprs: &[(Expr, String)],
    schema: Arc<Schema>,
    ctx: &mut ParCtx<'_>,
) -> Result<Batch> {
    if let Some(map) = fusion::column_mapping(exprs) {
        let t = Instant::now();
        let out = kernels::apply_column_map(child, &map, schema)?;
        ctx.metrics.project_nanos += nanos_since(t);
        return Ok(out);
    }
    let chunk = ctx.config.morsel_rows;
    let n = chunk_count(child.num_rows(), chunk);
    let row_bytes = kernels::row_bytes(child);
    let out_schema = Arc::clone(&schema);
    let (parts, wm, _wp) = parallel_map(ctx.config.threads, n, |i, met, _prof| {
        let t = Instant::now();
        let range = chunk_range(i, chunk, child.num_rows());
        met.morsel_bytes += row_bytes * range.len();
        let mut rows = Vec::new();
        for r in range {
            let row = child.row(r);
            let mut out = Vec::with_capacity(exprs.len());
            for (e, _) in exprs {
                out.push(e.eval_row(&row)?);
            }
            rows.push(out);
        }
        let out = Batch::from_rows(Arc::clone(&schema), &rows)?;
        met.project_nanos += nanos_since(t);
        Ok(out)
    })?;
    ctx.metrics.merge(&wm);
    Batch::concat(out_schema, &parts)
}

// ---------------------------------------------------------------------------
// Partitioned parallel hash join.

/// Per-chunk partition-routing hashes for the key columns `cols` over
/// `range`. The columnar kernel hashes typed payloads directly; it is
/// only consistent *across two batches* when each key column pair shares
/// a physical type (see [`kernels`] module docs), which the caller gates
/// via `columnar`. Otherwise keys hash through `Value::hash`, canonical
/// across the Int/Dec numeric family.
fn routing_hashes(batch: &Batch, cols: &[usize], range: Range<usize>, columnar: bool) -> Vec<u64> {
    if columnar {
        return kernels::hash_keys(batch, cols, range);
    }
    range
        .map(|i| {
            let key: Vec<Value> = cols.iter().map(|&c| batch.columns[c].get(i)).collect();
            kernels::hash_values(&key)
        })
        .collect()
}

/// Join key of row `i` taken from `cols`; `None` when any part is NULL
/// (NULL keys never match under SQL equi-join semantics).
fn key_at(batch: &Batch, i: usize, cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = batch.columns[c].get(i);
        if v.is_null() {
            return None;
        }
        key.push(v);
    }
    Some(key)
}

/// Parallel hash join preserving the serial executor's semantics and row
/// order: partition the build side by key hash, build per-partition maps
/// with match lists in build-row order, probe chunks of the other side
/// concurrently, and concatenate probe-chunk outputs in chunk order.
fn par_hash_join(
    left: &Batch,
    right: &Batch,
    kind: JoinKind,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    schema: Arc<Schema>,
    ctx: &mut ParCtx<'_>,
) -> Result<Batch> {
    let config = ctx.config;
    if left.num_rows().max(right.num_rows()) < 2 * config.morsel_rows {
        return ops::hash_join(left, right, kind, on, residual, schema);
    }
    // Mirror the serial executor's adaptive build side: an inner equi-join
    // without residual commutes, so build on the smaller input.
    let build_left =
        kind == JoinKind::Inner && residual.is_none() && left.num_rows() < right.num_rows();
    let (build, probe) = if build_left { (left, right) } else { (right, left) };
    let build_cols: Vec<usize> =
        on.iter().map(|&(lc, rc)| if build_left { lc } else { rc }).collect();
    let probe_cols: Vec<usize> =
        on.iter().map(|&(lc, rc)| if build_left { rc } else { lc }).collect();
    // Columnar routing hashes are safe only when each key column pair has
    // the same physical type on both sides (`Int(2) == Dec(2.00)` must not
    // land in different partitions).
    let columnar = build_cols
        .iter()
        .zip(&probe_cols)
        .all(|(&b, &p)| build.columns[b].sql_type() == probe.columns[p].sql_type());

    let n_parts = (pool_workers(config.threads) * 4).next_power_of_two();
    let mask = n_parts - 1;
    let chunk = config.morsel_rows;

    // Phase 1: scatter build rows into per-chunk, per-partition key lists.
    let n_chunks = chunk_count(build.num_rows(), chunk);
    let build_bytes = kernels::row_bytes(build);
    let (scattered, wm1, _) = parallel_map(config.threads, n_chunks, |ci, met, _prof| {
        let range = chunk_range(ci, chunk, build.num_rows());
        met.morsel_bytes += build_bytes * range.len();
        let hashes = routing_hashes(build, &build_cols, range.clone(), columnar);
        let mut parts: Vec<Vec<(Vec<Value>, usize)>> = vec![Vec::new(); n_parts];
        for (k, i) in range.enumerate() {
            if let Some(key) = key_at(build, i, &build_cols) {
                let p = (hashes[k] as usize) & mask;
                parts[p].push((key, i));
            }
        }
        Ok(parts)
    })?;

    // Phase 2: one hash map per partition. Chunks are visited in index
    // order, so every match list holds build-row indices ascending —
    // exactly the serial build's entry order.
    let (maps, wm2, _) = parallel_map(config.threads, n_parts, |p, _met, _prof| {
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for chunk_parts in &scattered {
            for (key, i) in &chunk_parts[p] {
                map.entry(key.clone()).or_default().push(*i);
            }
        }
        Ok(map)
    })?;

    // Phase 3: probe in parallel over chunks of the probe side. Matches
    // accumulate as index pairs; the output batch is assembled by a
    // payload-level columnar gather — no row materialization.
    let probe_chunks = chunk_count(probe.num_rows(), chunk);
    let probe_bytes = kernels::row_bytes(probe);
    let (parts, wm3, _) = parallel_map(config.threads, probe_chunks, |ci, met, _prof| {
        let range = chunk_range(ci, chunk, probe.num_rows());
        met.morsel_bytes += probe_bytes * range.len();
        let hashes = routing_hashes(probe, &probe_cols, range.clone(), columnar);
        let mut probe_sel: Vec<usize> = Vec::new();
        let mut build_sel: Vec<Option<usize>> = Vec::new();
        let mut key = Vec::with_capacity(probe_cols.len());
        for (k, i) in range.enumerate() {
            key.clear();
            for &c in &probe_cols {
                key.push(probe.columns[c].get(i));
            }
            let matches = if key.iter().any(Value::is_null) {
                None // NULL keys never match
            } else {
                maps[(hashes[k] as usize) & mask].get(key.as_slice())
            };
            if build_left {
                // Inner join; output order `build ++ probe` = left ++ right.
                if let Some(matches) = matches {
                    for &bi in matches {
                        probe_sel.push(i);
                        build_sel.push(Some(bi));
                    }
                }
            } else {
                let mut emitted = false;
                if let Some(matches) = matches {
                    for &bi in matches {
                        let pass = match residual {
                            Some(f) => {
                                let mut combined = probe.row(i);
                                combined.extend(build.row(bi));
                                f.eval_row(&combined)?.as_bool()? == Some(true)
                            }
                            None => true,
                        };
                        if pass {
                            probe_sel.push(i);
                            build_sel.push(Some(bi));
                            emitted = true;
                        }
                    }
                }
                if !emitted && kind == JoinKind::LeftOuter {
                    probe_sel.push(i);
                    build_sel.push(None);
                }
            }
        }
        let mut columns = Vec::with_capacity(schema.len());
        if build_left {
            for c in &build.columns {
                columns.push(c.gather_opt(&build_sel));
            }
            for c in &probe.columns {
                columns.push(c.gather(&probe_sel));
            }
        } else {
            for c in &probe.columns {
                columns.push(c.gather(&probe_sel));
            }
            for c in &build.columns {
                columns.push(c.gather_opt(&build_sel));
            }
        }
        Batch::new(Arc::clone(&schema), columns)
    })?;
    ctx.metrics.merge(&wm1);
    ctx.metrics.merge(&wm2);
    ctx.metrics.merge(&wm3);
    Batch::concat(schema, &parts)
}

// ---------------------------------------------------------------------------
// Parallel aggregation.
//
// Two strategies:
//
// * **partition-wise** (the default for grouped aggregation): rows are
//   radix-partitioned by group-key hash, each worker owns a disjoint set
//   of partitions — and therefore a disjoint key range — so a group's
//   accumulator is updated by exactly one worker in global row order and
//   no cross-worker state merge ever happens. Finished groups carry their
//   global first-row index; one final sort by that index reproduces the
//   serial executor's first-seen output order bit-for-bit.
// * **chunk partials** (global aggregates and small inputs): thread-local
//   partial states per chunk, merged in chunk order via
//   [`vdm_expr::Accumulator::merge`].

type AggPartial = (Vec<Vec<Value>>, Vec<Vec<vdm_expr::Accumulator>>);

/// Serial hash aggregation over one row range, producing partial states
/// instead of finished values (group order: first-seen within the range).
fn agg_partial(
    input: &Batch,
    range: Range<usize>,
    group_by: &[(Expr, String)],
    aggs: &[(AggExpr, String)],
) -> Result<AggPartial> {
    let mut groups: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut states: Vec<Vec<vdm_expr::Accumulator>> = Vec::new();
    if group_by.is_empty() {
        groups.insert(Vec::new(), 0);
        order.push(Vec::new());
        states.push(aggs.iter().map(|(a, _)| a.accumulator()).collect());
    }
    for i in range {
        let row = input.row(i);
        let mut key = Vec::with_capacity(group_by.len());
        for (e, _) in group_by {
            key.push(e.eval_row(&row)?);
        }
        let slot = match groups.get(&key) {
            Some(&s) => s,
            None => {
                let s = order.len();
                groups.insert(key.clone(), s);
                order.push(key);
                states.push(aggs.iter().map(|(a, _)| a.accumulator()).collect());
                s
            }
        };
        for (j, (agg, _)) in aggs.iter().enumerate() {
            let v = match &agg.arg {
                Some(a) => a.eval_row(&row)?,
                None => Value::Int(1), // COUNT(*) placeholder
            };
            states[slot][j].update(&v)?;
        }
    }
    Ok((order, states))
}

/// One aggregate's input value for row `i`: plain-column arguments read
/// the column directly (no row materialization), computed arguments fall
/// back to row evaluation, `COUNT(*)` uses its placeholder.
fn agg_arg_value(child: &Batch, i: usize, agg: &AggExpr) -> Result<Value> {
    match &agg.arg {
        None => Ok(Value::Int(1)), // COUNT(*) placeholder
        Some(Expr::Col(c)) => Ok(child.columns[*c].get(i)),
        Some(e) => e.eval_row(&child.row(i)),
    }
}

fn par_aggregate(
    child: &Batch,
    group_by: &[(Expr, String)],
    aggs: &[(AggExpr, String)],
    schema: Arc<Schema>,
    ctx: &mut ParCtx<'_>,
) -> Result<Batch> {
    let config = ctx.config;
    let chunk = config.morsel_rows;
    // Global aggregates have a single group — nothing to partition; tiny
    // inputs aren't worth the scatter pass.
    if group_by.is_empty() || child.num_rows() < 2 * chunk {
        return par_aggregate_merge(child, group_by, aggs, schema, config);
    }

    // Columnar key extraction/hashing applies when every group expression
    // is a plain column (a single batch hashes consistently within each
    // column, so no cross-batch type gate is needed here).
    let key_cols: Option<Vec<usize>> = group_by
        .iter()
        .map(|(e, _)| match e {
            Expr::Col(i) => Some(*i),
            _ => None,
        })
        .collect();
    let n_parts = (pool_workers(config.threads) * 4).next_power_of_two();
    let mask = n_parts - 1;
    let n_chunks = chunk_count(child.num_rows(), chunk);
    let row_bytes = kernels::row_bytes(child);

    // Phase 1: scatter (hash, row) pairs into per-chunk partition lists by
    // group-key hash. Intra-chunk order is preserved, so visiting chunks
    // in index order later yields global row order within each partition.
    // Keys are *not* materialized here — a representative row index stands
    // in for each group, so the hot loop allocates nothing per row.
    let (scattered, wm1, _) = parallel_map(config.threads, n_chunks, |ci, met, _prof| {
        let range = chunk_range(ci, chunk, child.num_rows());
        met.morsel_bytes += row_bytes * range.len();
        let mut parts: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n_parts];
        match &key_cols {
            Some(cols) => {
                let hashes = kernels::hash_keys(child, cols, range.clone());
                for (k, i) in range.enumerate() {
                    let h = hashes[k];
                    parts[(h as usize) & mask].push((h, i));
                }
            }
            None => {
                let mut key = Vec::with_capacity(group_by.len());
                for i in range {
                    let row = child.row(i);
                    key.clear();
                    for (e, _) in group_by {
                        key.push(e.eval_row(&row)?);
                    }
                    let h = kernels::hash_values(&key);
                    parts[(h as usize) & mask].push((h, i));
                }
            }
        }
        Ok(parts)
    })?;

    // Phase 2: exclusive per-partition build. Equal keys always hash to
    // the same partition, so each group belongs to exactly one partition
    // and its accumulators see updates in global row order — no
    // cross-worker merge, hence no merge-order sensitivity. Groups are
    // identified by hash + key comparison against the group's first row
    // (collision chains), so lookups never rebuild or rehash key vectors.
    let (built, wm2, _) = parallel_map(config.threads, n_parts, |p, _met, _prof| {
        let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        let mut groups: Vec<(usize, Vec<vdm_expr::Accumulator>)> = Vec::new();
        for chunk_parts in &scattered {
            for &(h, i) in &chunk_parts[p] {
                let slots = map.entry(h).or_default();
                let mut slot = usize::MAX;
                for &s in slots.iter() {
                    if group_keys_equal(child, group_by, &key_cols, groups[s].0, i)? {
                        slot = s;
                        break;
                    }
                }
                if slot == usize::MAX {
                    slot = groups.len();
                    slots.push(slot);
                    groups.push((i, aggs.iter().map(|(a, _)| a.accumulator()).collect()));
                }
                for (j, (agg, _)) in aggs.iter().enumerate() {
                    let v = agg_arg_value(child, i, agg)?;
                    groups[slot].1[j].update(&v)?;
                }
            }
        }
        Ok(groups)
    })?;
    ctx.metrics.merge(&wm1);
    ctx.metrics.merge(&wm2);

    // Phase 3: groups ordered by global first occurrence reproduce the
    // serial executor's first-seen output order exactly; the key values
    // are materialized once per group from its representative row.
    let mut all: Vec<(usize, Vec<vdm_expr::Accumulator>)> = built.into_iter().flatten().collect();
    all.sort_unstable_by_key(|(first, _)| *first);
    let mut rows = Vec::with_capacity(all.len());
    for (repr, accs) in all {
        let mut row: Vec<Value> = match &key_cols {
            Some(cols) => cols.iter().map(|&c| child.columns[c].get(repr)).collect(),
            None => {
                let r = child.row(repr);
                group_by.iter().map(|(e, _)| e.eval_row(&r)).collect::<Result<_>>()?
            }
        };
        for acc in &accs {
            row.push(acc.finish()?);
        }
        rows.push(row);
    }
    Batch::from_rows(schema, &rows)
}

/// True when rows `a` and `b` agree on every group-key expression. Plain
/// column keys compare column values directly; computed keys re-evaluate
/// per expression with short-circuiting. Uses `Value` equality, i.e. the
/// same NULL-groups-together and Int/Dec-family semantics as the serial
/// executor's key map.
fn group_keys_equal(
    child: &Batch,
    group_by: &[(Expr, String)],
    key_cols: &Option<Vec<usize>>,
    a: usize,
    b: usize,
) -> Result<bool> {
    match key_cols {
        Some(cols) => Ok(cols.iter().all(|&c| child.columns[c].get(a) == child.columns[c].get(b))),
        None => {
            let ra = child.row(a);
            let rb = child.row(b);
            for (e, _) in group_by {
                if e.eval_row(&ra)? != e.eval_row(&rb)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// Legacy chunk-partial aggregation: thread-local partial states merged in
/// chunk order — a group's global first occurrence lies in the earliest
/// chunk containing it, so the merged first-seen order equals the serial
/// executor's.
fn par_aggregate_merge(
    child: &Batch,
    group_by: &[(Expr, String)],
    aggs: &[(AggExpr, String)],
    schema: Arc<Schema>,
    config: ParallelConfig,
) -> Result<Batch> {
    let chunk = config.morsel_rows;
    let n = chunk_count(child.num_rows(), chunk);
    let (partials, _, _) = parallel_map(config.threads, n, |i, _met, _prof| {
        agg_partial(child, chunk_range(i, chunk, child.num_rows()), group_by, aggs)
    })?;
    let mut groups: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut states: Vec<Vec<vdm_expr::Accumulator>> = Vec::new();
    for (p_order, p_states) in partials {
        for (key, accs) in p_order.into_iter().zip(p_states) {
            match groups.get(&key) {
                Some(&slot) => {
                    for (j, acc) in accs.iter().enumerate() {
                        states[slot][j].merge(acc)?;
                    }
                }
                None => {
                    groups.insert(key.clone(), order.len());
                    order.push(key);
                    states.push(accs);
                }
            }
        }
    }
    let mut rows = Vec::with_capacity(order.len());
    for (key, accs) in order.into_iter().zip(states.iter()) {
        let mut row = key;
        for acc in accs {
            row.push(acc.finish()?);
        }
        rows.push(row);
    }
    Batch::from_rows(schema, &rows)
}

// ---------------------------------------------------------------------------
// Budgeted (LIMIT-pushdown) parallel execution.

/// Parallel mirror of the serial `run_budgeted`: truncation applies only
/// where it cannot change which rows could appear (scans, projections,
/// unions, stacked limits, literal rows); everything else runs fully and
/// truncates afterwards.
fn run_budgeted_par(plan: &PlanRef, budget: usize, ctx: &mut ParCtx<'_>) -> Result<Batch> {
    match plan.as_ref() {
        LogicalPlan::Scan { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::Project { .. }
        | LogicalPlan::UnionAll { .. }
        | LogicalPlan::Limit { .. } => {
            with_profile_par(plan, ctx, |c| run_budgeted_par_node(plan, budget, c))
        }
        _ => {
            // run_par counts, profiles, and merges this subtree itself.
            let full = run_par(plan, ctx)?;
            Ok(truncate(full, budget))
        }
    }
}

fn run_budgeted_par_node(plan: &PlanRef, budget: usize, ctx: &mut ParCtx<'_>) -> Result<Batch> {
    ctx.metrics.operators += 1;
    match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => {
            // Wave dispatch: `threads` morsels at a time in index order;
            // once the completed prefix covers the budget no further wave
            // launches. Scanned rows stay within
            // `budget + threads * morsel_rows`, keeping pushed-down LIMIT
            // O(k) instead of O(table).
            let morsel_rows = ctx.config.morsel_rows;
            let n = ctx.engine.morsel_count(&table.name, morsel_rows)?;
            let engine = ctx.engine;
            let snapshot = ctx.snapshot;
            let mut parts: Vec<Batch> = Vec::new();
            let mut have = 0usize;
            let mut base = 0usize;
            while base < n && have < budget {
                let wave = (n - base).min(pool_workers(ctx.config.threads));
                let (batches, wm, _wp) =
                    parallel_map(ctx.config.threads, wave, |i, met, _prof| {
                        let t = Instant::now();
                        let b = engine.scan_morsel(&table.name, snapshot, base + i, morsel_rows)?;
                        met.scan_nanos += nanos_since(t);
                        met.rows_scanned += b.num_rows();
                        Ok(b)
                    })?;
                ctx.metrics.merge(&wm);
                for b in batches {
                    have += b.num_rows();
                    parts.push(b);
                }
                base += wave;
            }
            let merged = Batch::concat(Arc::clone(schema), &parts)?;
            Ok(truncate(merged, budget))
        }
        LogicalPlan::Values { schema, rows } => {
            let take = rows.len().min(budget);
            Batch::from_rows(Arc::clone(schema), &rows[..take])
        }
        LogicalPlan::Project { input, exprs, schema } => {
            // Column mappings preserve cardinality, so a whole fused chain
            // passes the budget straight through to its input. The
            // enclosing `with_profile_par` records the outermost node;
            // inner covered nodes are recorded here (same rows, zero self
            // time) so EXPLAIN ANALYZE still shows every node.
            if let Some(chain) = fusion::fused_projection_chain(plan, 1) {
                let child = run_budgeted_par(chain.input, budget, ctx)?;
                let t = Instant::now();
                let out =
                    kernels::apply_column_map(&child, &chain.mapping, Arc::clone(chain.schema))?;
                ctx.metrics.project_nanos += nanos_since(t);
                ctx.metrics.operators += chain.nodes.len() - 1;
                if let Some(p) = ctx.profiler.as_mut() {
                    for node in chain.nodes.iter().skip(1).copied() {
                        p.record(node, out.num_rows(), 0);
                    }
                }
                return Ok(out);
            }
            let child = run_budgeted_par(input, budget, ctx)?;
            let t = Instant::now();
            let out = ops::project(&child, exprs, Arc::clone(schema));
            ctx.metrics.project_nanos += nanos_since(t);
            out
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let mut parts = Vec::new();
            let mut have = 0usize;
            for inp in inputs {
                if have >= budget {
                    break;
                }
                let b = run_budgeted_par(inp, budget - have, ctx)?;
                have += b.num_rows();
                parts.push(b);
            }
            let t = Instant::now();
            let merged = Batch::concat(Arc::clone(schema), &parts)?;
            ctx.metrics.union_nanos += nanos_since(t);
            ctx.metrics.union_rows_concatenated += merged.num_rows();
            Ok(truncate(merged, budget))
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let inner_budget = match fetch {
                Some(f) => budget.min((*skip as usize).saturating_add(*f as usize)),
                None => budget.saturating_add(*skip as usize),
            };
            let child = run_budgeted_par(input, inner_budget, ctx)?;
            let limited = ops::limit(&child, *skip, *fetch);
            let out = truncate(limited, budget);
            ctx.metrics.limit_rows_emitted += out.num_rows();
            Ok(out)
        }
        _ => unreachable!("run_budgeted_par routes other operators through run_par()"),
    }
}

fn truncate(batch: Batch, budget: usize) -> Batch {
    if batch.num_rows() <= budget {
        return batch;
    }
    let prefix: Vec<usize> = (0..budget).collect();
    batch.gather(&prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_at;
    use vdm_catalog::TableBuilder;
    use vdm_expr::{AggExpr, AggFunc};
    use vdm_types::SqlType;

    fn many_rows_engine(n: i64) -> (StorageEngine, Arc<vdm_catalog::TableDef>) {
        let def = Arc::new(
            TableBuilder::new("t")
                .column("k", SqlType::Int, false)
                .column("grp", SqlType::Int, false)
                .column("amt", SqlType::Decimal { scale: 2 }, false)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        );
        let e = StorageEngine::new();
        e.create_table(Arc::clone(&def)).unwrap();
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 13),
                    Value::Dec(vdm_types::Decimal::from_units((i * 7 % 1000) as i128, 2)),
                ]
            })
            .collect();
        e.insert("t", rows).unwrap();
        // Half in main, half in delta.
        e.merge_delta("t").unwrap();
        let extra: Vec<Vec<Value>> = (n..n + n / 2)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 13),
                    Value::Dec(vdm_types::Decimal::from_units(5, 2)),
                ]
            })
            .collect();
        e.insert("t", extra).unwrap();
        (e, def)
    }

    fn cfg(threads: usize) -> ParallelConfig {
        ParallelConfig { threads, morsel_rows: 512 }
    }

    fn assert_equivalent(plan: &PlanRef, e: &StorageEngine) {
        let snap = e.snapshot();
        let (serial, sm) = execute_at(plan, e, snap).unwrap();
        for threads in [2, 4] {
            let (par, pm) = execute_parallel_at(plan, e, snap, cfg(threads)).unwrap();
            assert_eq!(par.to_rows(), serial.to_rows(), "threads={threads}");
            assert_eq!(pm.rows_scanned, sm.rows_scanned, "threads={threads}");
            assert_eq!(pm.filter_input_rows, sm.filter_input_rows, "threads={threads}");
            assert_eq!(pm.join_build_rows, sm.join_build_rows, "threads={threads}");
            assert_eq!(pm.join_output_rows, sm.join_output_rows, "threads={threads}");
            assert_eq!(pm.agg_input_rows, sm.agg_input_rows, "threads={threads}");
            assert_eq!(pm.operators, sm.operators, "threads={threads}");
        }
    }

    #[test]
    fn parallel_scan_filter_project_matches_serial() {
        let (e, def) = many_rows_engine(4_000);
        let scan = LogicalPlan::scan(Arc::clone(&def));
        assert_equivalent(&scan, &e);
        let filtered = LogicalPlan::filter(scan, Expr::col(1).eq(Expr::int(3))).unwrap();
        assert_equivalent(&filtered, &e);
        let projected = LogicalPlan::project(
            filtered,
            vec![(Expr::col(0), "k".into()), (Expr::col(2), "amt".into())],
        )
        .unwrap();
        assert_equivalent(&projected, &e);
    }

    #[test]
    fn parallel_join_matches_serial() {
        let (e, def) = many_rows_engine(3_000);
        let dim = Arc::new(
            TableBuilder::new("dim")
                .column("g", SqlType::Int, false)
                .column("name", SqlType::Text, false)
                .primary_key(&["g"])
                .build()
                .unwrap(),
        );
        e.create_table(Arc::clone(&dim)).unwrap();
        // Only some groups have dimension rows: outer joins pad the rest.
        e.insert(
            "dim",
            (0..8i64).map(|g| vec![Value::Int(g), Value::str(format!("g{g}"))]).collect(),
        )
        .unwrap();
        let inner = LogicalPlan::inner_join(
            LogicalPlan::scan(Arc::clone(&def)),
            LogicalPlan::scan(Arc::clone(&dim)),
            vec![(1, 0)],
        )
        .unwrap();
        assert_equivalent(&inner, &e);
        let outer = LogicalPlan::left_join(
            LogicalPlan::scan(Arc::clone(&def)),
            LogicalPlan::scan(Arc::clone(&dim)),
            vec![(1, 0)],
        )
        .unwrap();
        assert_equivalent(&outer, &e);
        // Left-outer with residual: padding only when the residual rejects.
        let residual = LogicalPlan::join(
            LogicalPlan::scan(def),
            LogicalPlan::scan(dim),
            JoinKind::LeftOuter,
            vec![(1, 0)],
            Some(Expr::col(4).eq(Expr::str("g3"))),
            None,
            false,
        )
        .unwrap();
        assert_equivalent(&residual, &e);
    }

    #[test]
    fn parallel_aggregate_matches_serial() {
        let (e, def) = many_rows_engine(4_000);
        let agg = LogicalPlan::aggregate(
            LogicalPlan::scan(Arc::clone(&def)),
            vec![(Expr::col(1), "g".into())],
            vec![
                (AggExpr::count_star(), "n".into()),
                (AggExpr::new(AggFunc::Sum, Expr::col(2)), "total".into()),
                (AggExpr::new(AggFunc::Min, Expr::col(0)), "lo".into()),
                (AggExpr::new(AggFunc::Avg, Expr::col(0)), "avg_k".into()),
            ],
        )
        .unwrap();
        assert_equivalent(&agg, &e);
        // Global aggregate (no keys) over the same data.
        let global = LogicalPlan::aggregate(
            LogicalPlan::scan(def),
            vec![],
            vec![(AggExpr::new(AggFunc::Sum, Expr::col(2)), "total".into())],
        )
        .unwrap();
        assert_equivalent(&global, &e);
    }

    #[test]
    fn budgeted_parallel_limit_is_bounded_and_exact() {
        let (e, def) = many_rows_engine(20_000);
        let total = e.row_count("t", e.snapshot()).unwrap();
        let plan = LogicalPlan::limit(LogicalPlan::scan(def), 5, Some(100));
        let snap = e.snapshot();
        let (serial, _) = execute_at(&plan, &e, snap).unwrap();
        let config = cfg(4);
        let (par, pm) = execute_parallel_at(&plan, &e, snap, config).unwrap();
        assert_eq!(par.to_rows(), serial.to_rows());
        let bound = 105 + config.threads * config.morsel_rows;
        assert!(
            pm.rows_scanned <= bound,
            "parallel budgeted scan touched {} rows (bound {bound}, table {total})",
            pm.rows_scanned
        );
        assert!(pm.rows_scanned < total, "must not scan the whole table");
    }

    #[test]
    fn serial_config_is_legacy_path() {
        let (e, def) = many_rows_engine(1_000);
        let plan = LogicalPlan::scan(def);
        let snap = e.snapshot();
        let (serial, sm) = execute_at(&plan, &e, snap).unwrap();
        let (par, pm) = execute_parallel_at(&plan, &e, snap, ParallelConfig::serial()).unwrap();
        assert_eq!(par.to_rows(), serial.to_rows());
        assert_eq!(pm.rows_scanned, sm.rows_scanned);
    }
}
