//! Signed-delta evaluation: the batch-level engine behind incremental
//! view maintenance.
//!
//! A [`SignedBatch`] carries the *change* of a subtree's output between
//! two snapshots as two bags: `plus` (rows the output gained) and `minus`
//! (rows it lost). Scans source their deltas from the storage engine's
//! insert/tombstone feeds; filters and projections distribute over both
//! bags through the columnar kernels (compiled-predicate selection
//! vectors, fused column maps) rather than per-row `eval_row`; joins apply
//! the bilinear product rule
//!
//! ```text
//! Δ(A ⋈ B) = ΔA ⋈ B_old  ∪  A_old ⋈ ΔB  ∪  ΔA ⋈ ΔB
//! ```
//!
//! with signs multiplying (`+·+ = +`, `+·− = −`, `−·− = +`), probing any
//! unchanged or non-delta-capable side from its snapshot scan. The caller
//! (the cached-view maintainer) guarantees that snapshot-probed sides are
//! actually unchanged — `vdm-plan`'s `DeltaPlan` freezes their tables.

use crate::kernels::{apply_column_map, CompiledPredicate};
use crate::ops;
use std::sync::Arc;
use vdm_expr::Expr;
use vdm_plan::{column_mapping, delta_capable, JoinKind, LogicalPlan, PlanRef};
use vdm_storage::{Batch, Snapshot, StorageEngine};
use vdm_types::{Result, Schema, VdmError};

/// The change of a relation between two snapshots, as signed bags.
#[derive(Debug, Clone)]
pub struct SignedBatch {
    /// Rows the output gained.
    pub plus: Batch,
    /// Rows the output lost (retractions).
    pub minus: Batch,
}

impl SignedBatch {
    /// The empty delta.
    pub fn empty(schema: Arc<Schema>) -> SignedBatch {
        SignedBatch { plus: Batch::empty(Arc::clone(&schema)), minus: Batch::empty(schema) }
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.plus.num_rows() == 0 && self.minus.num_rows() == 0
    }

    /// Total delta rows (both signs) — the cost driver of maintenance.
    pub fn rows(&self) -> usize {
        self.plus.num_rows() + self.minus.num_rows()
    }
}

/// Evaluates the signed delta of `plan`'s output between `as_of` and
/// `now`. Errors on subtrees that do not propagate deltas (aggregates,
/// DISTINCT, sorts, limits — and LEFT OUTER joins whose left side is not
/// delta-capable); the maintenance planner routes those to full recompute
/// before ever calling this.
pub fn eval_signed_delta(
    plan: &PlanRef,
    engine: &StorageEngine,
    as_of: Snapshot,
    now: Snapshot,
) -> Result<SignedBatch> {
    match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => {
            let plus = engine.inserted_between(&table.name, as_of, now)?;
            let minus = engine.deleted_between(&table.name, as_of, now)?;
            Ok(SignedBatch {
                plus: Batch::new(Arc::clone(schema), plus.columns)?,
                minus: Batch::new(Arc::clone(schema), minus.columns)?,
            })
        }
        // Constant relations never change.
        LogicalPlan::Values { schema, .. } => Ok(SignedBatch::empty(Arc::clone(schema))),
        LogicalPlan::Filter { input, predicate } => {
            let d = eval_signed_delta(input, engine, as_of, now)?;
            Ok(SignedBatch {
                plus: filter_batch(&d.plus, predicate)?,
                minus: filter_batch(&d.minus, predicate)?,
            })
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let d = eval_signed_delta(input, engine, as_of, now)?;
            Ok(SignedBatch {
                plus: project_batch(&d.plus, exprs, Arc::clone(schema))?,
                minus: project_batch(&d.minus, exprs, Arc::clone(schema))?,
            })
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let mut plus = Vec::with_capacity(inputs.len());
            let mut minus = Vec::with_capacity(inputs.len());
            for c in inputs {
                let d = eval_signed_delta(c, engine, as_of, now)?;
                plus.push(d.plus);
                minus.push(d.minus);
            }
            Ok(SignedBatch {
                plus: Batch::concat(Arc::clone(schema), &plus)?,
                minus: Batch::concat(Arc::clone(schema), &minus)?,
            })
        }
        LogicalPlan::Join { left, right, kind, on, filter, schema, .. } => {
            join_delta(left, right, *kind, on, filter.as_ref(), schema, engine, as_of, now)
        }
        other => Err(VdmError::Plan(format!(
            "plan operator {} does not propagate deltas",
            other.op_name()
        ))),
    }
}

#[allow(clippy::too_many_arguments)]
fn join_delta(
    left: &PlanRef,
    right: &PlanRef,
    kind: JoinKind,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    schema: &Arc<Schema>,
    engine: &StorageEngine,
    as_of: Snapshot,
    now: Snapshot,
) -> Result<SignedBatch> {
    let join = |l: &Batch, r: &Batch, k: JoinKind| -> Result<Batch> {
        ops::hash_join(l, r, k, on, residual, Arc::clone(schema))
    };
    let snap = |side: &PlanRef, at: Snapshot| -> Result<Batch> {
        crate::execute_at(side, engine, at).map(|(b, _)| b)
    };
    let l_cap = delta_capable(left);
    // LEFT OUTER is linear only in its left input: a right-side insert can
    // retract an existing NULL-padded row, which the product rule cannot
    // express. The planner froze the right side's tables; probe it at `now`.
    let r_cap = kind == JoinKind::Inner && delta_capable(right);
    match (l_cap, r_cap) {
        (true, true) => {
            let ld = eval_signed_delta(left, engine, as_of, now)?;
            let rd = eval_signed_delta(right, engine, as_of, now)?;
            if rd.is_empty() {
                // B unchanged: Δ(A ⋈ B) = ΔA ⋈ B, one probe side, no
                // old-snapshot re-evaluation. (Symmetrically below.)
                let b = snap(right, now)?;
                return Ok(SignedBatch {
                    plus: join(&ld.plus, &b, kind)?,
                    minus: join(&ld.minus, &b, kind)?,
                });
            }
            if ld.is_empty() {
                let a = snap(left, now)?;
                return Ok(SignedBatch {
                    plus: join(&a, &rd.plus, kind)?,
                    minus: join(&a, &rd.minus, kind)?,
                });
            }
            // Both sides moved: the full product rule over signed bags.
            let a_old = snap(left, as_of)?;
            let b_old = snap(right, as_of)?;
            let plus = Batch::concat(
                Arc::clone(schema),
                &[
                    join(&ld.plus, &b_old, kind)?,
                    join(&a_old, &rd.plus, kind)?,
                    join(&ld.plus, &rd.plus, kind)?,
                    join(&ld.minus, &rd.minus, kind)?,
                ],
            )?;
            let minus = Batch::concat(
                Arc::clone(schema),
                &[
                    join(&ld.minus, &b_old, kind)?,
                    join(&a_old, &rd.minus, kind)?,
                    join(&ld.plus, &rd.minus, kind)?,
                    join(&ld.minus, &rd.plus, kind)?,
                ],
            )?;
            Ok(SignedBatch { plus, minus })
        }
        (true, false) => {
            // Frozen/unchanged right side, probed from its snapshot scan.
            let ld = eval_signed_delta(left, engine, as_of, now)?;
            if ld.is_empty() {
                return Ok(SignedBatch::empty(Arc::clone(schema)));
            }
            let b = snap(right, now)?;
            Ok(SignedBatch { plus: join(&ld.plus, &b, kind)?, minus: join(&ld.minus, &b, kind)? })
        }
        (false, true) => {
            let rd = eval_signed_delta(right, engine, as_of, now)?;
            if rd.is_empty() {
                return Ok(SignedBatch::empty(Arc::clone(schema)));
            }
            let a = snap(left, now)?;
            Ok(SignedBatch { plus: join(&a, &rd.plus, kind)?, minus: join(&a, &rd.minus, kind)? })
        }
        (false, false) => Err(VdmError::Plan(format!(
            "{} join with no delta-capable side does not propagate deltas",
            kind_name(kind)
        ))),
    }
}

fn kind_name(kind: JoinKind) -> &'static str {
    match kind {
        JoinKind::Inner => "INNER",
        JoinKind::LeftOuter => "LEFT OUTER",
    }
}

/// Columnar filter: compiled predicate over a selection vector, falling
/// back to row-wise evaluation for non-compilable predicates.
pub fn filter_batch(input: &Batch, predicate: &Expr) -> Result<Batch> {
    if input.num_rows() == 0 {
        return Ok(input.clone());
    }
    if let Some(compiled) = CompiledPredicate::compile(predicate) {
        let mut sel = Vec::new();
        if compiled.eval_into(input, 0..input.num_rows(), &mut sel) {
            return Ok(input.take(&sel));
        }
    }
    ops::filter(input, predicate)
}

/// Columnar projection: pure column maps gather whole columns, anything
/// else evaluates row-wise.
pub fn project_batch(
    input: &Batch,
    exprs: &[(Expr, String)],
    schema: Arc<Schema>,
) -> Result<Batch> {
    if let Some(map) = column_mapping(exprs) {
        return apply_column_map(input, &map, schema);
    }
    ops::project(input, exprs, schema)
}
