//! Query execution.
//!
//! A materializing, hash-based executor over logical plans: each operator
//! consumes its children's batches fully and produces one output batch.
//! At the data sizes of the paper's experiments (10⁴–10⁶ rows in memory)
//! this is simple and fast enough, and it makes the *cost asymmetries* the
//! optimizations exploit directly visible: an unused augmentation join
//! still builds its hash table, a limit that isn't pushed below a join pays
//! for the whole join, and so on — exactly the effects Tables 1–4 and
//! Fig. 14 measure.
//!
//! Runtime [`Metrics`] record rows flowing through each operator class so
//! tests and benches can assert *work*, not just wall time.

pub mod delta;
mod executor;
pub mod kernels;
mod ops;
mod parallel;
pub mod pool;
pub mod scheduler;

#[cfg(test)]
mod ops_tests;

pub use delta::{eval_signed_delta, SignedBatch};
pub use executor::{execute, execute_at, execute_profiled_serial, ExecContext, Metrics, Profiler};
pub use parallel::{execute_parallel, execute_parallel_at, execute_profiled_at, ParallelConfig};
pub use pool::{current_worker_pool, with_worker_pool, WorkerPool};
pub use vdm_obs::{NodeIndex, NodeStats, QueryProfile};
