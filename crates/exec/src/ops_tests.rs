//! Edge-case tests for the physical operators: empty inputs, NULL join
//! keys, offsets past the end, type coercion across unions, and the
//! budgeted execution path.

use crate::executor::{execute, execute_at};
use std::sync::Arc;
use vdm_catalog::{TableBuilder, TableDef};
use vdm_expr::{AggExpr, AggFunc, BinOp, Expr};
use vdm_plan::{JoinKind, LogicalPlan, PlanRef, SortKey};
use vdm_storage::StorageEngine;
use vdm_types::{Schema, SqlType, Value};

fn table(name: &str) -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new(name)
            .column("k", SqlType::Int, false)
            .column("v", SqlType::Int, true)
            .primary_key(&["k"])
            .build()
            .unwrap(),
    )
}

fn engine_with(name: &str, rows: Vec<Vec<Value>>) -> (StorageEngine, Arc<TableDef>) {
    let e = StorageEngine::new();
    let t = table(name);
    e.create_table(Arc::clone(&t)).unwrap();
    e.insert(name, rows).unwrap();
    (e, t)
}

#[test]
fn operators_over_empty_tables() {
    let (e, t) = engine_with("t", vec![]);
    let scan = LogicalPlan::scan(Arc::clone(&t));
    // Filter, project, sort, distinct, limit over empty input.
    let plan = LogicalPlan::limit(
        LogicalPlan::distinct(
            LogicalPlan::sort(
                LogicalPlan::project(
                    LogicalPlan::filter(scan, Expr::col(0).binary(BinOp::Gt, Expr::int(0)))
                        .unwrap(),
                    vec![(Expr::col(0), "k".into())],
                )
                .unwrap(),
                vec![SortKey::asc(0)],
            )
            .unwrap(),
        ),
        0,
        Some(10),
    );
    assert_eq!(execute(&plan, &e).unwrap().num_rows(), 0);
    // Join of two empties.
    let j = LogicalPlan::left_join(
        LogicalPlan::scan(Arc::clone(&t)),
        LogicalPlan::scan(t),
        vec![(0, 0)],
    )
    .unwrap();
    assert_eq!(execute(&j, &e).unwrap().num_rows(), 0);
}

#[test]
fn null_join_keys_never_match() {
    let e = StorageEngine::new();
    let t = Arc::new(
        TableBuilder::new("n")
            .column("k", SqlType::Int, true)
            .column("v", SqlType::Int, false)
            .build()
            .unwrap(),
    );
    e.create_table(Arc::clone(&t)).unwrap();
    e.insert(
        "n",
        vec![
            vec![Value::Null, Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Null, Value::Int(3)],
        ],
    )
    .unwrap();
    // Inner self-join on the nullable key: NULLs match nothing.
    let inner = LogicalPlan::inner_join(
        LogicalPlan::scan(Arc::clone(&t)),
        LogicalPlan::scan(Arc::clone(&t)),
        vec![(0, 0)],
    )
    .unwrap();
    assert_eq!(execute(&inner, &e).unwrap().num_rows(), 1, "only k=1 matches itself");
    // Left outer: NULL-keyed left rows survive, NULL-padded.
    let outer = LogicalPlan::left_join(
        LogicalPlan::scan(Arc::clone(&t)),
        LogicalPlan::scan(t),
        vec![(0, 0)],
    )
    .unwrap();
    let out = execute(&outer, &e).unwrap();
    assert_eq!(out.num_rows(), 3);
    let padded = out.to_rows().iter().filter(|r| r[2].is_null() && r[3].is_null()).count();
    assert_eq!(padded, 2);
}

#[test]
fn limit_offset_beyond_input() {
    let (e, t) = engine_with("t", vec![vec![Value::Int(1), Value::Int(10)]]);
    let plan = LogicalPlan::limit(LogicalPlan::scan(Arc::clone(&t)), 5, Some(10));
    assert_eq!(execute(&plan, &e).unwrap().num_rows(), 0);
    let plan = LogicalPlan::limit(LogicalPlan::scan(t), 0, Some(0));
    assert_eq!(execute(&plan, &e).unwrap().num_rows(), 0);
}

#[test]
fn union_coerces_int_into_decimal() {
    let e = StorageEngine::new();
    let ints = table("ints");
    let decs = Arc::new(
        TableBuilder::new("decs")
            .column("k", SqlType::Int, false)
            .column("v", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["k"])
            .build()
            .unwrap(),
    );
    e.create_table(Arc::clone(&ints)).unwrap();
    e.create_table(Arc::clone(&decs)).unwrap();
    e.insert("ints", vec![vec![Value::Int(1), Value::Int(7)]]).unwrap();
    e.insert("decs", vec![vec![Value::Int(2), Value::Dec("1.25".parse().unwrap())]]).unwrap();
    let u = LogicalPlan::union_all(vec![LogicalPlan::scan(ints), LogicalPlan::scan(decs)]).unwrap();
    assert_eq!(u.schema().field(1).ty, SqlType::Decimal { scale: 2 });
    let out = execute(&u, &e).unwrap();
    assert_eq!(out.num_rows(), 2);
    let mut vals: Vec<String> = out.to_rows().iter().map(|r| r[1].to_string()).collect();
    vals.sort();
    assert_eq!(vals, vec!["1.25".to_string(), "7.00".to_string()]);
}

#[test]
fn distinct_treats_nulls_as_equal() {
    let e = StorageEngine::new();
    let t = Arc::new(TableBuilder::new("d").column("v", SqlType::Int, true).build().unwrap());
    e.create_table(Arc::clone(&t)).unwrap();
    e.insert(
        "d",
        vec![vec![Value::Null], vec![Value::Null], vec![Value::Int(1)], vec![Value::Int(1)]],
    )
    .unwrap();
    let plan = LogicalPlan::distinct(LogicalPlan::scan(t));
    assert_eq!(execute(&plan, &e).unwrap().num_rows(), 2);
}

#[test]
fn group_by_nullable_key_forms_null_group() {
    let e = StorageEngine::new();
    let t = Arc::new(
        TableBuilder::new("g")
            .column("grp", SqlType::Int, true)
            .column("v", SqlType::Int, false)
            .build()
            .unwrap(),
    );
    e.create_table(Arc::clone(&t)).unwrap();
    e.insert(
        "g",
        vec![
            vec![Value::Null, Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(7), Value::Int(3)],
        ],
    )
    .unwrap();
    let plan = LogicalPlan::aggregate(
        LogicalPlan::scan(t),
        vec![(Expr::col(0), "g".into())],
        vec![(AggExpr::new(AggFunc::Sum, Expr::col(1)), "s".into())],
    )
    .unwrap();
    let mut rows = execute(&plan, &e).unwrap().to_rows();
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Value::Null, Value::Int(3)], "NULLs group together");
    assert_eq!(rows[1], vec![Value::Int(7), Value::Int(3)]);
}

#[test]
fn sort_null_placement_follows_keys() {
    let e = StorageEngine::new();
    let t = Arc::new(TableBuilder::new("s").column("v", SqlType::Int, true).build().unwrap());
    e.create_table(Arc::clone(&t)).unwrap();
    e.insert("s", vec![vec![Value::Int(2)], vec![Value::Null], vec![Value::Int(1)]]).unwrap();
    let asc = LogicalPlan::sort(LogicalPlan::scan(Arc::clone(&t)), vec![SortKey::asc(0)]).unwrap();
    let rows = execute(&asc, &e).unwrap().to_rows();
    assert!(rows[0][0].is_null(), "ASC places NULLs first: {rows:?}");
    let desc = LogicalPlan::sort(LogicalPlan::scan(t), vec![SortKey::desc(0)]).unwrap();
    let rows = execute(&desc, &e).unwrap().to_rows();
    assert!(rows[2][0].is_null(), "DESC places NULLs last: {rows:?}");
}

#[test]
fn budgeted_execution_matches_full_execution() {
    let rows: Vec<Vec<Value>> = (0..500).map(|i| vec![Value::Int(i), Value::Int(i % 13)]).collect();
    let (e, t) = engine_with("big", rows);
    // Limit over union over projected scans: the budgeted path covers all.
    let mk = || {
        LogicalPlan::project(
            LogicalPlan::scan(Arc::clone(&t)),
            vec![(Expr::col(0), "k".into()), (Expr::col(1), "v".into())],
        )
        .unwrap()
    };
    let u = LogicalPlan::union_all(vec![mk(), mk()]).unwrap();
    let plan = LogicalPlan::limit(u, 3, Some(7));
    let (batch, metrics) = execute_at(&plan, &e, e.snapshot()).unwrap();
    assert_eq!(batch.num_rows(), 7);
    assert!(
        metrics.rows_scanned <= 10,
        "budgeted execution must not scan the full table: {metrics:?}"
    );
    // A filter below the limit disables the scan shortcut but stays correct.
    let f = LogicalPlan::filter(LogicalPlan::scan(Arc::clone(&t)), Expr::col(1).eq(Expr::int(3)))
        .unwrap();
    let plan = LogicalPlan::limit(f, 0, Some(5));
    let (batch, _) = execute_at(&plan, &e, e.snapshot()).unwrap();
    assert_eq!(batch.num_rows(), 5);
    for row in batch.to_rows() {
        assert_eq!(row[1], Value::Int(3));
    }
}

#[test]
fn values_node_executes() {
    let e = StorageEngine::new();
    let schema = Schema::new(vec![vdm_types::Field::new("x", SqlType::Int, false)]);
    let plan: PlanRef =
        LogicalPlan::values(schema, vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
    assert_eq!(execute(&plan, &e).unwrap().num_rows(), 2);
    let limited = LogicalPlan::limit(plan, 0, Some(1));
    assert_eq!(execute(&limited, &e).unwrap().num_rows(), 1);
}

#[test]
fn join_kind_residual_combinations() {
    let (e, t) = engine_with(
        "t",
        vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(20)]],
    );
    // Inner join with a residual that rejects everything.
    let j = LogicalPlan::join(
        LogicalPlan::scan(Arc::clone(&t)),
        LogicalPlan::scan(Arc::clone(&t)),
        JoinKind::Inner,
        vec![(0, 0)],
        Some(Expr::col(1).binary(BinOp::Gt, Expr::int(100))),
        None,
        false,
    )
    .unwrap();
    assert_eq!(execute(&j, &e).unwrap().num_rows(), 0);
    // Left outer with the same residual: all rows survive, padded.
    let j = LogicalPlan::join(
        LogicalPlan::scan(Arc::clone(&t)),
        LogicalPlan::scan(t),
        JoinKind::LeftOuter,
        vec![(0, 0)],
        Some(Expr::col(1).binary(BinOp::Gt, Expr::int(100))),
        None,
        false,
    )
    .unwrap();
    let out = execute(&j, &e).unwrap();
    assert_eq!(out.num_rows(), 2);
    assert!(out.to_rows().iter().all(|r| r[2].is_null()));
}

#[test]
fn adaptive_inner_join_build_side_agrees() {
    // Small left, big right: the adaptive path builds on the left; the
    // left-outer variant of the same join builds on the right. Their inner
    // rows must agree.
    let e = StorageEngine::new();
    let small = table("small");
    let big = table("big2");
    e.create_table(Arc::clone(&small)).unwrap();
    e.create_table(Arc::clone(&big)).unwrap();
    e.insert("small", (0..5).map(|i| vec![Value::Int(i), Value::Int(i)]).collect()).unwrap();
    e.insert("big2", (0..200).map(|i| vec![Value::Int(i), Value::Int(i % 5)]).collect()).unwrap();
    let inner = LogicalPlan::inner_join(
        LogicalPlan::scan(Arc::clone(&small)),
        LogicalPlan::scan(Arc::clone(&big)),
        vec![(0, 1)],
    )
    .unwrap();
    let outer =
        LogicalPlan::left_join(LogicalPlan::scan(small), LogicalPlan::scan(big), vec![(0, 1)])
            .unwrap();
    let mut inner_rows = execute(&inner, &e).unwrap().to_rows();
    let mut outer_rows: Vec<Vec<Value>> =
        execute(&outer, &e).unwrap().to_rows().into_iter().filter(|r| !r[2].is_null()).collect();
    let sort = |rows: &mut Vec<Vec<Value>>| {
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let c = x.total_cmp(y);
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        })
    };
    sort(&mut inner_rows);
    sort(&mut outer_rows);
    assert_eq!(inner_rows.len(), 200, "every big row matches one small row");
    assert_eq!(inner_rows, outer_rows);
}
