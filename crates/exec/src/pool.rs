//! A persistent worker pool for the morsel scheduler.
//!
//! [`run_with`](crate::scheduler::run_with) normally spins up scoped
//! threads per call — fine for one-shot queries, wasteful for a serving
//! layer fielding thousands of short queries per second. A [`WorkerPool`]
//! keeps its threads parked between queries; the serving layer installs it
//! for the duration of a query via [`with_worker_pool`], and the scheduler
//! then dispatches its worker roles onto the pool instead of spawning.
//!
//! # Dispatch contract
//!
//! [`WorkerPool::broadcast`] runs `f(0)` on the *calling* thread and ships
//! roles `1..roles` to pool threads. The borrow of `f` (and everything it
//! captures from the caller's stack) is erased to a raw pointer so it can
//! cross into the long-lived pool threads; soundness comes from the
//! completion latch: `broadcast` does not return until every shipped role
//! has either finished or been cancelled before starting, so the erased
//! borrow never outlives the frame it points into. Roles still queued when
//! the caller's own role completes are cancelled — the work-stealing
//! scheduler's queues are drained collectively, so a role that never runs
//! leaves no work behind (monotone-empty queues), and cancelling keeps tail
//! latency tight when the pool is saturated by other queries.
//!
//! Panics on a pool thread are caught, the latch is still released, and the
//! panic is re-raised on the calling thread after the wait — identical to
//! what `std::thread::scope` would do.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One broadcast in flight: the erased role closure plus its latch.
struct Run {
    /// Borrow of the caller's closure with the lifetime erased. Valid until
    /// the latch releases (`pending == 0`), which `broadcast` awaits before
    /// returning.
    f: *const (dyn Fn(usize) + Sync),
    /// Roles shipped to the pool that have not yet finished or been
    /// cancelled.
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

// SAFETY: `f` is only dereferenced while `broadcast` blocks on the latch,
// so the pointee is live; the pointee is `Sync`, so calling it from several
// pool threads at once is allowed.
unsafe impl Send for Run {}
unsafe impl Sync for Run {}

struct Task {
    run: Arc<Run>,
    role: usize,
}

struct PoolInner {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Joins the pool threads when the last external [`WorkerPool`] handle
/// drops. Separate from [`PoolInner`] because the worker threads themselves
/// keep `PoolInner` alive.
struct JoinGuard {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for JoinGuard {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// A fixed-size pool of parked worker threads shared by every query a
/// serving layer executes. Cloning is cheap (one `Arc`); the threads exit
/// when the last clone drops.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    _guard: Arc<JoinGuard>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` parked threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            let h = std::thread::Builder::new()
                .name(format!("vdm-pool-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
            handles.push(h);
        }
        WorkerPool {
            _guard: Arc::new(JoinGuard { inner: Arc::clone(&inner), handles: Mutex::new(handles) }),
            inner,
            workers,
        }
    }

    /// Number of pool threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(role)` for every role in `0..roles`: role 0 inline on the
    /// calling thread, the rest on pool threads. Returns once every role
    /// has finished or was cancelled before starting (see module docs for
    /// why cancellation is sound for the morsel scheduler).
    pub fn broadcast(&self, roles: usize, f: &(dyn Fn(usize) + Sync)) {
        if roles <= 1 {
            f(0);
            return;
        }
        // Erase the borrow's lifetime; the latch below keeps it sound.
        #[allow(clippy::missing_transmute_annotations)]
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
        let run = Arc::new(Run {
            f: erased,
            pending: Mutex::new(roles - 1),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        {
            let mut q = self.inner.queue.lock().unwrap();
            for role in 1..roles {
                q.push_back(Task { run: Arc::clone(&run), role });
            }
        }
        self.inner.available.notify_all();

        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));

        // Our role is done: anything of ours still queued can only hold
        // already-drained queues — cancel it rather than wait for a slot.
        let cancelled = {
            let mut q = self.inner.queue.lock().unwrap();
            let before = q.len();
            q.retain(|t| !Arc::ptr_eq(&t.run, &run));
            before - q.len()
        };
        let mut pending = run.pending.lock().unwrap();
        *pending -= cancelled;
        while *pending > 0 {
            pending = run.done.wait(pending).unwrap();
        }
        drop(pending);

        if let Err(p) = caller {
            resume_unwind(p);
        }
        if run.panicked.load(Ordering::SeqCst) {
            panic!("worker pool task panicked");
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let task = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.available.wait(q).unwrap();
            }
        };
        // SAFETY: the originating `broadcast` is blocked on this run's
        // latch, so the closure (and the stack it borrows) is live.
        let f = unsafe { &*task.run.f };
        let res = catch_unwind(AssertUnwindSafe(|| f(task.role)));
        if res.is_err() {
            task.run.panicked.store(true, Ordering::SeqCst);
        }
        let mut pending = task.run.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            task.run.done.notify_all();
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<WorkerPool>> = const { RefCell::new(None) };
}

/// Installs `pool` as the scheduler's dispatch target for the duration of
/// `f` on this thread. Nested installs restore the previous pool on exit.
/// Pool worker threads never have a pool installed, so scheduler calls
/// made *from* pool tasks fall back to scoped threads (no re-entrancy).
pub fn with_worker_pool<R>(pool: &WorkerPool, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(pool.clone()));
    struct Restore(Option<WorkerPool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The pool installed on this thread, if any.
pub fn current_worker_pool() -> Option<WorkerPool> {
    CURRENT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broadcast_runs_every_role() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(4, &|role| {
            hits[role].fetch_add(1, Ordering::SeqCst);
        });
        // Role 0 always runs on the caller; shipped roles run unless
        // cancelled after the caller finished (here the caller is instant,
        // so some helpers may be cancelled — but role 0 is guaranteed).
        assert_eq!(hits[0].load(Ordering::SeqCst), 1);
        let total: usize = hits.iter().map(|h| h.load(Ordering::SeqCst)).sum();
        assert!((1..=4).contains(&total), "no role may run twice: {total}");
    }

    #[test]
    fn broadcast_waits_for_started_helpers() {
        let pool = WorkerPool::new(2);
        let sum = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.broadcast(3, &|role| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                sum.fetch_add(role + 1, Ordering::SeqCst);
            });
        }
        // Every *started* role completed before broadcast returned; the
        // caller role alone contributes 50.
        assert!(sum.load(Ordering::SeqCst) >= 50);
    }

    #[test]
    fn pool_panics_propagate() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(2, &|role| {
                if role == 1 {
                    // Give the caller time to reach the latch so the role
                    // is started, not cancelled.
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                if role == 1 {
                    panic!("boom");
                }
            });
        }));
        // Either the helper started and panicked (propagated) or it was
        // cancelled (no panic) — both are sound; but with the sleep the
        // helper reliably starts.
        if caught.is_err() {
            // expected path
        }
        // The pool must stay usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.broadcast(2, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert!(ok.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn with_worker_pool_installs_and_restores() {
        assert!(current_worker_pool().is_none());
        let pool = WorkerPool::new(1);
        with_worker_pool(&pool, || {
            assert!(current_worker_pool().is_some());
            let inner = WorkerPool::new(1);
            with_worker_pool(&inner, || {
                assert_eq!(current_worker_pool().unwrap().workers(), 1);
            });
            assert!(current_worker_pool().is_some());
        });
        assert!(current_worker_pool().is_none());
    }
}
