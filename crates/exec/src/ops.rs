//! Physical operator implementations.

use std::collections::HashMap;
use std::sync::Arc;
use vdm_expr::{AggExpr, Expr};
use vdm_plan::{JoinKind, SortKey};
use vdm_storage::Batch;
use vdm_types::{Result, Schema, Value};

/// Projection: evaluates `exprs` per row.
pub fn project(input: &Batch, exprs: &[(Expr, String)], schema: Arc<Schema>) -> Result<Batch> {
    let mut rows = Vec::with_capacity(input.num_rows());
    for i in 0..input.num_rows() {
        let row = input.row(i);
        let mut out = Vec::with_capacity(exprs.len());
        for (e, _) in exprs {
            out.push(e.eval_row(&row)?);
        }
        rows.push(out);
    }
    Batch::from_rows(schema, &rows)
}

/// Filter: keeps rows where the predicate is TRUE.
pub fn filter(input: &Batch, predicate: &Expr) -> Result<Batch> {
    let mut keep = Vec::new();
    for i in 0..input.num_rows() {
        let row = input.row(i);
        if predicate.eval_row(&row)?.as_bool()? == Some(true) {
            keep.push(i);
        }
    }
    Ok(input.take(&keep))
}

/// Hash join: builds on the right input, probes with the left.
///
/// NULL join keys never match (SQL equi-join semantics). For left-outer
/// joins, a left row whose matches all fail the residual filter is still
/// emitted once, NULL-padded.
pub fn hash_join(
    left: &Batch,
    right: &Batch,
    kind: JoinKind,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    schema: Arc<Schema>,
) -> Result<Batch> {
    // Adaptive build side: an inner equi-join commutes, so build the hash
    // table on the smaller input (the economics the paper points at when
    // discussing limit pushdown, §4.4).
    if kind == JoinKind::Inner && residual.is_none() && left.num_rows() < right.num_rows() {
        return hash_join_build_left(left, right, on, schema);
    }
    // Build phase.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.num_rows());
    'build: for i in 0..right.num_rows() {
        let mut key = Vec::with_capacity(on.len());
        for &(_, rc) in on {
            let v = right.columns[rc].get(i);
            if v.is_null() {
                continue 'build;
            }
            key.push(v);
        }
        table.entry(key).or_default().push(i);
    }
    // Probe phase.
    let right_width = right.schema.len();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for i in 0..left.num_rows() {
        let left_row = left.row(i);
        let mut key = Vec::with_capacity(on.len());
        let mut null_key = false;
        for &(lc, _) in on {
            let v = left_row[lc].clone();
            if v.is_null() {
                null_key = true;
                break;
            }
            key.push(v);
        }
        let matches = if null_key { None } else { table.get(&key) };
        let mut emitted = false;
        if let Some(matches) = matches {
            for &ri in matches {
                let mut combined = left_row.clone();
                combined.extend(right.row(ri));
                let pass = match residual {
                    Some(f) => f.eval_row(&combined)?.as_bool()? == Some(true),
                    None => true,
                };
                if pass {
                    rows.push(combined);
                    emitted = true;
                }
            }
        }
        if !emitted && kind == JoinKind::LeftOuter {
            let mut combined = left_row;
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            rows.push(combined);
        }
    }
    Batch::from_rows(schema, &rows)
}

/// Inner join building on the (smaller) left input, probing with the
/// right; output column order stays `left ++ right`.
fn hash_join_build_left(
    left: &Batch,
    right: &Batch,
    on: &[(usize, usize)],
    schema: Arc<Schema>,
) -> Result<Batch> {
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(left.num_rows());
    'build: for i in 0..left.num_rows() {
        let mut key = Vec::with_capacity(on.len());
        for &(lc, _) in on {
            let v = left.columns[lc].get(i);
            if v.is_null() {
                continue 'build;
            }
            key.push(v);
        }
        table.entry(key).or_default().push(i);
    }
    let mut rows: Vec<Vec<Value>> = Vec::new();
    'probe: for j in 0..right.num_rows() {
        let right_row = right.row(j);
        let mut key = Vec::with_capacity(on.len());
        for &(_, rc) in on {
            let v = right_row[rc].clone();
            if v.is_null() {
                continue 'probe;
            }
            key.push(v);
        }
        if let Some(matches) = table.get(&key) {
            for &li in matches {
                let mut combined = left.row(li);
                combined.extend(right_row.iter().cloned());
                rows.push(combined);
            }
        }
    }
    Batch::from_rows(schema, &rows)
}

/// Hash aggregation. With no group keys, emits exactly one row even over
/// empty input.
pub fn aggregate(
    input: &Batch,
    group_by: &[(Expr, String)],
    aggs: &[(AggExpr, String)],
    schema: Arc<Schema>,
) -> Result<Batch> {
    // Group order: first-seen, for deterministic output.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut states: Vec<Vec<vdm_expr::Accumulator>> = Vec::new();
    if group_by.is_empty() {
        groups.insert(Vec::new(), 0);
        order.push(Vec::new());
        states.push(aggs.iter().map(|(a, _)| a.accumulator()).collect());
    }
    for i in 0..input.num_rows() {
        let row = input.row(i);
        let mut key = Vec::with_capacity(group_by.len());
        for (e, _) in group_by {
            key.push(e.eval_row(&row)?);
        }
        let slot = match groups.get(&key) {
            Some(&s) => s,
            None => {
                let s = order.len();
                groups.insert(key.clone(), s);
                order.push(key);
                states.push(aggs.iter().map(|(a, _)| a.accumulator()).collect());
                s
            }
        };
        for (j, (agg, _)) in aggs.iter().enumerate() {
            let v = match &agg.arg {
                Some(a) => a.eval_row(&row)?,
                None => Value::Int(1), // COUNT(*) placeholder
            };
            states[slot][j].update(&v)?;
        }
    }
    let mut rows = Vec::with_capacity(order.len());
    for (key, accs) in order.into_iter().zip(states.iter()) {
        let mut row = key;
        for acc in accs {
            row.push(acc.finish()?);
        }
        rows.push(row);
    }
    Batch::from_rows(schema, &rows)
}

/// Duplicate elimination over all columns (first occurrence wins).
pub fn distinct(input: &Batch) -> Result<Batch> {
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    let mut keep = Vec::new();
    for i in 0..input.num_rows() {
        if seen.insert(input.row(i)) {
            keep.push(i);
        }
    }
    Ok(input.take(&keep))
}

/// Stable sort by `keys` (NULL placement per key spec).
pub fn sort(input: &Batch, keys: &[SortKey]) -> Result<Batch> {
    // Precompute key values per row.
    let mut key_vals: Vec<Vec<Value>> = Vec::with_capacity(input.num_rows());
    for i in 0..input.num_rows() {
        let row = input.row(i);
        let mut ks = Vec::with_capacity(keys.len());
        for k in keys {
            ks.push(k.expr.eval_row(&row)?);
        }
        key_vals.push(ks);
    }
    let mut indices: Vec<usize> = (0..input.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for (ki, k) in keys.iter().enumerate() {
            let va = &key_vals[a][ki];
            let vb = &key_vals[b][ki];
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => {
                    if k.nulls_first {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }
                (false, true) => {
                    if k.nulls_first {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Less
                    }
                }
                (false, false) => {
                    let c = va.total_cmp_non_null(vb);
                    if k.asc {
                        c
                    } else {
                        c.reverse()
                    }
                }
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(input.take(&indices))
}

/// LIMIT/OFFSET.
pub fn limit(input: &Batch, skip: u64, fetch: Option<u64>) -> Batch {
    let start = (skip as usize).min(input.num_rows());
    let end = match fetch {
        Some(f) => (start + f as usize).min(input.num_rows()),
        None => input.num_rows(),
    };
    let indices: Vec<usize> = (start..end).collect();
    input.take(&indices)
}
