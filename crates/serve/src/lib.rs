//! `vdm-serve`: the concurrent multi-session serving layer.
//!
//! A paper-shaped VDM deployment is many ERP users paging through the same
//! browser views at once — the same handful of statement *shapes*, re-run
//! with different parameter values, from hundreds of sessions. This crate
//! turns the single-owner [`vdm_core::Database`] facade into a
//! shared [`Server`] that serves that workload:
//!
//! * **Sessions** ([`Server::session`]) are lightweight `Send` handles;
//!   any number can run queries concurrently from their own threads.
//! * **Bind-time state** ([`DbState`]) sits behind one `RwLock`: SELECTs
//!   take the read lock only long enough to resolve a plan, DDL and
//!   profile switches take the write lock. Execution happens entirely
//!   outside the lock, so a long scan never blocks a CREATE TABLE behind
//!   it longer than its own bind.
//! * **Plan cache**: optimized parameterized plans are shared across
//!   sessions through the version-stamped [`PlanCache`] living in
//!   `vdm-core` — this crate never invokes the optimizer itself (a CI
//!   gate enforces it); on a cache miss the core query path optimizes and
//!   fills the cache.
//! * **One worker pool**: all sessions execute on a single long-lived
//!   [`WorkerPool`] instead of spawning scoped threads per query, keeping
//!   thread counts flat at high session counts.
//!
//! Prepared statements ([`Session::prepare`]) parse once and pin the
//! statement's canonical shape; each [`Prepared::execute`] is a plan-cache
//! lookup plus parameter substitution. The number of open prepared
//! statements is exported as the `vdm_prepared_statements_open` gauge.
//!
//! **Saturation observability**: every SELECT increments the
//! `vdm_inflight_queries` gauge for its lifetime and records the time
//! between admission (entering the serve layer) and execution start in the
//! `vdm_queue_wait_seconds` histogram; open sessions are counted by
//! `vdm_sessions_open`, and per-session query volumes by
//! `vdm_session_queries_total{session="N"}`. Every query runs under a
//! trace root, so [`Server::last_trace`] (or
//! [`Session::with_trace`], which forces tracing and scoops multiple
//! statements into one causal tree) yields the span tree covering
//! plan-cache lookup, bind, execution, and any cached-view maintenance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use vdm_cache::{CacheMode, CachedView, MaintainOutcome, ViewCache};
use vdm_core::{
    execute_select, explain_analyze_bound, Database, DbState, PlanCache, ResolvedPlan,
    StatementResult,
};
use vdm_exec::{with_worker_pool, ParallelConfig, WorkerPool};
use vdm_obs::registry::{self, MetricsRegistry};
use vdm_obs::{names, trace as qtrace, QueryTrace};
use vdm_optimizer::Profile;
use vdm_sql::{SelectStmt, Statement};
use vdm_storage::{Batch, StorageEngine};
use vdm_types::{Result, Value, VdmError};

/// Tuning knobs for [`Server`] construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfig {
    /// Worker-pool threads shared by all sessions. `0` means "use the
    /// executor's configured thread count" (which itself defaults to the
    /// available cores).
    pub pool_threads: usize,
}

/// Everything the sessions share. Lock granularity is the whole design:
/// `state` guards only what bind/optimize reads; the engine, plan cache,
/// and cached-view registry are internally synchronized and never sit
/// behind the state lock.
struct Shared {
    state: RwLock<DbState>,
    engine: StorageEngine,
    views: ViewCache,
    plan_cache: PlanCache,
    parallel: Mutex<ParallelConfig>,
    pool: WorkerPool,
    next_session: AtomicU64,
    last_trace: Mutex<Option<QueryTrace>>,
}

/// RAII decrement for the in-flight query gauge (covers error paths).
struct Inflight;

impl Inflight {
    fn enter() -> Inflight {
        MetricsRegistry::global().gauge_add(names::INFLIGHT_QUERIES, 1);
        Inflight
    }
}

impl Drop for Inflight {
    fn drop(&mut self) {
        MetricsRegistry::global().gauge_add(names::INFLIGHT_QUERIES, -1);
    }
}

impl Shared {
    fn parallel(&self) -> ParallelConfig {
        *self.parallel.lock().unwrap()
    }

    /// Resolves a SELECT's optimized plan under the state *read* lock —
    /// cache hit or core-side bind+optimize — and releases the lock
    /// before returning.
    fn resolve(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<ResolvedPlan> {
        let state = self.state.read().unwrap();
        let env = vdm_core::QueryEnv {
            state: &state,
            engine: &self.engine,
            plan_cache: &self.plan_cache,
            parallel: self.parallel(),
        };
        env.select_plan(sel, shape, params)
    }

    /// Stores the finished trace (when this call owned the root) so
    /// [`Server::last_trace`] can replay the most recent query.
    fn finish_root(&self, root: qtrace::RootGuard) {
        if let Some(trace) = root.finish() {
            *self.last_trace.lock().unwrap() = Some(trace);
        }
    }

    /// Plan resolution under the read lock, then lock-free execution on
    /// the shared worker pool. `session` labels per-session counters and
    /// the trace root; [`Prepared`] executions carry their creating
    /// session's id.
    fn run_select(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
        session: Option<u64>,
    ) -> Result<Batch> {
        let reg = MetricsRegistry::global();
        let root = qtrace::root("query");
        if let Some(id) = session {
            qtrace::attr("session", id);
            reg.inc(&registry::label(names::SESSION_QUERIES_TOTAL, "session", &id.to_string()), 1);
        }
        if let Some(s) = shape {
            qtrace::attr("shape", format_args!("{s:?}"));
        }
        let _inflight = Inflight::enter();
        let admitted = Instant::now();
        let parallel = self.parallel();
        let resolved = match self.resolve(sel, shape, params) {
            Ok(r) => r,
            Err(e) => {
                self.finish_root(root);
                return Err(e);
            }
        };
        let result = with_worker_pool(&self.pool, || {
            reg.observe(names::QUEUE_WAIT_SECONDS, admitted.elapsed().as_secs_f64());
            execute_select(&resolved, params, &self.engine, parallel)
        });
        self.finish_root(root);
        result
    }

    fn explain_analyze(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<String> {
        let root = qtrace::root("query");
        if let Some(s) = shape {
            qtrace::attr("shape", format_args!("{s:?}"));
        }
        let _inflight = Inflight::enter();
        let admitted = Instant::now();
        let parallel = self.parallel();
        let resolved = match self.resolve(sel, shape, params) {
            Ok(r) => r,
            Err(e) => {
                self.finish_root(root);
                return Err(e);
            }
        };
        let result = with_worker_pool(&self.pool, || {
            MetricsRegistry::global()
                .observe(names::QUEUE_WAIT_SECONDS, admitted.elapsed().as_secs_f64());
            explain_analyze_bound(&resolved, params, &self.engine, parallel)
        });
        self.finish_root(root);
        result
    }
}

/// A shared, concurrently usable database server. Cheap to clone; all
/// clones (and every [`Session`]) address the same state.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// A fresh, empty server with the given optimizer profile.
    pub fn new(profile: Profile) -> Server {
        Server::from_database(Database::new(profile))
    }

    /// Server with default config over an existing database — the usual
    /// path: load data through the `Database` facade (generators need its
    /// exclusive `&mut` accessors), then convert for serving.
    pub fn from_database(db: Database) -> Server {
        Server::with_config(db, ServeConfig::default())
    }

    /// [`Server::from_database`] with explicit tuning.
    pub fn with_config(db: Database, config: ServeConfig) -> Server {
        let parts = db.into_parts();
        let pool_threads = if config.pool_threads > 0 {
            config.pool_threads
        } else {
            parts.parallel.threads.max(1)
        };
        Server {
            shared: Arc::new(Shared {
                state: RwLock::new(parts.state),
                engine: parts.engine,
                views: parts.views,
                plan_cache: parts.plan_cache,
                parallel: Mutex::new(parts.parallel),
                pool: WorkerPool::new(pool_threads),
                next_session: AtomicU64::new(1),
                last_trace: Mutex::new(None),
            }),
        }
    }

    /// Opens a new session. Open sessions are counted by the
    /// `vdm_sessions_open` gauge.
    pub fn session(&self) -> Session {
        MetricsRegistry::global().gauge_add(names::SESSIONS_OPEN, 1);
        Session {
            shared: Arc::clone(&self.shared),
            id: self.shared.next_session.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The span tree of the most recently traced query, from any session.
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.shared.last_trace.lock().unwrap().clone()
    }

    /// Swaps the optimizer profile for every session. Takes the state
    /// write lock, so it serializes against in-flight binds; plans cached
    /// under other profiles stop matching (the profile fingerprint is part
    /// of the cache key).
    pub fn set_profile(&self, profile: Profile) {
        self.shared.state.write().unwrap().set_profile(profile);
    }

    /// Sets the executor configuration used by subsequent queries.
    pub fn set_parallelism(&self, config: ParallelConfig) {
        *self.shared.parallel.lock().unwrap() = config;
    }

    /// The active executor configuration.
    pub fn parallelism(&self) -> ParallelConfig {
        self.shared.parallel()
    }

    /// The shared plan cache (stats, capacity).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.shared.plan_cache
    }

    /// Storage access (for data loaders and assertions).
    pub fn engine(&self) -> &StorageEngine {
        &self.shared.engine
    }

    /// Creates a cached (materialized) view over a SELECT. The plan is
    /// resolved through the shared query path (and plan cache), then
    /// materialized without holding the state lock.
    pub fn create_cached_view(
        &self,
        name: &str,
        sql: &str,
        mode: CacheMode,
    ) -> Result<Arc<CachedView>> {
        let stmt = vdm_sql::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("create_cached_view() expects a SELECT".into()));
        };
        let shape = vdm_sql::canonical_shape(sql)?;
        let resolved = self.shared.resolve(&sel, Some(&shape), &[])?;
        self.shared.views.register(name, resolved.plan, mode, &self.shared.engine)
    }

    /// Looks up a cached view.
    pub fn cached_view(&self, name: &str) -> Option<Arc<CachedView>> {
        self.shared.views.get(name)
    }

    /// Refreshes every static cached view. Runs outside the state lock;
    /// concurrent readers of those views only block for the `Arc` swap.
    pub fn refresh_cached_views(&self) -> Result<usize> {
        self.shared.views.refresh_all_static(&self.shared.engine)
    }

    /// The process-wide metrics registry.
    pub fn metrics(&self) -> &'static MetricsRegistry {
        MetricsRegistry::global()
    }
}

/// One client's handle on the server: `Send`, cheap, independent. Reads
/// run concurrently with other sessions; DDL serializes on the shared
/// state write lock.
pub struct Session {
    shared: Arc<Shared>,
    id: u64,
}

impl Session {
    /// This session's id (diagnostics only).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Runs a SELECT and returns its rows.
    pub fn query(&self, sql: &str) -> Result<Batch> {
        self.query_with_params(sql, &[])
    }

    /// Runs a parameterized SELECT (`?` / `$1` placeholders) with the
    /// given values.
    pub fn query_with_params(&self, sql: &str, params: &[Value]) -> Result<Batch> {
        let stmt = vdm_sql::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("query() expects a SELECT; use execute()".into()));
        };
        let shape = vdm_sql::canonical_shape(sql)?;
        self.shared.run_select(&sel, Some(&shape), params, Some(self.id))
    }

    /// Runs `f` under a forced trace root named `name`: every statement
    /// the closure executes on this session (queries, cached-view reads,
    /// prepared executions) contributes its spans to one causal tree,
    /// returned alongside the closure's result. Works even when automatic
    /// tracing is disabled.
    pub fn with_trace<R>(
        &self,
        name: &str,
        f: impl FnOnce(&Session) -> R,
    ) -> (R, Option<QueryTrace>) {
        let root = qtrace::root_forced(name);
        let out = f(self);
        let trace = root.finish();
        if let Some(t) = &trace {
            *self.shared.last_trace.lock().unwrap() = Some(t.clone());
        }
        (out, trace)
    }

    /// The span tree of the most recently traced query on this server.
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.shared.last_trace.lock().unwrap().clone()
    }

    /// Executes any single statement. SELECTs go through the concurrent
    /// read path; everything else (DDL, INSERT, EXPLAIN) takes the state
    /// write lock and runs the same statement dispatcher as
    /// `Database::execute`.
    pub fn execute(&self, sql: &str) -> Result<StatementResult> {
        let mut results = self.execute_script(sql)?;
        results.pop().ok_or_else(|| VdmError::Exec("no statement executed".into()))
    }

    /// Executes a `;`-separated script, one result per statement.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<StatementResult>> {
        let stmts = vdm_sql::parse(sql)?;
        let shapes = vdm_sql::canonical_shapes(sql).unwrap_or_default();
        stmts
            .iter()
            .enumerate()
            .map(|(i, stmt)| {
                let shape =
                    if shapes.len() == stmts.len() { Some(shapes[i].as_str()) } else { None };
                self.execute_statement(stmt, shape)
            })
            .collect()
    }

    fn execute_statement(&self, stmt: &Statement, shape: Option<&str>) -> Result<StatementResult> {
        match stmt {
            Statement::Select(sel) => {
                Ok(StatementResult::Rows(self.shared.run_select(sel, shape, &[], Some(self.id))?))
            }
            _ => {
                let parallel = self.shared.parallel();
                let mut state = self.shared.state.write().unwrap();
                vdm_core::run_statement(
                    &mut state,
                    &self.shared.engine,
                    &self.shared.plan_cache,
                    parallel,
                    stmt,
                    shape,
                )
            }
        }
    }

    /// EXPLAIN ANALYZE for a SELECT; the header reports whether the plan
    /// came from the shared cache (`[plan cache: hit|miss]`).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let stmt = vdm_sql::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("explain_analyze() expects a SELECT".into()));
        };
        let shape = vdm_sql::canonical_shape(sql)?;
        self.shared.explain_analyze(&sel, Some(&shape), &[])
    }

    /// Parses and binds a statement once for repeated execution. The
    /// returned handle is independent of this session.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let (stmt, param_count) = vdm_sql::parse_one_with_params(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("prepare() expects a SELECT".into()));
        };
        let shape = vdm_sql::canonical_shape(sql)?;
        MetricsRegistry::global().gauge_add(names::PREPARED_STATEMENTS_OPEN, 1);
        Ok(Prepared {
            shared: Arc::clone(&self.shared),
            select: sel,
            shape,
            param_count,
            session: self.id,
        })
    }

    /// Reads a cached view (SCV: last refresh; DCV: maintained first).
    pub fn read_cached(&self, name: &str) -> Result<Arc<Batch>> {
        let view = self
            .shared
            .views
            .get(name)
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))?;
        view.read(&self.shared.engine)
    }

    /// [`read_cached`](Session::read_cached), also reporting what DCV
    /// maintenance did (`fresh`, `incremental(+N rows)`, `full refresh`).
    pub fn read_cached_with_outcome(&self, name: &str) -> Result<(Arc<Batch>, MaintainOutcome)> {
        let view = self
            .shared
            .views
            .get(name)
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))?;
        view.read_with_outcome(&self.shared.engine)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        MetricsRegistry::global().gauge_add(names::SESSIONS_OPEN, -1);
    }
}

/// A prepared SELECT: parsed once, shape pinned, plan shared through the
/// server's plan cache. Dropping it decrements the
/// `vdm_prepared_statements_open` gauge.
pub struct Prepared {
    shared: Arc<Shared>,
    select: SelectStmt,
    shape: String,
    param_count: usize,
    /// Id of the creating session, for per-session counter attribution.
    session: u64,
}

impl Prepared {
    /// Number of parameter values [`Prepared::execute`] expects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The canonical statement shape used as the plan-cache key.
    pub fn shape(&self) -> &str {
        &self.shape
    }

    /// Executes with the given parameter values.
    pub fn execute(&self, params: &[Value]) -> Result<Batch> {
        self.check_arity(params)?;
        self.shared.run_select(&self.select, Some(&self.shape), params, Some(self.session))
    }

    /// EXPLAIN ANALYZE of one execution with the given parameter values.
    pub fn explain_analyze(&self, params: &[Value]) -> Result<String> {
        self.check_arity(params)?;
        self.shared.explain_analyze(&self.select, Some(&self.shape), params)
    }

    fn check_arity(&self, params: &[Value]) -> Result<()> {
        if params.len() != self.param_count {
            return Err(VdmError::Exec(format!(
                "prepared statement expects {} parameter value(s), got {}",
                self.param_count,
                params.len()
            )));
        }
        Ok(())
    }
}

impl Drop for Prepared {
    fn drop(&mut self) {
        MetricsRegistry::global().gauge_add(names::PREPARED_STATEMENTS_OPEN, -1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        let server = Server::new(Profile::hana());
        let session = server.session();
        session
            .execute_script(
                "create table t (k bigint primary key, v text not null);
                 insert into t values (1, 'one'), (2, 'two'), (3, 'three');",
            )
            .unwrap();
        server
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn send<T: Send>() {}
        fn sync<T: Sync>() {}
        send::<Server>();
        sync::<Server>();
        send::<Session>();
        sync::<Session>();
        send::<Prepared>();
    }

    #[test]
    fn sessions_share_state_and_plans() {
        let server = server();
        let a = server.session();
        let b = server.session();
        assert_ne!(a.id(), b.id());
        let hits_before = server.plan_cache().stats().hits;
        assert_eq!(a.query("select v from t where k = 2").unwrap().num_rows(), 1);
        // Session b re-uses the plan session a optimized.
        assert_eq!(b.query("select v from t where k = 2").unwrap().num_rows(), 1);
        assert_eq!(server.plan_cache().stats().hits, hits_before + 1);
    }

    #[test]
    fn prepared_statements_track_the_open_gauge() {
        let server = server();
        let session = server.session();
        let reg = MetricsRegistry::global();
        let before = reg.gauge(names::PREPARED_STATEMENTS_OPEN);
        let p = session.prepare("select v from t where k = ?").unwrap();
        assert_eq!(reg.gauge(names::PREPARED_STATEMENTS_OPEN), before + 1);
        assert_eq!(p.param_count(), 1);
        let rows = p.execute(&[Value::Int(3)]).unwrap();
        assert_eq!(rows.row(0)[0], Value::str("three"));
        // Wrong arity is rejected before binding.
        assert!(p.execute(&[]).is_err());
        assert!(p.execute(&[Value::Int(1), Value::Int(2)]).is_err());
        drop(p);
        assert_eq!(reg.gauge(names::PREPARED_STATEMENTS_OPEN), before);
    }

    #[test]
    fn ddl_from_one_session_is_visible_to_others() {
        let server = server();
        let a = server.session();
        let b = server.session();
        a.execute("create table u (k bigint primary key)").unwrap();
        b.execute("insert into u values (7)").unwrap();
        assert_eq!(a.query("select k from u").unwrap().num_rows(), 1);
        a.execute("drop table u").unwrap();
        assert!(b.query("select k from u").is_err());
    }

    #[test]
    fn cached_views_through_the_server() {
        let server = server();
        let session = server.session();
        server.create_cached_view("tv", "select k from t where k >= 2", CacheMode::Static).unwrap();
        assert_eq!(session.read_cached("tv").unwrap().num_rows(), 2);
        session.execute("insert into t values (9, 'nine')").unwrap();
        assert_eq!(session.read_cached("tv").unwrap().num_rows(), 2, "SCV stale");
        assert_eq!(server.refresh_cached_views().unwrap(), 1);
        assert_eq!(session.read_cached("tv").unwrap().num_rows(), 3);
    }
}
