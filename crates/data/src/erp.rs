//! Synthetic S/4HANA-like ERP schema and the `journal_entry_item_browser`
//! consumption view (the paper's motivating example, §3).
//!
//! The real `JournalEntryItemBrowser` is proprietary; the paper publishes
//! its complexity profile, which fully determines the plan shape we must
//! reproduce: **47 table instances** (62 when shared subtrees are counted
//! per reference), **49 joins**, one **five-way UNION ALL**, one **GROUP
//! BY**, one **DISTINCT**, an ACDOCA-centric three-way interface join,
//! **30 many-to-one left-outer augmentation joins**, and record-wise DAC
//! over the supplier (`lfa1`) and customer (`kna1`) joins.
//!
//! Structure used here (verified exactly by tests):
//!
//! * interface view: `acdoca ⋈ t001 ⋈ t881` (inner, declared
//!   many-to-exact-one — company and ledger always exist);
//! * a **shared country view** `G = t005 ⟕ t005t ⟕ t005u` (3 scans,
//!   2 joins) referenced by 5 dimension views — the DAG sharing that makes
//!   47 instances become 62 references;
//! * 30 augmenters: supplier (`lfa1 ⟕ G`, DAC), customer (`kna1 ⟕ G`,
//!   DAC), a 5-way business-partner UNION ALL (Fig. 11c), a per-document
//!   GROUP BY aggregate, a DISTINCT existence dim, 3 country dims
//!   (`⟕ G`), 4 text-joined dims, 3 three-level nested dims, 12 simple
//!   dims, and 3 dims re-using another dim's scan (more sharing).

use std::collections::HashMap;
use std::sync::Arc;
use vdm_catalog::{Catalog, TableBuilder, TableDef};
use vdm_expr::Expr;
use vdm_model::{AccessPolicy, DacRule};
use vdm_plan::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef};
use vdm_storage::StorageEngine;
use vdm_types::{Decimal, Result, SqlType, Value, VdmError};

/// ERP generator configuration.
#[derive(Debug, Clone)]
pub struct Erp {
    /// Universal-journal line items to generate.
    pub journal_rows: usize,
    pub seed: u64,
}

impl Default for Erp {
    fn default() -> Self {
        Erp { journal_rows: 20_000, seed: 4711 }
    }
}

/// Handle to the created schema.
#[derive(Debug, Clone)]
pub struct ErpSchema {
    tables: HashMap<String, Arc<TableDef>>,
}

impl ErpSchema {
    /// Looks up a table definition.
    pub fn table(&self, name: &str) -> Arc<TableDef> {
        Arc::clone(self.tables.get(name).unwrap_or_else(|| panic!("missing ERP table {name}")))
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Cardinalities of the dimension tables.
const N_COMPANY: i64 = 20;
const N_LEDGER: i64 = 4;
const N_COUNTRY: i64 = 40;
const N_SUPPLIER: i64 = 400;
const N_CUSTOMER: i64 = 600;
const N_PARTNER_PER_ROLE: i64 = 120;
const N_GENERIC_DIM: i64 = 60;
const N_DOCS: i64 = 2_500;

/// Simple single-table dimensions: (table, acdoca key column).
const SIMPLE_DIMS: &[(&str, &str)] = &[
    ("tcurc", "rtcur"),
    ("t003", "blart"),
    ("usr02", "usnam"),
    ("fagl_segm", "segment"),
    ("tgsb", "gsber"),
    ("t007a", "mwskz"),
    ("t042z", "zlsch"),
    ("t052", "zterm"),
    ("t880", "vbund"),
    ("t047", "mahns"),
    ("tbsl", "bschl"),
    ("t856", "rmvct"),
];
/// Dims re-using another simple dim's scan (extra shared references):
/// (shared table, acdoca key column).
const DUP_DIMS: &[(&str, &str)] =
    &[("usr02", "usnam2"), ("tcurc", "hwaer"), ("fagl_segm", "psegment")];
/// Text-joined dims: (base, texts, acdoca key column).
const TEXT_DIMS: &[(&str, &str, &str)] = &[
    ("ska1", "skat", "racct"),
    ("csks", "cskt", "kostl"),
    ("cepc", "cepct", "prctr"),
    ("mara", "makt", "matnr"),
];
/// Three-level nested dims: (base, texts, groups, acdoca key column).
const NESTED_DIMS: &[(&str, &str, &str, &str)] = &[
    ("aufk", "aufkt", "auart_grp", "aufnr"),
    ("prps", "prpst", "prps_grp", "pspnr"),
    ("anla", "anlat", "anla_grp", "anln1"),
];
/// Country dims (base ⟕ shared country view): (base, acdoca key column).
const COUNTRY_DIMS: &[(&str, &str)] = &[("t001w", "werks"), ("t012", "bankl"), ("twlad", "site")];
/// The five business-partner role tables (Fig. 11c union).
const PARTNER_ROLES: &[&str] = &["bp_soldto", "bp_shipto", "bp_billto", "bp_payer", "bp_contact"];

impl Erp {
    /// Creates every table in catalog + storage.
    pub fn create_schema(
        &self,
        catalog: &mut Catalog,
        engine: &StorageEngine,
    ) -> Result<ErpSchema> {
        let mut tables = HashMap::new();
        let mut mk = |catalog: &mut Catalog, def: TableDef| -> Result<()> {
            let name = def.name.clone();
            let arc = catalog.create_table(def)?;
            engine.create_table(Arc::clone(&arc))?;
            tables.insert(name, arc);
            Ok(())
        };

        // The universal journal.
        let mut acdoca = TableBuilder::new("acdoca")
            .column("rldnr", SqlType::Int, false)
            .column("rbukrs", SqlType::Int, false)
            .column("gjahr", SqlType::Int, false)
            .column("belnr", SqlType::Int, false)
            .column("docln", SqlType::Int, false)
            // Measures.
            .column("hsl", SqlType::Decimal { scale: 2 }, false)
            .column("ksl", SqlType::Decimal { scale: 2 }, false)
            .column("msl", SqlType::Decimal { scale: 3 }, false)
            .column("drcrk", SqlType::Text, false)
            .column("budat", SqlType::Date, false)
            // Partner keys (nullable: not every line has one).
            .column("lifnr", SqlType::Int, true)
            .column("kunnr", SqlType::Int, true)
            .column("bp_type", SqlType::Int, false)
            .column("bp_id", SqlType::Int, false);
        // Dimension keys.
        for (_, key) in SIMPLE_DIMS {
            acdoca = acdoca.column(*key, SqlType::Int, false);
        }
        for (_, key) in DUP_DIMS {
            acdoca = acdoca.column(*key, SqlType::Int, false);
        }
        for (_, _, key) in TEXT_DIMS {
            acdoca = acdoca.column(*key, SqlType::Int, false);
        }
        for (_, _, _, key) in NESTED_DIMS {
            acdoca = acdoca.column(*key, SqlType::Int, false);
        }
        for (_, key) in COUNTRY_DIMS {
            acdoca = acdoca.column(*key, SqlType::Int, false);
        }
        let acdoca = acdoca.primary_key(&["rldnr", "rbukrs", "gjahr", "belnr", "docln"]).build()?;
        mk(catalog, acdoca)?;

        // Core master data.
        mk(
            catalog,
            TableBuilder::new("t001")
                .column("rbukrs", SqlType::Int, false)
                .column("butxt", SqlType::Text, false)
                .column("land1", SqlType::Int, false)
                .column("waers", SqlType::Int, false)
                .primary_key(&["rbukrs"])
                .build()?,
        )?;
        mk(
            catalog,
            TableBuilder::new("t881")
                .column("rldnr", SqlType::Int, false)
                .column("lname", SqlType::Text, false)
                .primary_key(&["rldnr"])
                .build()?,
        )?;
        mk(
            catalog,
            TableBuilder::new("lfa1")
                .column("lifnr", SqlType::Int, false)
                .column("name1", SqlType::Text, false)
                .column("land1", SqlType::Int, false)
                .column("ktokk", SqlType::Int, false)
                .primary_key(&["lifnr"])
                .build()?,
        )?;
        mk(
            catalog,
            TableBuilder::new("kna1")
                .column("kunnr", SqlType::Int, false)
                .column("name1", SqlType::Text, false)
                .column("land1", SqlType::Int, false)
                .column("ktokd", SqlType::Int, false)
                .primary_key(&["kunnr"])
                .build()?,
        )?;

        // Country stack (the shared view's tables).
        mk(
            catalog,
            TableBuilder::new("t005")
                .column("land1", SqlType::Int, false)
                .column("landx", SqlType::Text, false)
                .column("regio", SqlType::Int, false)
                .primary_key(&["land1"])
                .build()?,
        )?;
        mk(
            catalog,
            TableBuilder::new("t005t")
                .column("land1", SqlType::Int, false)
                .column("natio", SqlType::Text, false)
                .primary_key(&["land1"])
                .build()?,
        )?;
        mk(
            catalog,
            TableBuilder::new("t005u")
                .column("land1", SqlType::Int, false)
                .column("bezei", SqlType::Text, false)
                .primary_key(&["land1"])
                .build()?,
        )?;

        // Partner role tables (5-way union members).
        for role in PARTNER_ROLES {
            mk(
                catalog,
                TableBuilder::new(*role)
                    .column("bp_id", SqlType::Int, false)
                    .column("bp_name", SqlType::Text, false)
                    .primary_key(&["bp_id"])
                    .build()?,
            )?;
        }

        // Per-document open items (GROUP BY dim) and attachments (DISTINCT).
        mk(
            catalog,
            TableBuilder::new("bseg_open")
                .column("belnr", SqlType::Int, false)
                .column("itemno", SqlType::Int, false)
                .column("open_amount", SqlType::Decimal { scale: 2 }, false)
                .primary_key(&["belnr", "itemno"])
                .build()?,
        )?;
        mk(
            catalog,
            TableBuilder::new("attachments")
                .column("belnr", SqlType::Int, false)
                .column("attid", SqlType::Int, false)
                .column("mime", SqlType::Text, false)
                .primary_key(&["belnr", "attid"])
                .build()?,
        )?;

        // Generic dimension tables (key, text [, land1 | grp]).
        let plain = |name: &str| -> Result<TableDef> {
            TableBuilder::new(name)
                .column("dimkey", SqlType::Int, false)
                .column("txt", SqlType::Text, false)
                .primary_key(&["dimkey"])
                .build()
        };
        for (name, _) in SIMPLE_DIMS {
            mk(catalog, plain(name)?)?;
        }
        for (base, texts, _) in TEXT_DIMS {
            mk(catalog, plain(base)?)?;
            mk(catalog, plain(texts)?)?;
        }
        for (base, texts, groups, _) in NESTED_DIMS {
            mk(
                catalog,
                TableBuilder::new(*base)
                    .column("dimkey", SqlType::Int, false)
                    .column("txt", SqlType::Text, false)
                    .column("grp", SqlType::Int, false)
                    .primary_key(&["dimkey"])
                    .build()?,
            )?;
            mk(catalog, plain(texts)?)?;
            mk(catalog, plain(groups)?)?;
        }
        for (base, _) in COUNTRY_DIMS {
            mk(
                catalog,
                TableBuilder::new(*base)
                    .column("dimkey", SqlType::Int, false)
                    .column("txt", SqlType::Text, false)
                    .column("land1", SqlType::Int, false)
                    .primary_key(&["dimkey"])
                    .build()?,
            )?;
        }
        Ok(ErpSchema { tables })
    }

    /// Loads deterministic data into every table. Returns total rows.
    pub fn load(&self, engine: &StorageEngine) -> Result<usize> {
        let mut rng = crate::rng(self.seed);
        let mut total = 0usize;
        let dec2 = |u: i64| Value::Dec(Decimal::from_units(u as i128, 2));

        let plain_rows = |n: i64, label: &str| -> Vec<Vec<Value>> {
            (1..=n).map(|i| vec![Value::Int(i), Value::str(format!("{label}-{i:04}"))]).collect()
        };
        total += engine.insert(
            "t001",
            (1..=N_COMPANY)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::str(format!("Company {i:02}")),
                        Value::Int((i % N_COUNTRY) + 1),
                        Value::Int((i % 10) + 1),
                    ]
                })
                .collect(),
        )?;
        total += engine.insert(
            "t881",
            (1..=N_LEDGER)
                .map(|i| vec![Value::Int(i), Value::str(format!("Ledger {i}"))])
                .collect(),
        )?;
        total += engine.insert(
            "t005",
            (1..=N_COUNTRY)
                .map(|i| {
                    vec![Value::Int(i), Value::str(format!("Country{i:02}")), Value::Int(i % 7)]
                })
                .collect(),
        )?;
        total += engine.insert("t005t", plain_rows(N_COUNTRY, "Nationality"))?;
        total += engine.insert("t005u", plain_rows(N_COUNTRY, "Region"))?;
        total += engine.insert(
            "lfa1",
            (1..=N_SUPPLIER)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::str(format!("Supplier {i:05}")),
                        Value::Int((i % N_COUNTRY) + 1),
                        Value::Int(i % 4),
                    ]
                })
                .collect(),
        )?;
        total += engine.insert(
            "kna1",
            (1..=N_CUSTOMER)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::str(format!("Customer {i:05}")),
                        Value::Int((i % N_COUNTRY) + 1),
                        Value::Int(i % 3),
                    ]
                })
                .collect(),
        )?;
        for role in PARTNER_ROLES {
            total += engine.insert(
                role,
                (1..=N_PARTNER_PER_ROLE)
                    .map(|i| vec![Value::Int(i), Value::str(format!("{role}-{i:04}"))])
                    .collect(),
            )?;
        }
        for (name, _) in SIMPLE_DIMS {
            total += engine.insert(name, plain_rows(N_GENERIC_DIM, name))?;
        }
        for (base, texts, _) in TEXT_DIMS {
            total += engine.insert(base, plain_rows(N_GENERIC_DIM, base))?;
            total += engine.insert(texts, plain_rows(N_GENERIC_DIM, texts))?;
        }
        for (base, texts, groups, _) in NESTED_DIMS {
            total += engine.insert(
                base,
                (1..=N_GENERIC_DIM)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::str(format!("{base}-{i:04}")),
                            Value::Int((i % 10) + 1),
                        ]
                    })
                    .collect(),
            )?;
            total += engine.insert(texts, plain_rows(N_GENERIC_DIM, texts))?;
            total += engine.insert(groups, plain_rows(10, groups))?;
        }
        for (base, _) in COUNTRY_DIMS {
            total += engine.insert(
                base,
                (1..=N_GENERIC_DIM)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            Value::str(format!("{base}-{i:04}")),
                            Value::Int((i % N_COUNTRY) + 1),
                        ]
                    })
                    .collect(),
            )?;
        }
        // Open items: 0-3 per document.
        let mut open = Vec::new();
        for d in 1..=N_DOCS {
            for item in 1..=(d % 4) {
                open.push(vec![Value::Int(d), Value::Int(item), dec2((d * 7 + item) % 100_000)]);
            }
        }
        total += engine.insert("bseg_open", open)?;
        // Attachments: some documents have several.
        let mut atts = Vec::new();
        for d in 1..=N_DOCS {
            for a in 1..=(d % 3) {
                atts.push(vec![Value::Int(d), Value::Int(a), Value::str("application/pdf")]);
            }
        }
        total += engine.insert("attachments", atts)?;

        // The journal itself.
        let mut journal = Vec::with_capacity(self.journal_rows);
        let mut line_of_doc: HashMap<(i64, i64, i64, i64), i64> = HashMap::new();
        for _ in 0..self.journal_rows {
            let rldnr = rng.random_range(1..=N_LEDGER);
            let rbukrs = rng.random_range(1..=N_COMPANY);
            let gjahr = rng.random_range(2023..=2026);
            let belnr = rng.random_range(1..=N_DOCS);
            let docln = {
                let c = line_of_doc.entry((rldnr, rbukrs, gjahr, belnr)).or_insert(0);
                *c += 1;
                *c
            };
            let mut row = vec![
                Value::Int(rldnr),
                Value::Int(rbukrs),
                Value::Int(gjahr),
                Value::Int(belnr),
                Value::Int(docln),
                dec2(rng.random_range(-500_000..5_000_000)),
                dec2(rng.random_range(-500_000..5_000_000)),
                Value::Dec(Decimal::from_units(rng.random_range(0..100_000), 3)),
                Value::str(if rng.random_range(0..2) == 0 { "S" } else { "H" }),
                Value::Date(rng.random_range(19_700..20_500)),
                if rng.random_range(0..3) == 0 {
                    Value::Null
                } else {
                    Value::Int(rng.random_range(1..=N_SUPPLIER))
                },
                if rng.random_range(0..3) == 0 {
                    Value::Null
                } else {
                    Value::Int(rng.random_range(1..=N_CUSTOMER))
                },
                Value::Int(rng.random_range(0..PARTNER_ROLES.len() as i64)),
                Value::Int(rng.random_range(1..=N_PARTNER_PER_ROLE)),
            ];
            let n_generic = SIMPLE_DIMS.len()
                + DUP_DIMS.len()
                + TEXT_DIMS.len()
                + NESTED_DIMS.len()
                + COUNTRY_DIMS.len();
            for _ in 0..n_generic {
                row.push(Value::Int(rng.random_range(1..=N_GENERIC_DIM)));
            }
            journal.push(row);
        }
        total += engine.insert("acdoca", journal)?;
        Ok(total)
    }

    /// Schema + data in one call.
    pub fn build(&self, catalog: &mut Catalog, engine: &StorageEngine) -> Result<ErpSchema> {
        let schema = self.create_schema(catalog, engine)?;
        self.load(engine)?;
        Ok(schema)
    }
}

/// Left-outer many-to-one augmentation join (the VDM workhorse).
fn aj(left: PlanRef, right: PlanRef, on: Vec<(usize, usize)>) -> Result<PlanRef> {
    LogicalPlan::join(
        left,
        right,
        JoinKind::LeftOuter,
        on,
        None,
        Some(DeclaredCardinality::ManyToOne),
        false,
    )
}

/// The shared country view `G = t005 ⟕ t005t ⟕ t005u` (3 scans, 2 joins).
/// Output: land1, landx, regio, natio, bezei.
fn country_view(schema: &ErpSchema) -> Result<PlanRef> {
    let base = LogicalPlan::scan(schema.table("t005"));
    let j1 = aj(base, LogicalPlan::scan(schema.table("t005t")), vec![(0, 0)])?;
    let j2 = aj(j1, LogicalPlan::scan(schema.table("t005u")), vec![(0, 0)])?;
    LogicalPlan::project(
        j2,
        vec![
            (Expr::col(0), "land1".into()),
            (Expr::col(1), "landx".into()),
            (Expr::col(2), "regio".into()),
            (Expr::col(4), "natio".into()),
            (Expr::col(6), "bezei".into()),
        ],
    )
}

/// The assembled browser: view, DAC policy, and the protected plan.
pub struct Browser {
    /// The full consumption view (before DAC).
    pub view: PlanRef,
    /// DAC policy with rules for the demo user `"kim"`.
    pub policy: AccessPolicy,
    /// The DAC-protected plan for `"kim"` — the paper's Fig. 3 plan.
    pub protected: PlanRef,
}

/// Assembles the `journal_entry_item_browser` view over the ERP schema.
pub fn journal_entry_item_browser(schema: &ErpSchema) -> Result<Browser> {
    // ---- Interface view: acdoca ⋈ t001 ⋈ t881 (exact-one inner joins).
    let acdoca = LogicalPlan::scan(schema.table("acdoca"));
    let fact_schema = acdoca.schema();
    let fact_width = fact_schema.len();
    let col_of = |name: &str| -> Result<usize> {
        fact_schema
            .index_of(name)
            .ok_or_else(|| VdmError::Plan(format!("acdoca has no column {name}")))
    };
    let core = LogicalPlan::join(
        acdoca,
        LogicalPlan::scan(schema.table("t001")),
        JoinKind::Inner,
        vec![(col_of("rbukrs")?, 0)],
        None,
        Some(DeclaredCardinality::ManyToExactOne),
        false,
    )?;
    let core = LogicalPlan::join(
        core,
        LogicalPlan::scan(schema.table("t881")),
        JoinKind::Inner,
        vec![(col_of("rldnr")?, 0)],
        None,
        Some(DeclaredCardinality::ManyToExactOne),
        false,
    )?;

    let country = country_view(schema)?;

    // ---- 30 augmentation joins; the final projection picks business
    // fields from the positions each augmenter lands at.
    let mut plan = core;
    let mut exposed: Vec<(Expr, String)> = Vec::new();
    for name in
        ["rldnr", "rbukrs", "gjahr", "belnr", "docln", "hsl", "ksl", "msl", "drcrk", "budat"]
    {
        exposed.push((Expr::col(col_of(name)?), business_name(name).into()));
    }
    exposed.push((Expr::col(fact_width + 1), "CompanyName".into()));
    exposed.push((Expr::col(fact_width + 5), "LedgerName".into()));

    let mut joins = 0usize;
    let mut add_aj = |plan: &mut PlanRef,
                      augmenter: PlanRef,
                      left_cols: Vec<usize>,
                      right_cols: Vec<usize>,
                      expose: Vec<(usize, String)>|
     -> Result<()> {
        let base = plan.schema().len();
        let on = left_cols.into_iter().zip(right_cols).collect();
        *plan = aj(plan.clone(), augmenter, on)?;
        for (ofs, name) in expose {
            exposed.push((Expr::col(base + ofs), name));
        }
        joins += 1;
        Ok(())
    };

    // 1. Supplier (DAC target): lfa1 ⟕ G.
    let supplier = aj(LogicalPlan::scan(schema.table("lfa1")), country.clone(), vec![(2, 0)])?;
    add_aj(
        &mut plan,
        supplier,
        vec![col_of("lifnr")?],
        vec![0],
        vec![
            (1, "SupplierName".into()),
            (3, "SupplierGroup".into()),
            (5, "SupplierCountryName".into()),
        ],
    )?;
    // 2. Customer (DAC target): kna1 ⟕ G.
    let customer = aj(LogicalPlan::scan(schema.table("kna1")), country.clone(), vec![(2, 0)])?;
    add_aj(
        &mut plan,
        customer,
        vec![col_of("kunnr")?],
        vec![0],
        vec![
            (1, "CustomerName".into()),
            (2, "CustomerCountry".into()),
            (5, "CustomerCountryName".into()),
        ],
    )?;
    // 3. Business partner: five-way UNION ALL (Fig. 11c) with a branch id.
    let partner = {
        let mut arms = Vec::new();
        for (i, role) in PARTNER_ROLES.iter().enumerate() {
            let scan = LogicalPlan::scan(schema.table(role));
            arms.push(LogicalPlan::project(
                scan,
                vec![
                    (Expr::int(i as i64), "bp_type".into()),
                    (Expr::col(0), "bp_id".into()),
                    (Expr::col(1), "bp_name".into()),
                ],
            )?);
        }
        LogicalPlan::union_all(arms)?
    };
    add_aj(
        &mut plan,
        partner,
        vec![col_of("bp_type")?, col_of("bp_id")?],
        vec![0, 1],
        vec![(2, "PartnerName".into())],
    )?;
    // 4. Open items per document: GROUP BY aggregate.
    let open_items = LogicalPlan::aggregate(
        LogicalPlan::scan(schema.table("bseg_open")),
        vec![(Expr::col(0), "belnr".into())],
        vec![
            (vdm_expr::AggExpr::new(vdm_expr::AggFunc::Sum, Expr::col(2)), "open_amount".into()),
            (vdm_expr::AggExpr::count_star(), "open_items".into()),
        ],
    )?;
    add_aj(
        &mut plan,
        open_items,
        vec![col_of("belnr")?],
        vec![0],
        vec![(1, "OpenAmount".into()), (2, "OpenItemCount".into())],
    )?;
    // 5. Attachment existence: DISTINCT.
    let has_attachment = LogicalPlan::distinct(LogicalPlan::project(
        LogicalPlan::scan(schema.table("attachments")),
        vec![(Expr::col(0), "belnr".into())],
    )?);
    add_aj(&mut plan, has_attachment, vec![col_of("belnr")?], vec![0], vec![])?;
    // 6-8. Country dims: base ⟕ shared G.
    for (base, key) in COUNTRY_DIMS {
        let b = LogicalPlan::scan(schema.table(base));
        let dim = aj(b, country.clone(), vec![(2, 0)])?;
        add_aj(
            &mut plan,
            dim,
            vec![col_of(key)?],
            vec![0],
            vec![(1, format!("{}Name", business_name(key)))],
        )?;
    }
    // 9-12. Text dims: base ⟕ texts.
    for (base, texts, key) in TEXT_DIMS {
        let b = LogicalPlan::scan(schema.table(base));
        let t = LogicalPlan::scan(schema.table(texts));
        let dim = aj(b, t, vec![(0, 0)])?;
        add_aj(
            &mut plan,
            dim,
            vec![col_of(key)?],
            vec![0],
            vec![(3, format!("{}Text", business_name(key)))],
        )?;
    }
    // 13-15. Nested dims: (base ⟕ texts) ⟕ groups.
    for (base, texts, groups, key) in NESTED_DIMS {
        let b = LogicalPlan::scan(schema.table(base));
        let t = LogicalPlan::scan(schema.table(texts));
        let g = LogicalPlan::scan(schema.table(groups));
        let bt = aj(b, t, vec![(0, 0)])?;
        let dim = aj(bt, g, vec![(2, 0)])?;
        add_aj(
            &mut plan,
            dim,
            vec![col_of(key)?],
            vec![0],
            vec![
                (4, format!("{}Text", business_name(key))),
                (6, format!("{}Group", business_name(key))),
            ],
        )?;
    }
    // 16-27. Simple dims.
    let mut simple_scans: HashMap<&str, PlanRef> = HashMap::new();
    for (name, key) in SIMPLE_DIMS {
        let scan = LogicalPlan::scan(schema.table(name));
        simple_scans.insert(name, scan.clone());
        add_aj(
            &mut plan,
            scan,
            vec![col_of(key)?],
            vec![0],
            vec![(1, format!("{}Text", business_name(key)))],
        )?;
    }
    // 28-30. Duplicate-reference dims: the SAME scan node joined again on a
    // different fact column (DAG sharing).
    for (shared, key) in DUP_DIMS {
        let scan = simple_scans.get(shared).expect("dup dim shares a simple dim").clone();
        add_aj(
            &mut plan,
            scan,
            vec![col_of(key)?],
            vec![0],
            vec![(1, format!("{}Text", business_name(key)))],
        )?;
    }
    debug_assert_eq!(joins, 30, "exactly 30 augmentation joins");

    // ---- Consumption view projection (business field list).
    let view = LogicalPlan::project(plan, exposed)?;

    // ---- DAC (record-wise access control for the demo user).
    let mut policy = AccessPolicy::new();
    policy.add_rule(
        "kim",
        DacRule {
            view: "journal_entry_item_browser".into(),
            column: "SupplierGroup".into(),
            allowed: vec![Value::Int(0), Value::Int(1)],
            allow_null: true,
        },
    );
    policy.add_rule(
        "kim",
        DacRule {
            view: "journal_entry_item_browser".into(),
            column: "CustomerCountry".into(),
            allowed: (1..=20).map(Value::Int).collect(),
            allow_null: true,
        },
    );
    let protected = policy.protect("kim", "journal_entry_item_browser", view.clone())?;
    Ok(Browser { view, policy, protected })
}

fn business_name(field: &str) -> &'static str {
    match field {
        "rldnr" => "Ledger",
        "rbukrs" => "CompanyCode",
        "gjahr" => "FiscalYear",
        "belnr" => "AccountingDocument",
        "docln" => "LineItem",
        "hsl" => "AmountInCompanyCodeCurrency",
        "ksl" => "AmountInGlobalCurrency",
        "msl" => "Quantity",
        "drcrk" => "DebitCreditCode",
        "budat" => "PostingDate",
        "racct" => "GLAccount",
        "kostl" => "CostCenter",
        "prctr" => "ProfitCenter",
        "matnr" => "Material",
        "aufnr" => "OrderID",
        "pspnr" => "WBSElement",
        "anln1" => "Asset",
        "werks" => "Plant",
        "bankl" => "Bank",
        "site" => "Site",
        "rtcur" => "TransactionCurrency",
        "blart" => "DocumentType",
        "usnam" => "CreatedBy",
        "usnam2" => "ChangedBy",
        "hwaer" => "CompanyCurrency",
        "segment" => "Segment",
        "psegment" => "PartnerSegment",
        "gsber" => "BusinessArea",
        "mwskz" => "TaxCode",
        "zlsch" => "PaymentMethod",
        "zterm" => "PaymentTerms",
        "vbund" => "TradingPartner",
        "mahns" => "DunningLevel",
        "bschl" => "PostingKey",
        "rmvct" => "TransactionType",
        _ => "Field",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_plan::plan_stats;

    #[test]
    fn schema_builds_and_loads() {
        let erp = Erp { journal_rows: 500, seed: 1 };
        let mut catalog = Catalog::new();
        let engine = StorageEngine::new();
        let schema = erp.build(&mut catalog, &engine).unwrap();
        assert!(schema.table_names().len() > 30);
        assert_eq!(engine.row_count("acdoca", engine.snapshot()).unwrap(), 500);
    }

    #[test]
    fn browser_matches_fig3_complexity_profile() {
        let erp = Erp { journal_rows: 10, seed: 1 };
        let mut catalog = Catalog::new();
        let engine = StorageEngine::new();
        let schema = erp.build(&mut catalog, &engine).unwrap();
        let browser = journal_entry_item_browser(&schema).unwrap();
        let stats = plan_stats(&browser.protected);
        assert_eq!(stats.table_instances, 47, "Fig. 3: 47 table instances; got {stats:?}");
        assert_eq!(stats.joins, 49, "Fig. 3: 49 joins; got {stats:?}");
        assert_eq!(stats.table_references, 62, "Fig. 3: 62 instances when unshared; got {stats:?}");
        assert_eq!(stats.unions, 1);
        assert_eq!(stats.max_union_width, 5, "five-way UNION ALL");
        assert_eq!(stats.aggregates, 1, "one GROUP BY");
        assert_eq!(stats.distincts, 1, "one DISTINCT");
    }

    #[test]
    fn browser_executes_and_dac_filters() {
        let erp = Erp { journal_rows: 300, seed: 2 };
        let mut catalog = Catalog::new();
        let engine = StorageEngine::new();
        let schema = erp.build(&mut catalog, &engine).unwrap();
        let browser = journal_entry_item_browser(&schema).unwrap();
        let out = vdm_exec::execute(&browser.view, &engine).unwrap();
        assert_eq!(out.num_rows(), 300, "augmentation joins must not change cardinality");
        let protected = vdm_exec::execute(&browser.protected, &engine).unwrap();
        assert!(protected.num_rows() <= 300, "DAC can only filter");
        assert!(protected.num_rows() > 0, "the demo user sees something");
    }
}
