//! TPC-H subset generator (the Fig. 5 schema).
//!
//! Primary keys follow the benchmark; foreign keys are omitted by default
//! because the paper's evaluation setup omits them ("optional foreign-key
//! constraints are omitted") — pass `with_foreign_keys(true)` for the
//! AJ 1a inner-join experiments.

use std::sync::Arc;
use vdm_catalog::{Catalog, TableBuilder, TableDef};
use vdm_storage::StorageEngine;
use vdm_types::{Decimal, Result, SqlType, Value};

/// TPC-H subset generator.
#[derive(Debug, Clone)]
pub struct Tpch {
    /// Scale factor: 1.0 ≙ 1 500 customers / 15 000 orders / ~60 000 line
    /// items (1/100 of official TPC-H sizes — in-memory test scale).
    pub sf: f64,
    pub seed: u64,
    pub with_foreign_keys: bool,
}

impl Default for Tpch {
    fn default() -> Self {
        Tpch { sf: 0.1, seed: 42, with_foreign_keys: false }
    }
}

const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: &[&str] = &["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const STATUSES: &[&str] = &["O", "F", "P"];

impl Tpch {
    /// Row counts implied by the scale factor.
    pub fn customers(&self) -> i64 {
        ((1500.0 * self.sf) as i64).max(10)
    }

    /// Orders count.
    pub fn orders(&self) -> i64 {
        self.customers() * 10
    }

    /// Parts count.
    pub fn parts(&self) -> i64 {
        ((2000.0 * self.sf) as i64).max(10)
    }

    /// Suppliers count.
    pub fn suppliers(&self) -> i64 {
        ((100.0 * self.sf) as i64).max(5)
    }

    /// All table definitions, in creation order.
    pub fn table_defs(&self) -> Vec<TableDef> {
        let region = TableBuilder::new("region")
            .column("r_regionkey", SqlType::Int, false)
            .column("r_name", SqlType::Text, false)
            .primary_key(&["r_regionkey"]);
        let mut nation = TableBuilder::new("nation")
            .column("n_nationkey", SqlType::Int, false)
            .column("n_name", SqlType::Text, false)
            .column("n_regionkey", SqlType::Int, false)
            .primary_key(&["n_nationkey"]);
        let mut customer = TableBuilder::new("customer")
            .column("c_custkey", SqlType::Int, false)
            .column("c_name", SqlType::Text, false)
            .column("c_nationkey", SqlType::Int, false)
            .column("c_acctbal", SqlType::Decimal { scale: 2 }, false)
            .column("c_mktsegment", SqlType::Text, false)
            .primary_key(&["c_custkey"]);
        let mut orders = TableBuilder::new("orders")
            .column("o_orderkey", SqlType::Int, false)
            .column("o_custkey", SqlType::Int, false)
            .column("o_orderstatus", SqlType::Text, false)
            .column("o_totalprice", SqlType::Decimal { scale: 2 }, false)
            .column("o_orderdate", SqlType::Date, false)
            .primary_key(&["o_orderkey"]);
        let mut supplier = TableBuilder::new("supplier")
            .column("s_suppkey", SqlType::Int, false)
            .column("s_name", SqlType::Text, false)
            .column("s_nationkey", SqlType::Int, false)
            .column("s_acctbal", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["s_suppkey"]);
        let part = TableBuilder::new("part")
            .column("p_partkey", SqlType::Int, false)
            .column("p_name", SqlType::Text, false)
            .column("p_retailprice", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["p_partkey"]);
        let mut partsupp = TableBuilder::new("partsupp")
            .column("ps_partkey", SqlType::Int, false)
            .column("ps_suppkey", SqlType::Int, false)
            .column("ps_availqty", SqlType::Int, false)
            .column("ps_supplycost", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["ps_partkey", "ps_suppkey"]);
        let mut lineitem = TableBuilder::new("lineitem")
            .column("l_orderkey", SqlType::Int, false)
            .column("l_linenumber", SqlType::Int, false)
            .column("l_partkey", SqlType::Int, false)
            .column("l_suppkey", SqlType::Int, false)
            .column("l_quantity", SqlType::Int, false)
            .column("l_extendedprice", SqlType::Decimal { scale: 2 }, false)
            .column("l_discount", SqlType::Decimal { scale: 2 }, false)
            .column("l_tax", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["l_orderkey", "l_linenumber"]);
        if self.with_foreign_keys {
            nation = nation.foreign_key(&["n_regionkey"], "region", &["r_regionkey"]);
            customer = customer.foreign_key(&["c_nationkey"], "nation", &["n_nationkey"]);
            orders = orders.foreign_key(&["o_custkey"], "customer", &["c_custkey"]);
            supplier = supplier.foreign_key(&["s_nationkey"], "nation", &["n_nationkey"]);
            partsupp = partsupp.foreign_key(&["ps_partkey"], "part", &["p_partkey"]).foreign_key(
                &["ps_suppkey"],
                "supplier",
                &["s_suppkey"],
            );
            lineitem = lineitem
                .foreign_key(&["l_orderkey"], "orders", &["o_orderkey"])
                .foreign_key(&["l_partkey"], "part", &["p_partkey"])
                .foreign_key(&["l_suppkey"], "supplier", &["s_suppkey"]);
        }
        vec![
            region.build().expect("region"),
            nation.build().expect("nation"),
            customer.build().expect("customer"),
            orders.build().expect("orders"),
            supplier.build().expect("supplier"),
            part.build().expect("part"),
            partsupp.build().expect("partsupp"),
            lineitem.build().expect("lineitem"),
        ]
    }

    /// Registers the schema in catalog + storage.
    pub fn create_schema(
        &self,
        catalog: &mut Catalog,
        engine: &StorageEngine,
    ) -> Result<Vec<Arc<TableDef>>> {
        let mut out = Vec::new();
        for def in self.table_defs() {
            let arc = catalog.create_table(def)?;
            engine.create_table(Arc::clone(&arc))?;
            out.push(arc);
        }
        Ok(out)
    }

    /// Generates and loads all rows. Returns the total row count.
    pub fn load(&self, engine: &StorageEngine) -> Result<usize> {
        let mut rng = crate::rng(self.seed);
        let mut total = 0;
        let dec = |units: i64| Value::Dec(Decimal::from_units(units as i128, 2));

        let regions: Vec<Vec<Value>> = REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| vec![Value::Int(i as i64), Value::str(*name)])
            .collect();
        total += engine.insert("region", regions)?;

        let nations: Vec<Vec<Value>> = NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| {
                vec![Value::Int(i as i64), Value::str(*name), Value::Int(*region)]
            })
            .collect();
        total += engine.insert("nation", nations)?;

        let n_cust = self.customers();
        let customers: Vec<Vec<Value>> = (1..=n_cust)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("Customer#{i:09}")),
                    Value::Int(rng.random_range(0..NATIONS.len() as i64)),
                    dec(rng.random_range(-99_999..999_999)),
                    Value::str(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
                ]
            })
            .collect();
        total += engine.insert("customer", customers)?;

        let n_supp = self.suppliers();
        let suppliers: Vec<Vec<Value>> = (1..=n_supp)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("Supplier#{i:09}")),
                    Value::Int(rng.random_range(0..NATIONS.len() as i64)),
                    dec(rng.random_range(-99_999..999_999)),
                ]
            })
            .collect();
        total += engine.insert("supplier", suppliers)?;

        let n_part = self.parts();
        let parts: Vec<Vec<Value>> = (1..=n_part)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("Part#{i:09}")),
                    dec(rng.random_range(100..99_999)),
                ]
            })
            .collect();
        total += engine.insert("part", parts)?;

        let mut partsupp = Vec::new();
        for p in 1..=n_part {
            for k in 0..4 {
                partsupp.push(vec![
                    Value::Int(p),
                    Value::Int((p + k * 17) % n_supp + 1),
                    Value::Int(rng.random_range(1..10_000)),
                    dec(rng.random_range(100..100_000)),
                ]);
            }
        }
        total += engine.insert("partsupp", partsupp)?;

        let n_orders = self.orders();
        let mut orders = Vec::with_capacity(n_orders as usize);
        let mut lineitems = Vec::new();
        for o in 1..=n_orders {
            let custkey = rng.random_range(1..=n_cust);
            let n_lines = rng.random_range(1..=7i64);
            let mut order_total: i64 = 0;
            for ln in 1..=n_lines {
                let price = rng.random_range(1_000..120_000);
                order_total += price;
                lineitems.push(vec![
                    Value::Int(o),
                    Value::Int(ln),
                    Value::Int(rng.random_range(1..=n_part)),
                    Value::Int(rng.random_range(1..=n_supp)),
                    Value::Int(rng.random_range(1..=50)),
                    dec(price),
                    dec(rng.random_range(0..10)),
                    dec(rng.random_range(0..8)),
                ]);
            }
            orders.push(vec![
                Value::Int(o),
                Value::Int(custkey),
                Value::str(STATUSES[rng.random_range(0..STATUSES.len())]),
                dec(order_total),
                Value::Date(rng.random_range(8_000..12_000)),
            ]);
        }
        total += engine.insert("orders", orders)?;
        total += engine.insert("lineitem", lineitems)?;
        Ok(total)
    }

    /// Convenience: schema + data in one call.
    pub fn build(&self, catalog: &mut Catalog, engine: &StorageEngine) -> Result<usize> {
        self.create_schema(catalog, engine)?;
        self.load(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_data_load() {
        let gen = Tpch { sf: 0.02, seed: 7, with_foreign_keys: false };
        let mut catalog = Catalog::new();
        let engine = StorageEngine::new();
        let rows = gen.build(&mut catalog, &engine).unwrap();
        assert!(rows > 500, "generated {rows} rows");
        assert_eq!(catalog.table_names().len(), 8);
        let snap = engine.snapshot();
        assert_eq!(engine.row_count("region", snap).unwrap(), 5);
        assert_eq!(engine.row_count("nation", snap).unwrap(), 25);
        assert_eq!(engine.row_count("customer", snap).unwrap() as i64, gen.customers());
        assert_eq!(engine.row_count("orders", snap).unwrap() as i64, gen.orders());
        assert!(engine.row_count("lineitem", snap).unwrap() >= gen.orders() as usize);
    }

    #[test]
    fn generation_is_deterministic() {
        let run = || {
            let gen = Tpch { sf: 0.01, seed: 99, with_foreign_keys: false };
            let mut catalog = Catalog::new();
            let engine = StorageEngine::new();
            gen.build(&mut catalog, &engine).unwrap();
            let b = engine.scan("customer", engine.snapshot()).unwrap();
            b.to_rows()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn foreign_keys_optional() {
        let without = Tpch { with_foreign_keys: false, ..Tpch::default() };
        let with = Tpch { with_foreign_keys: true, ..Tpch::default() };
        let find = |defs: &[TableDef], name: &str| {
            defs.iter().find(|d| d.name == name).unwrap().foreign_keys.len()
        };
        assert_eq!(find(&without.table_defs(), "orders"), 0);
        assert_eq!(find(&with.table_defs(), "orders"), 1);
        assert_eq!(find(&with.table_defs(), "lineitem"), 3);
    }

    #[test]
    fn referential_integrity_holds() {
        // FKs are omitted, but the *data* is referentially consistent —
        // required for augmentation-join semantics to be observable.
        let gen = Tpch { sf: 0.01, seed: 3, with_foreign_keys: false };
        let mut catalog = Catalog::new();
        let engine = StorageEngine::new();
        gen.build(&mut catalog, &engine).unwrap();
        let snap = engine.snapshot();
        let customers = engine.scan("customer", snap).unwrap();
        let keys: std::collections::HashSet<i64> = (0..customers.num_rows())
            .map(|i| customers.columns[0].get(i).as_int().unwrap())
            .collect();
        let orders = engine.scan("orders", snap).unwrap();
        for i in 0..orders.num_rows() {
            let ck = orders.columns[1].get(i).as_int().unwrap();
            assert!(keys.contains(&ck), "order references missing customer {ck}");
        }
    }
}
