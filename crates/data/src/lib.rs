//! Deterministic data and schema generators for the reproduction.
//!
//! * [`tpch`] — the TPC-H subset of Fig. 5 (primary keys per the benchmark;
//!   foreign keys optional, mirroring the paper's setup note);
//! * [`erp`] — a synthetic S/4HANA-like ERP schema centered on the
//!   universal journal `acdoca`, plus the programmatic assembly of a
//!   `journal_entry_item_browser` consumption view with the exact
//!   complexity profile of Fig. 3 (47 table instances, 49 joins, one
//!   five-way UNION ALL, one GROUP BY, one DISTINCT, DAC-guarded supplier
//!   and customer joins);
//! * [`figview`] — the Fig. 14 population: generated VDM views paired with
//!   custom-field extension views over draft-enabled tables, with and
//!   without declared CASE JOIN intent.
//!
//! All generators are seeded and deterministic: the same parameters always
//! produce the same rows.

pub mod erp;
pub mod figview;
pub mod tpch;

use vdm_types::SplitMix64;

/// Seeded RNG used by every generator.
pub(crate) fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed)
}
