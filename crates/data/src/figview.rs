//! The Fig. 14 view population: custom-field extension views over
//! draft-enabled tables, with and without declared CASE JOIN intent.
//!
//! The paper ran `select * from V limit 10` against 100 VDM views and
//! their custom-field extension views. When the optimizer had to
//! *recognize* the ASJ-over-UNION-ALL pattern heuristically (Fig. 14a),
//! many extension views were drastically slower than their originals;
//! with the CASE JOIN intent declared (Fig. 14b) every pair stayed near
//! the diagonal. We reproduce the *population*: a mix of shallow views
//! (heuristically recognizable) and deep views (anchor branches contain
//! further joins, defeating the shallow matcher), each paired with plain
//! and case-join extension plans.

use std::sync::Arc;
use vdm_catalog::{Catalog, TableBuilder, TableDef};
use vdm_expr::Expr;
use vdm_model::{extension::extend_draft_with_fields, DraftPair, ExtensionSpec};
use vdm_plan::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef};
use vdm_storage::StorageEngine;
use vdm_types::{Decimal, Result, SqlType, Value};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct Fig14Config {
    /// Number of view pairs (the paper used 100).
    pub n_views: usize,
    /// Rows per active table (draft gets 1/10).
    pub rows_per_table: usize,
    pub seed: u64,
}

impl Default for Fig14Config {
    fn default() -> Self {
        Fig14Config { n_views: 100, rows_per_table: 5_000, seed: 1414 }
    }
}

/// One original view plus its two extension variants.
#[derive(Debug, Clone)]
pub struct Fig14Case {
    pub name: String,
    /// The managed view (no custom field).
    pub original: PlanRef,
    /// Extension without declared intent (heuristic recognition only).
    pub extended_plain: PlanRef,
    /// Extension with CASE JOIN intent.
    pub extended_case: PlanRef,
    /// Anchor branches contain joins: defeats the shallow heuristic.
    pub deep: bool,
}

/// The generated population.
#[derive(Debug)]
pub struct Fig14 {
    pub cases: Vec<Fig14Case>,
}

/// Generates the population: tables, data, and the three plans per case.
pub fn generate(cfg: &Fig14Config, catalog: &mut Catalog, engine: &StorageEngine) -> Result<Fig14> {
    let mut rng = crate::rng(cfg.seed);
    // One shared dimension used by deep views.
    let dim = Arc::new(
        TableBuilder::new("f14_dim")
            .column("dimkey", SqlType::Int, false)
            .column("txt", SqlType::Text, false)
            .primary_key(&["dimkey"])
            .build()?,
    );
    catalog.create_table((*dim).clone())?;
    engine.create_table(Arc::clone(&dim))?;
    engine.insert(
        "f14_dim",
        (1..=50).map(|i| vec![Value::Int(i), Value::str(format!("dim-{i:03}"))]).collect(),
    )?;

    let mut cases = Vec::with_capacity(cfg.n_views);
    for i in 0..cfg.n_views {
        let deep = rng.random_range(0..2) == 1;
        let doc_table = |name: &str| -> Result<TableDef> {
            TableBuilder::new(name)
                .column("doc_id", SqlType::Int, false)
                .column("amount", SqlType::Decimal { scale: 2 }, false)
                .column("status", SqlType::Int, false)
                .column("dimkey", SqlType::Int, false)
                .column("docname", SqlType::Text, false)
                .column("zz_ext", SqlType::Text, true)
                .primary_key(&["doc_id"])
                .build()
        };
        let active_name = format!("f14_doc_{i:03}");
        let draft_name = format!("f14_doc_{i:03}_draft");
        let active = catalog.create_table(doc_table(&active_name)?)?;
        let draft = catalog.create_table(doc_table(&draft_name)?)?;
        engine.create_table(Arc::clone(&active))?;
        engine.create_table(Arc::clone(&draft))?;
        let load = |table: &str, n: usize, rng: &mut vdm_types::SplitMix64| -> Result<()> {
            let rows = (1..=n as i64)
                .map(|d| {
                    vec![
                        Value::Int(d),
                        Value::Dec(Decimal::from_units(rng.random_range(0..1_000_000), 2)),
                        Value::Int(rng.random_range(0..5)),
                        Value::Int(rng.random_range(1..=50)),
                        Value::str(format!("Document {d:06}")),
                        Value::str(format!("ext-{d}")),
                    ]
                })
                .collect();
            engine.insert(table, rows)?;
            Ok(())
        };
        load(&active_name, cfg.rows_per_table, &mut rng)?;
        load(&draft_name, (cfg.rows_per_table / 10).max(1), &mut rng)?;

        let pair = DraftPair::new(Arc::clone(&active), Arc::clone(&draft))?;

        // The managed view: bid ⊎ union, NOT projecting zz_ext. Deep views
        // join the dimension inside each branch.
        let mk_branch = |table: &Arc<TableDef>, bid: i64| -> Result<PlanRef> {
            let scan = LogicalPlan::scan(Arc::clone(table));
            if deep {
                let joined = LogicalPlan::join(
                    scan,
                    LogicalPlan::scan(Arc::clone(&dim)),
                    JoinKind::LeftOuter,
                    vec![(3, 0)],
                    None,
                    Some(DeclaredCardinality::ManyToOne),
                    false,
                )?;
                LogicalPlan::project(
                    joined,
                    vec![
                        (Expr::int(bid), "bid".into()),
                        (Expr::col(0), "DocId".into()),
                        (Expr::col(1), "Amount".into()),
                        (Expr::col(2), "Status".into()),
                        (Expr::col(4), "DocName".into()),
                        (Expr::col(7), "DimText".into()),
                    ],
                )
            } else {
                LogicalPlan::project(
                    scan,
                    vec![
                        (Expr::int(bid), "bid".into()),
                        (Expr::col(0), "DocId".into()),
                        (Expr::col(1), "Amount".into()),
                        (Expr::col(2), "Status".into()),
                        (Expr::col(4), "DocName".into()),
                    ],
                )
            }
        };
        let union = LogicalPlan::union_all(vec![
            mk_branch(&active, vdm_model::draft::BID_ACTIVE)?,
            mk_branch(&draft, vdm_model::draft::BID_DRAFT)?,
        ])?;
        // Some views carry an extra managed projection layer on top.
        let original = if rng.random_range(0..2) == 0 {
            let s = union.schema();
            let exprs = (0..s.len()).map(|c| (Expr::col(c), s.field(c).name.clone())).collect();
            LogicalPlan::project(union, exprs)?
        } else {
            union
        };

        let spec = ExtensionSpec {
            key: vec![("DocId".into(), "doc_id".into())],
            fields: vec!["zz_ext".into()],
        };
        let extended_plain =
            extend_draft_with_fields(original.clone(), &pair, "bid", &spec, false)?;
        let extended_case = extend_draft_with_fields(original.clone(), &pair, "bid", &spec, true)?;
        cases.push(Fig14Case {
            name: format!("view_{i:03}"),
            original,
            extended_plain,
            extended_case,
            deep,
        });
    }
    Ok(Fig14 { cases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_optimizer::Optimizer;
    use vdm_plan::plan_stats;

    fn small() -> (Fig14, StorageEngine) {
        let cfg = Fig14Config { n_views: 10, rows_per_table: 50, seed: 5 };
        let mut catalog = Catalog::new();
        let engine = StorageEngine::new();
        let fig = generate(&cfg, &mut catalog, &engine).unwrap();
        (fig, engine)
    }

    #[test]
    fn population_has_both_shapes() {
        let (fig, _) = small();
        assert_eq!(fig.cases.len(), 10);
        assert!(fig.cases.iter().any(|c| c.deep));
        assert!(fig.cases.iter().any(|c| !c.deep));
    }

    #[test]
    fn case_join_always_collapses_heuristic_only_on_shallow() {
        let (fig, _) = small();
        let hana = Optimizer::hana();
        for case in &fig.cases {
            let with_intent = hana.optimize(&case.extended_case).unwrap();
            assert_eq!(
                plan_stats(&with_intent).joins,
                plan_stats(&hana.optimize(&case.original).unwrap()).joins,
                "case join must reduce {} to its original's cost",
                case.name
            );
            let plain = hana.optimize(&case.extended_plain).unwrap();
            let orig = hana.optimize(&case.original).unwrap();
            if case.deep {
                assert!(
                    plan_stats(&plain).joins > plan_stats(&orig).joins,
                    "{}: deep shape must defeat the heuristic",
                    case.name
                );
            } else {
                assert_eq!(plan_stats(&plain).joins, plan_stats(&orig).joins);
            }
        }
    }

    #[test]
    fn all_three_plans_agree_on_data() {
        let (fig, engine) = small();
        let hana = Optimizer::hana();
        for case in fig.cases.iter().take(4) {
            let base = vdm_exec::execute(&case.extended_plain, &engine).unwrap();
            for plan in [&case.extended_case, &hana.optimize(&case.extended_case).unwrap()] {
                let out = vdm_exec::execute(plan, &engine).unwrap();
                assert_eq!(out.num_rows(), base.num_rows(), "{}", case.name);
            }
        }
    }
}
