//! Name resolution and plan construction (AST → [`LogicalPlan`]).

use crate::ast::*;
use std::collections::HashMap;
use std::sync::Arc;
use vdm_catalog::{Catalog, TableBuilder, TableDef};
use vdm_expr::{AggExpr, AggFunc, Expr, MacroDef, ScalarFunc};
use vdm_plan::{LogicalPlan, PlanRef, SortKey, ViewRegistry};
use vdm_types::{Field, Result, Schema, SqlType, Value, VdmError};

/// Expression macros by (lowercase) name (§7.2).
pub type MacroRegistry = HashMap<String, MacroDef>;

/// Maximum view-expansion nesting (the paper reports real VDM stacks 24
/// deep; 64 leaves room while still catching cycles).
const MAX_VIEW_DEPTH: usize = 64;

/// The binder: resolves names against the catalog, plan-view registry, and
/// macro registry, and produces logical plans. Views are inlined during
/// binding (heuristic rewrite #1 in the paper's description of HANA).
pub struct Binder<'a> {
    pub catalog: &'a Catalog,
    pub views: &'a ViewRegistry,
    pub macros: &'a MacroRegistry,
    /// Types for `?`/`$n` placeholders, by 0-based index. Empty unless set
    /// via [`Binder::with_param_types`]; binding a statement that references
    /// `$k` with fewer than `k` types errors.
    pub param_types: &'a [SqlType],
}

/// One named relation visible in a FROM scope.
struct ScopeEntry {
    qualifier: Option<String>,
    start: usize,
    schema: Arc<Schema>,
}

/// Name-resolution scope for a FROM clause.
struct Scope {
    entries: Vec<ScopeEntry>,
}

impl Scope {
    fn single(qualifier: Option<String>, schema: Arc<Schema>) -> Scope {
        Scope { entries: vec![ScopeEntry { qualifier, start: 0, schema }] }
    }

    fn join(mut self, right: Scope) -> Scope {
        let offset = self.width();
        for mut e in right.entries {
            e.start += offset;
            self.entries.push(e);
        }
        self
    }

    fn width(&self) -> usize {
        self.entries.iter().map(|e| e.schema.len()).sum()
    }

    fn resolve(&self, parts: &[String]) -> Result<usize> {
        match parts {
            [name] => {
                let mut found = None;
                for e in &self.entries {
                    for idx in e.schema.indices_of(name) {
                        if found.is_some() {
                            return Err(VdmError::Bind(format!("ambiguous column {name:?}")));
                        }
                        found = Some(e.start + idx);
                    }
                }
                found.ok_or_else(|| VdmError::Bind(format!("unknown column {name:?}")))
            }
            [qual, name] => {
                let mut found = None;
                for e in &self.entries {
                    let matches_qual =
                        e.qualifier.as_ref().is_some_and(|q| q.eq_ignore_ascii_case(qual));
                    if !matches_qual {
                        continue;
                    }
                    if let Some(idx) = e.schema.index_of(name) {
                        if found.is_some() {
                            return Err(VdmError::Bind(format!("ambiguous column {qual}.{name}")));
                        }
                        found = Some(e.start + idx);
                    }
                }
                found.ok_or_else(|| VdmError::Bind(format!("unknown column {qual}.{name}")))
            }
            _ => Err(VdmError::Bind(format!("unsupported qualified name {parts:?}"))),
        }
    }
}

impl<'a> Binder<'a> {
    /// Creates a binder over the given metadata.
    pub fn new(
        catalog: &'a Catalog,
        views: &'a ViewRegistry,
        macros: &'a MacroRegistry,
    ) -> Binder<'a> {
        Binder { catalog, views, macros, param_types: &[] }
    }

    /// Supplies placeholder types (from a prepared statement's execute-time
    /// values) so `?`/`$n` bind as typed [`Expr::Param`] nodes.
    pub fn with_param_types(mut self, types: &'a [SqlType]) -> Binder<'a> {
        self.param_types = types;
        self
    }

    /// Binds a full SELECT statement (with unions, ordering, paging).
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<PlanRef> {
        self.bind_select_depth(stmt, 0)
    }

    fn bind_select_depth(&self, stmt: &SelectStmt, depth: usize) -> Result<PlanRef> {
        if depth > MAX_VIEW_DEPTH {
            return Err(VdmError::Bind(
                "view nesting too deep (cycle in view definitions?)".into(),
            ));
        }
        let mut plan = self.bind_core(stmt, depth)?;
        if !stmt.union_all.is_empty() {
            let mut arms = vec![plan];
            for arm in &stmt.union_all {
                arms.push(self.bind_core(arm, depth)?);
            }
            plan = LogicalPlan::union_all(arms)?;
        }
        if !stmt.order_by.is_empty() {
            let schema = plan.schema();
            let keys = stmt
                .order_by
                .iter()
                .map(|(e, asc)| {
                    let col = self.resolve_output_column(e, &schema)?;
                    Ok(SortKey { expr: Expr::col(col), asc: *asc, nulls_first: *asc })
                })
                .collect::<Result<Vec<_>>>()?;
            plan = LogicalPlan::sort(plan, keys)?;
        }
        if stmt.limit.is_some() || stmt.offset.is_some() {
            plan = LogicalPlan::limit(plan, stmt.offset.unwrap_or(0), stmt.limit);
        }
        Ok(plan)
    }

    /// ORDER BY items resolve against the output schema: a name, or a
    /// 1-based position.
    fn resolve_output_column(&self, e: &AstExpr, schema: &Schema) -> Result<usize> {
        match e {
            AstExpr::Ident(parts) if parts.len() == 1 => schema.index_of_or_err(&parts[0]),
            AstExpr::Ident(parts) => schema.index_of_or_err(&parts[parts.len() - 1]),
            AstExpr::Number(n) => {
                let k: usize =
                    n.parse().map_err(|_| VdmError::Bind(format!("bad ORDER BY position {n}")))?;
                if k == 0 || k > schema.len() {
                    return Err(VdmError::Bind(format!("ORDER BY position {k} out of range")));
                }
                Ok(k - 1)
            }
            _ => Err(VdmError::Bind("ORDER BY supports output column names and positions".into())),
        }
    }

    fn bind_core(&self, stmt: &SelectStmt, depth: usize) -> Result<PlanRef> {
        let (mut plan, scope) = match &stmt.from {
            Some(tr) => self.bind_table_ref(tr, depth)?,
            None => {
                // FROM-less select: one synthetic row.
                let schema = Schema::new(vec![Field::new("__dual", SqlType::Int, false)]);
                let plan = LogicalPlan::values(schema, vec![vec![Value::Int(0)]])?;
                let scope = Scope::single(None, plan.schema());
                (plan, scope)
            }
        };
        if let Some(w) = &stmt.where_clause {
            let pred = self.bind_scalar(w, &scope)?;
            plan = LogicalPlan::filter(plan, pred)?;
        }

        let is_aggregate = !stmt.group_by.is_empty()
            || stmt.having.is_some()
            || stmt.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            });

        if is_aggregate {
            self.bind_aggregate_select(stmt, plan, &scope)
        } else {
            let mut exprs: Vec<(Expr, String)> = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard => {
                        for e in &scope.entries {
                            for (i, f) in e.schema.fields().iter().enumerate() {
                                exprs.push((Expr::col(e.start + i), f.name.clone()));
                            }
                        }
                    }
                    SelectItem::QualifiedWildcard(q) => {
                        let entry = scope
                            .entries
                            .iter()
                            .find(|e| {
                                e.qualifier.as_ref().is_some_and(|x| x.eq_ignore_ascii_case(q))
                            })
                            .ok_or_else(|| {
                                VdmError::Bind(format!("unknown relation alias {q:?}"))
                            })?;
                        for (i, f) in entry.schema.fields().iter().enumerate() {
                            exprs.push((Expr::col(entry.start + i), f.name.clone()));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let bound = self.bind_scalar(expr, &scope)?;
                        exprs.push((bound, item_name(expr, alias, exprs.len())));
                    }
                }
            }
            let mut plan = LogicalPlan::project(plan, exprs)?;
            if stmt.distinct {
                plan = LogicalPlan::distinct(plan);
            }
            Ok(plan)
        }
    }

    fn bind_aggregate_select(
        &self,
        stmt: &SelectStmt,
        input: PlanRef,
        scope: &Scope,
    ) -> Result<PlanRef> {
        // 1. Bind group keys.
        let mut group_by: Vec<(Expr, String)> = Vec::new();
        for (i, g) in stmt.group_by.iter().enumerate() {
            let bound = self.bind_scalar(g, scope)?;
            group_by.push((bound, item_name(g, &None, i)));
        }
        let ng = group_by.len();
        // 2. Collect aggregates from the select list and HAVING.
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut post_items: Vec<(Expr, String)> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Expr { expr, alias } => {
                    let post = self.bind_post(expr, scope, &stmt.group_by, &group_by, &mut aggs)?;
                    post_items.push((post, item_name(expr, alias, post_items.len())));
                }
                _ => {
                    return Err(VdmError::Bind(
                        "wildcards are not allowed in aggregate queries".into(),
                    ))
                }
            }
        }
        let having = stmt
            .having
            .as_ref()
            .map(|h| self.bind_post(h, scope, &stmt.group_by, &group_by, &mut aggs))
            .transpose()?;
        // 3. Build Aggregate node.
        let agg_named: Vec<(AggExpr, String)> =
            aggs.iter().enumerate().map(|(i, a)| (a.clone(), format!("__agg_{i}"))).collect();
        let mut plan = LogicalPlan::aggregate(input, group_by, agg_named)?;
        // 4. HAVING filters the grouped rows.
        if let Some(h) = having {
            plan = LogicalPlan::filter(plan, h)?;
        }
        // 5. Final projection computes post-aggregate expressions.
        let _ = ng;
        let mut plan = LogicalPlan::project(plan, post_items)?;
        if stmt.distinct {
            plan = LogicalPlan::distinct(plan);
        }
        Ok(plan)
    }

    /// Binds an expression *above* the aggregation: group-key references
    /// become group columns, aggregate calls become aggregate slots, macros
    /// expand, and anything else must be constant or derived from those.
    fn bind_post(
        &self,
        e: &AstExpr,
        scope: &Scope,
        group_ast: &[AstExpr],
        group_bound: &[(Expr, String)],
        aggs: &mut Vec<AggExpr>,
    ) -> Result<Expr> {
        let ng = group_bound.len();
        // Whole-expression match against a group key.
        if let Some(i) = group_ast.iter().position(|g| g == e) {
            return Ok(Expr::col(i));
        }
        match e {
            AstExpr::PrecisionLoss(inner) => {
                let bound = self.bind_post(inner, scope, group_ast, group_bound, aggs)?;
                // Mark every aggregate referenced under the wrapper.
                let mut slots = std::collections::BTreeSet::new();
                bound.referenced_columns(&mut slots);
                for s in slots {
                    if s >= ng {
                        aggs[s - ng].allow_precision_loss = true;
                    }
                }
                Ok(bound)
            }
            AstExpr::MacroRef(name) => {
                let def = self
                    .macros
                    .get(&name.to_ascii_lowercase())
                    .ok_or_else(|| VdmError::Bind(format!("unknown expression macro {name:?}")))?;
                // Macro aggregate arguments are recorded against the
                // defining view's output; they are valid here only when the
                // FROM clause is that (single) relation at offset 0.
                if scope.entries.len() != 1 {
                    return Err(VdmError::Bind(format!(
                        "EXPRESSION_MACRO({name}) requires the defining view as the only FROM relation"
                    )));
                }
                let body = def.expand(aggs);
                Ok(body.remap_columns(&|slot| ng + slot))
            }
            AstExpr::Func { name, args, distinct } => {
                if let Some(func) = agg_func_by_name(name) {
                    let agg = self.bind_agg_call(func, args, *distinct, scope)?;
                    let slot = match aggs.iter().position(|a| *a == agg) {
                        Some(s) => s,
                        None => {
                            aggs.push(agg);
                            aggs.len() - 1
                        }
                    };
                    return Ok(Expr::col(ng + slot));
                }
                // Scalar function over post-aggregate arguments.
                let bound = args
                    .iter()
                    .map(|a| self.bind_post(a, scope, group_ast, group_bound, aggs))
                    .collect::<Result<Vec<_>>>()?;
                self.finish_scalar_func(name, bound)
            }
            AstExpr::Binary { op, left, right } => {
                let l = self.bind_post(left, scope, group_ast, group_bound, aggs)?;
                let r = self.bind_post(right, scope, group_ast, group_bound, aggs)?;
                Ok(l.binary(op.to_binop(), r))
            }
            AstExpr::Not(inner) => Ok(Expr::Not(Box::new(self.bind_post(
                inner,
                scope,
                group_ast,
                group_bound,
                aggs,
            )?))),
            AstExpr::IsNull { expr, negated } => {
                let inner = Box::new(self.bind_post(expr, scope, group_ast, group_bound, aggs)?);
                Ok(if *negated { Expr::IsNotNull(inner) } else { Expr::IsNull(inner) })
            }
            AstExpr::InList { expr, list, negated } => {
                let e = self.bind_post(expr, scope, group_ast, group_bound, aggs)?;
                let items = list
                    .iter()
                    .map(|x| self.bind_post(x, scope, group_ast, group_bound, aggs))
                    .collect::<Result<Vec<_>>>()?;
                Ok(desugar_in(e, items, *negated))
            }
            AstExpr::Between { expr, low, high, negated } => {
                let e = self.bind_post(expr, scope, group_ast, group_bound, aggs)?;
                let lo = self.bind_post(low, scope, group_ast, group_bound, aggs)?;
                let hi = self.bind_post(high, scope, group_ast, group_bound, aggs)?;
                Ok(desugar_between(e, lo, hi, *negated))
            }
            AstExpr::Case { branches, else_expr } => {
                let bs = branches
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            self.bind_post(c, scope, group_ast, group_bound, aggs)?,
                            self.bind_post(v, scope, group_ast, group_bound, aggs)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let el = else_expr
                    .as_ref()
                    .map(|x| self.bind_post(x, scope, group_ast, group_bound, aggs))
                    .transpose()?
                    .map(Box::new);
                Ok(Expr::Case { branches: bs, else_expr: el })
            }
            AstExpr::Cast { expr, type_name, scale } => {
                let inner = self.bind_post(expr, scope, group_ast, group_bound, aggs)?;
                Ok(Expr::Cast { expr: Box::new(inner), ty: sql_type(type_name, *scale)? })
            }
            AstExpr::Number(_)
            | AstExpr::Str(_)
            | AstExpr::Bool(_)
            | AstExpr::Null
            | AstExpr::Param(_) => self.bind_scalar(e, scope),
            AstExpr::Ident(parts) => {
                // Bare column: legal only if it matches a group key's bound
                // form (e.g. GROUP BY t.c, select c).
                let bound = Expr::col(scope.resolve(parts)?);
                if let Some(i) = group_bound.iter().position(|(g, _)| *g == bound) {
                    return Ok(Expr::col(i));
                }
                Err(VdmError::Bind(format!(
                    "column {} must appear in GROUP BY or inside an aggregate",
                    parts.join(".")
                )))
            }
            AstExpr::Star => Err(VdmError::Bind("`*` is only valid in COUNT(*)".into())),
        }
    }

    fn bind_agg_call(
        &self,
        func: AggFunc,
        args: &[AstExpr],
        distinct: bool,
        scope: &Scope,
    ) -> Result<AggExpr> {
        if func == AggFunc::Count && args.len() == 1 && matches!(args[0], AstExpr::Star) {
            if distinct {
                return Err(VdmError::Bind("COUNT(DISTINCT *) is not valid".into()));
            }
            return Ok(AggExpr::count_star());
        }
        if args.len() != 1 {
            return Err(VdmError::Bind(format!("{} takes exactly one argument", func.name())));
        }
        let arg = self.bind_scalar(&args[0], scope)?;
        let mut agg = AggExpr::new(func, arg);
        agg.distinct = distinct;
        Ok(agg)
    }

    /// Binds a scalar expression over a FROM scope (WHERE, ON, GROUP BY,
    /// aggregate arguments). Aggregate calls are rejected here.
    fn bind_scalar(&self, e: &AstExpr, scope: &Scope) -> Result<Expr> {
        match e {
            AstExpr::Ident(parts) => Ok(Expr::col(scope.resolve(parts)?)),
            AstExpr::Number(n) => literal(n),
            AstExpr::Str(s) => Ok(Expr::Lit(Value::str(s.clone()))),
            AstExpr::Bool(b) => Ok(Expr::boolean(*b)),
            AstExpr::Null => Ok(Expr::Lit(Value::Null)),
            AstExpr::Param(idx) => self.param_expr(*idx),
            AstExpr::Star => Err(VdmError::Bind("`*` is only valid in COUNT(*)".into())),
            AstExpr::Binary { op, left, right } => {
                let l = self.bind_scalar(left, scope)?;
                let r = self.bind_scalar(right, scope)?;
                Ok(l.binary(op.to_binop(), r))
            }
            AstExpr::Not(inner) => Ok(Expr::Not(Box::new(self.bind_scalar(inner, scope)?))),
            AstExpr::IsNull { expr, negated } => {
                let inner = Box::new(self.bind_scalar(expr, scope)?);
                Ok(if *negated { Expr::IsNotNull(inner) } else { Expr::IsNull(inner) })
            }
            AstExpr::InList { expr, list, negated } => {
                let e = self.bind_scalar(expr, scope)?;
                let items =
                    list.iter().map(|x| self.bind_scalar(x, scope)).collect::<Result<Vec<_>>>()?;
                Ok(desugar_in(e, items, *negated))
            }
            AstExpr::Between { expr, low, high, negated } => {
                let e = self.bind_scalar(expr, scope)?;
                let lo = self.bind_scalar(low, scope)?;
                let hi = self.bind_scalar(high, scope)?;
                Ok(desugar_between(e, lo, hi, *negated))
            }
            AstExpr::Case { branches, else_expr } => {
                let bs = branches
                    .iter()
                    .map(|(c, v)| Ok((self.bind_scalar(c, scope)?, self.bind_scalar(v, scope)?)))
                    .collect::<Result<Vec<_>>>()?;
                let el = else_expr
                    .as_ref()
                    .map(|x| self.bind_scalar(x, scope))
                    .transpose()?
                    .map(Box::new);
                Ok(Expr::Case { branches: bs, else_expr: el })
            }
            AstExpr::Func { name, args, distinct } => {
                if agg_func_by_name(name).is_some() {
                    return Err(VdmError::Bind(format!("aggregate {name} is not allowed here")));
                }
                if *distinct {
                    return Err(VdmError::Bind("DISTINCT only applies to aggregates".into()));
                }
                let bound =
                    args.iter().map(|a| self.bind_scalar(a, scope)).collect::<Result<Vec<_>>>()?;
                self.finish_scalar_func(name, bound)
            }
            AstExpr::Cast { expr, type_name, scale } => {
                let inner = self.bind_scalar(expr, scope)?;
                Ok(Expr::Cast { expr: Box::new(inner), ty: sql_type(type_name, *scale)? })
            }
            AstExpr::PrecisionLoss(_) => Err(VdmError::Bind(
                "ALLOW_PRECISION_LOSS wraps aggregates in the select list".into(),
            )),
            AstExpr::MacroRef(name) => Err(VdmError::Bind(format!(
                "EXPRESSION_MACRO({name}) is only valid in an aggregating select list"
            ))),
        }
    }

    fn param_expr(&self, idx: usize) -> Result<Expr> {
        match self.param_types.get(idx) {
            Some(ty) => Ok(Expr::Param { idx, ty: *ty }),
            None => Err(VdmError::Bind(format!(
                "statement references parameter ${} but only {} parameter value(s) were supplied",
                idx + 1,
                self.param_types.len()
            ))),
        }
    }

    fn finish_scalar_func(&self, name: &str, args: Vec<Expr>) -> Result<Expr> {
        let func = ScalarFunc::by_name(name)
            .ok_or_else(|| VdmError::Bind(format!("unknown function {name:?}")))?;
        Ok(Expr::Func { func, args })
    }

    // --------------------------------------------------------- FROM

    fn bind_table_ref(&self, tr: &TableRef, depth: usize) -> Result<(PlanRef, Scope)> {
        match tr {
            TableRef::Named { name, alias } => {
                let qualifier = Some(alias.clone().unwrap_or_else(|| name.clone()));
                // Resolution order: base table, plan view, SQL view.
                if let Some(table) = self.catalog.table(name) {
                    let plan = LogicalPlan::scan(table);
                    let scope = Scope::single(qualifier, plan.schema());
                    return Ok((plan, scope));
                }
                if let Some(plan) = self.views.get(name) {
                    let scope = Scope::single(qualifier, plan.schema());
                    return Ok((plan, scope));
                }
                if let Some(view) = self.catalog.view(name) {
                    let stmt = crate::parser::parse_one(&view.sql)?;
                    let Statement::Select(sel) = stmt else {
                        return Err(VdmError::Bind(format!("view {name:?} body is not a SELECT")));
                    };
                    let plan = self.bind_select_depth(&sel, depth + 1)?;
                    let scope = Scope::single(qualifier, plan.schema());
                    return Ok((plan, scope));
                }
                Err(VdmError::Bind(format!("unknown relation {name:?}")))
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.bind_select_depth(query, depth + 1)?;
                let scope = Scope::single(Some(alias.clone()), plan.schema());
                Ok((plan, scope))
            }
            TableRef::Join { left, right, kind, cardinality, case_join, on } => {
                let (lp, ls) = self.bind_table_ref(left, depth)?;
                let (rp, rs) = self.bind_table_ref(right, depth)?;
                let nl = ls.width();
                let scope = ls.join(rs);
                let on_expr = on.as_ref().map(|e| self.bind_scalar(e, &scope)).transpose()?;
                // Split conjunctions into equi-key pairs vs residual filter.
                let mut pairs = Vec::new();
                let mut residual = Vec::new();
                if let Some(cond) = on_expr {
                    for c in vdm_expr::predicate::split_conjunction(&cond) {
                        match as_equi_pair(c, nl) {
                            Some(p) => pairs.push(p),
                            None => residual.push(c.clone()),
                        }
                    }
                }
                let plan_kind = match kind {
                    AstJoinKind::Inner => vdm_plan::JoinKind::Inner,
                    AstJoinKind::LeftOuter => vdm_plan::JoinKind::LeftOuter,
                };
                let filter =
                    if residual.is_empty() { None } else { Some(Expr::conjunction(residual)) };
                let plan =
                    LogicalPlan::join(lp, rp, plan_kind, pairs, filter, *cardinality, *case_join)?;
                Ok((plan, scope))
            }
        }
    }

    // ----------------------------------------------------- DDL helpers

    /// Converts a parsed CREATE TABLE into a [`TableDef`].
    pub fn table_def(&self, ast: &CreateTable) -> Result<TableDef> {
        let mut b = TableBuilder::new(ast.name.clone());
        for c in &ast.columns {
            let implicit_pk = ast.primary_key.iter().any(|k| k.eq_ignore_ascii_case(&c.name));
            b = b.column(
                c.name.clone(),
                sql_type(&c.type_name, c.scale)?,
                !(c.not_null || implicit_pk),
            );
        }
        if !ast.primary_key.is_empty() {
            let keys: Vec<&str> = ast.primary_key.iter().map(|s| s.as_str()).collect();
            b = b.primary_key(&keys);
        }
        for u in &ast.uniques {
            let cols: Vec<&str> = u.iter().map(|s| s.as_str()).collect();
            b = b.unique(&cols);
        }
        for (cols, ref_table, ref_cols) in &ast.foreign_keys {
            let c: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
            let r: Vec<&str> = ref_cols.iter().map(|s| s.as_str()).collect();
            b = b.foreign_key(&c, ref_table, &r);
        }
        b.build()
    }

    /// Binds a CREATE VIEW macro declaration against the view's output
    /// schema, producing a registrable [`MacroDef`].
    pub fn bind_macro(&self, ast: &MacroAst, view_schema: &Arc<Schema>) -> Result<MacroDef> {
        let scope = Scope::single(None, Arc::clone(view_schema));
        let mut aggs = Vec::new();
        let body = self.bind_post(&ast.body, &scope, &[], &[], &mut aggs)?;
        // Body references aggregate slots at offset ng = 0.
        let def = MacroDef { name: ast.name.clone(), body, aggs };
        def.validate()?;
        Ok(def)
    }

    /// Evaluates INSERT literal rows against a table definition, reordering
    /// named columns and filling omitted ones with NULL.
    pub fn insert_rows(
        &self,
        table: &TableDef,
        columns: &Option<Vec<String>>,
        rows: &[Vec<AstExpr>],
    ) -> Result<Vec<Vec<Value>>> {
        let width = table.schema.len();
        let positions: Vec<usize> = match columns {
            Some(names) => {
                names.iter().map(|n| table.schema.index_of_or_err(n)).collect::<Result<_>>()?
            }
            None => (0..width).collect(),
        };
        let scope = Scope::single(None, Arc::new(Schema::empty()));
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != positions.len() {
                return Err(VdmError::Bind(format!(
                    "INSERT row has {} values, expected {}",
                    row.len(),
                    positions.len()
                )));
            }
            let mut values = vec![Value::Null; width];
            for (ast, &pos) in row.iter().zip(&positions) {
                let bound = self.bind_scalar(ast, &scope)?;
                values[pos] = bound
                    .eval_row(&[])
                    .map_err(|e| VdmError::Bind(format!("INSERT values must be constant: {e}")))?;
            }
            out.push(values);
        }
        Ok(out)
    }
}

/// Desugars `x [NOT] IN (v1, ...)`: an OR chain of equalities, or an AND
/// chain of inequalities under NOT (matching SQL's NULL semantics).
fn desugar_in(e: Expr, items: Vec<Expr>, negated: bool) -> Expr {
    let mut it = items.into_iter();
    let first = match it.next() {
        Some(v) => v,
        None => return Expr::boolean(negated),
    };
    if negated {
        let head = e.clone().binary(vdm_expr::BinOp::NotEq, first);
        it.fold(head, |acc, v| acc.and(e.clone().binary(vdm_expr::BinOp::NotEq, v)))
    } else {
        let head = e.clone().eq(first);
        it.fold(head, |acc, v| acc.or(e.clone().eq(v)))
    }
}

/// Desugars `x [NOT] BETWEEN lo AND hi` into range comparisons.
fn desugar_between(e: Expr, lo: Expr, hi: Expr, negated: bool) -> Expr {
    if negated {
        e.clone().binary(vdm_expr::BinOp::Lt, lo).or(e.binary(vdm_expr::BinOp::Gt, hi))
    } else {
        e.clone().binary(vdm_expr::BinOp::GtEq, lo).and(e.binary(vdm_expr::BinOp::LtEq, hi))
    }
}

/// Recognizes `left-col = right-col` equi-join conjuncts.
fn as_equi_pair(e: &Expr, nl: usize) -> Option<(usize, usize)> {
    if let Expr::Binary { op: vdm_expr::BinOp::Eq, left, right } = e {
        if let (Expr::Col(a), Expr::Col(b)) = (left.as_ref(), right.as_ref()) {
            if *a < nl && *b >= nl {
                return Some((*a, *b - nl));
            }
            if *b < nl && *a >= nl {
                return Some((*b, *a - nl));
            }
        }
    }
    None
}

fn agg_func_by_name(name: &str) -> Option<AggFunc> {
    let n = name.to_ascii_uppercase();
    Some(match n.as_str() {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        "AVG" => AggFunc::Avg,
        _ => return None,
    })
}

fn literal(n: &str) -> Result<Expr> {
    if n.contains('.') {
        Ok(Expr::Lit(Value::Dec(n.parse()?)))
    } else {
        n.parse::<i64>()
            .map(Expr::int)
            .map_err(|_| VdmError::Bind(format!("integer literal {n} overflows")))
    }
}

fn sql_type(name: &str, scale: Option<u8>) -> Result<SqlType> {
    let n = name.to_ascii_uppercase();
    Ok(match n.as_str() {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => SqlType::Int,
        "DECIMAL" | "NUMERIC" => SqlType::Decimal { scale: scale.unwrap_or(0) },
        "TEXT" | "VARCHAR" | "CHAR" | "NVARCHAR" | "STRING" => SqlType::Text,
        "BOOLEAN" | "BOOL" => SqlType::Bool,
        "DATE" => SqlType::Date,
        other => return Err(VdmError::Bind(format!("unknown type {other}"))),
    })
}

/// True when the expression contains an aggregate call, a macro reference,
/// or an `ALLOW_PRECISION_LOSS` wrapper — anything forcing an Aggregate node.
fn contains_aggregate(e: &AstExpr) -> bool {
    match e {
        AstExpr::Func { name, args, .. } => {
            agg_func_by_name(name).is_some() || args.iter().any(contains_aggregate)
        }
        AstExpr::PrecisionLoss(_) | AstExpr::MacroRef(_) => true,
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Not(x) => contains_aggregate(x),
        AstExpr::IsNull { expr, .. } => contains_aggregate(expr),
        AstExpr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        AstExpr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        AstExpr::Case { branches, else_expr } => {
            branches.iter().any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || else_expr.as_ref().is_some_and(|x| contains_aggregate(x))
        }
        AstExpr::Cast { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

/// Output-column naming: alias, else identifier tail, else `col_i`.
fn item_name(e: &AstExpr, alias: &Option<String>, idx: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match e {
        AstExpr::Ident(parts) => parts.last().cloned().unwrap_or_else(|| format!("col_{idx}")),
        AstExpr::Func { name, .. } => name.to_ascii_lowercase(),
        AstExpr::MacroRef(name) => name.clone(),
        _ => format!("col_{idx}"),
    }
}

#[cfg(test)]
#[path = "binder/tests.rs"]
mod tests;
