//! Abstract syntax tree.

use vdm_plan::DeclaredCardinality;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable(CreateTable),
    /// `CREATE [OR REPLACE] VIEW name AS select [WITH EXPRESSION MACROS (...)]`.
    CreateView {
        name: String,
        or_replace: bool,
        query: SelectStmt,
        macros: Vec<MacroAst>,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<AstExpr>>,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        name: String,
        if_exists: bool,
    },
    /// `DROP VIEW [IF EXISTS] name`.
    DropView {
        name: String,
        if_exists: bool,
    },
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE stmt`: run the statement and render the plan
    /// annotated with per-operator runtime statistics.
    ExplainAnalyze(Box<Statement>),
    /// `EXPLAIN TRACE stmt`: run the statement under a forced trace and
    /// render the resulting span tree.
    ExplainTrace(Box<Statement>),
}

/// `expr AS name` inside `WITH EXPRESSION MACROS (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroAst {
    pub name: String,
    pub body: AstExpr,
}

/// CREATE TABLE definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnAst>,
    pub primary_key: Vec<String>,
    pub uniques: Vec<Vec<String>>,
    pub foreign_keys: Vec<(Vec<String>, String, Vec<String>)>,
}

/// One column in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnAst {
    pub name: String,
    pub type_name: String,
    /// DECIMAL scale, when given.
    pub scale: Option<u8>,
    pub not_null: bool,
}

/// A SELECT (one arm of a possible UNION ALL chain).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    /// Further UNION ALL arms.
    pub union_all: Vec<SelectStmt>,
    /// `(expr, ascending)` pairs.
    pub order_by: Vec<(AstExpr, bool)>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: AstExpr, alias: Option<String> },
}

/// FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [AS alias]`
    Named { name: String, alias: Option<String> },
    /// `(select ...) alias`
    Subquery { query: Box<SelectStmt>, alias: String },
    /// `left <kind> JOIN right ON cond`
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: AstJoinKind,
        /// §7.3 cardinality annotation.
        cardinality: Option<DeclaredCardinality>,
        /// §6.3 `CASE JOIN`.
        case_join: bool,
        on: Option<AstExpr>,
    },
}

/// Join kinds in the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinKind {
    Inner,
    LeftOuter,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified identifier: `x` or `t.x`.
    Ident(Vec<String>),
    Number(String),
    Str(String),
    Bool(bool),
    Null,
    /// `*` — only valid inside `COUNT(*)`.
    Star,
    Binary {
        op: AstBinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    /// `x [NOT] IN (v1, v2, ...)` — desugared to an OR/AND chain at bind.
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    /// `x [NOT] BETWEEN lo AND hi` — desugared to range conjuncts at bind.
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    Case {
        branches: Vec<(AstExpr, AstExpr)>,
        else_expr: Option<Box<AstExpr>>,
    },
    /// Function call (scalar or aggregate — resolved at bind time).
    Func {
        name: String,
        args: Vec<AstExpr>,
        distinct: bool,
    },
    Cast {
        expr: Box<AstExpr>,
        type_name: String,
        scale: Option<u8>,
    },
    /// `ALLOW_PRECISION_LOSS(aggregate-expr)` (§7.1).
    PrecisionLoss(Box<AstExpr>),
    /// `EXPRESSION_MACRO(name)` (§7.2).
    MacroRef(String),
    /// Prepared-statement placeholder (`?` / `$1`), 0-indexed.
    Param(usize),
}

/// Binary operators in the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl AstBinOp {
    /// Mapping into the expression crate's operator.
    pub fn to_binop(self) -> vdm_expr::BinOp {
        use vdm_expr::BinOp as B;
        match self {
            AstBinOp::Add => B::Add,
            AstBinOp::Sub => B::Sub,
            AstBinOp::Mul => B::Mul,
            AstBinOp::Div => B::Div,
            AstBinOp::Eq => B::Eq,
            AstBinOp::NotEq => B::NotEq,
            AstBinOp::Lt => B::Lt,
            AstBinOp::LtEq => B::LtEq,
            AstBinOp::Gt => B::Gt,
            AstBinOp::GtEq => B::GtEq,
            AstBinOp::And => B::And,
            AstBinOp::Or => B::Or,
        }
    }
}
