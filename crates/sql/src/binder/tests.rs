//! Binder tests: SQL in, logical plans out, executed against storage.

use crate::binder::{Binder, MacroRegistry};
use crate::parser::{parse, parse_one};
use crate::Statement;

use vdm_catalog::Catalog;
use vdm_plan::{plan_stats, LogicalPlan, PlanRef, ViewRegistry};
use vdm_storage::StorageEngine;
use vdm_types::{Value, VdmError};

/// A small test harness: catalog + views + macros + storage.
struct Db {
    catalog: Catalog,
    views: ViewRegistry,
    macros: MacroRegistry,
    engine: StorageEngine,
}

impl Db {
    fn new() -> Db {
        Db {
            catalog: Catalog::new(),
            views: ViewRegistry::new(),
            macros: MacroRegistry::new(),
            engine: StorageEngine::new(),
        }
    }

    fn run_ddl(&mut self, sql: &str) {
        for stmt in parse(sql).unwrap() {
            match stmt {
                Statement::CreateTable(ct) => {
                    let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                    let def = binder.table_def(&ct).unwrap();
                    let arc = self.catalog.create_table(def).unwrap();
                    self.engine.create_table(arc).unwrap();
                }
                Statement::CreateView { name, or_replace, query, macros } => {
                    // Bind once to validate and extract macros.
                    let (plan, defs) = {
                        let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                        let plan = binder.bind_select(&query).unwrap();
                        let defs: Vec<_> = macros
                            .iter()
                            .map(|m| binder.bind_macro(m, &plan.schema()).unwrap())
                            .collect();
                        (plan, defs)
                    };
                    for def in defs {
                        self.macros.insert(def.name.to_ascii_lowercase(), def);
                    }
                    if or_replace {
                        self.views.register(&name, plan);
                    } else {
                        self.views.register_new(&name, plan).unwrap();
                    }
                }
                Statement::Insert { table, columns, rows } => {
                    let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                    let def = self.catalog.table_or_err(&table).unwrap();
                    let values = binder.insert_rows(&def, &columns, &rows).unwrap();
                    self.engine.insert(&table, values).unwrap();
                }
                other => panic!("unexpected statement {other:?}"),
            }
        }
    }

    fn plan(&self, sql: &str) -> Result<PlanRef, VdmError> {
        let stmt = parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("not a select".into()));
        };
        Binder::new(&self.catalog, &self.views, &self.macros).bind_select(&sel)
    }

    fn query(&self, sql: &str) -> Vec<Vec<Value>> {
        let plan = self.plan(sql).unwrap();
        vdm_exec::execute(&plan, &self.engine).unwrap().to_rows()
    }
}

fn db() -> Db {
    let mut db = Db::new();
    db.run_ddl(
        "create table customer (c_custkey bigint primary key, c_name text not null, c_nation bigint not null);
         create table orders (o_orderkey bigint primary key, o_custkey bigint not null, o_total decimal(10,2) not null);
         insert into customer values (1, 'alice', 10), (2, 'bob', 20);
         insert into orders values (100, 1, 5.00), (101, 1, 7.25), (102, 9, 1.00);",
    );
    db
}

#[test]
fn select_star_and_projection() {
    let db = db();
    let rows = db.query("select * from customer order by c_custkey");
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1], Value::str("alice"));
    let rows = db.query("select c_name as n from customer order by n desc");
    assert_eq!(rows[0], vec![Value::str("bob")]);
}

#[test]
fn where_and_qualified_names() {
    let db = db();
    let rows = db.query("select o.o_orderkey from orders o where o.o_custkey = 1 order by 1");
    assert_eq!(rows, vec![vec![Value::Int(100)], vec![Value::Int(101)]]);
}

#[test]
fn joins_and_aliases() {
    let db = db();
    let rows = db.query(
        "select o.o_orderkey, c.c_name from orders o \
         left join customer c on o.o_custkey = c.c_custkey order by 1",
    );
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[2], vec![Value::Int(102), Value::Null]);
}

#[test]
fn join_cardinality_annotation_lands_in_plan() {
    let db = db();
    let plan = db
        .plan(
            "select o_orderkey from orders left outer many to one join customer \
             on o_custkey = c_custkey",
        )
        .unwrap();
    fn find_declared(p: &PlanRef) -> Option<vdm_plan::DeclaredCardinality> {
        if let LogicalPlan::Join { declared, .. } = p.as_ref() {
            return *declared;
        }
        p.children().iter().find_map(|c| find_declared(c))
    }
    assert_eq!(find_declared(&plan), Some(vdm_plan::DeclaredCardinality::ManyToOne));
}

#[test]
fn case_join_sets_intent() {
    let db = db();
    let plan = db
        .plan(
            "select o_orderkey from orders left outer case join customer on o_custkey = c_custkey",
        )
        .unwrap();
    fn find_intent(p: &PlanRef) -> bool {
        if let LogicalPlan::Join { asj_intent, .. } = p.as_ref() {
            return *asj_intent;
        }
        p.children().iter().any(|c| find_intent(c))
    }
    assert!(find_intent(&plan));
}

#[test]
fn group_by_and_having() {
    let db = db();
    let rows = db.query(
        "select o_custkey, count(*), sum(o_total) from orders \
         group by o_custkey having count(*) > 1 order by 1",
    );
    assert_eq!(
        rows,
        vec![vec![Value::Int(1), Value::Int(2), Value::Dec("12.25".parse().unwrap())]]
    );
}

#[test]
fn count_star_and_global_aggregate() {
    let db = db();
    let rows = db.query("select count(*) from orders");
    assert_eq!(rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn group_key_must_cover_bare_columns() {
    let db = db();
    let err = db.plan("select o_custkey, o_total from orders group by o_custkey").unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn union_all_binds_and_runs() {
    let db = db();
    let rows = db
        .query("select c_custkey as k from customer union all select o_orderkey as k from orders");
    assert_eq!(rows.len(), 5);
}

#[test]
fn subquery_in_from() {
    let db = db();
    let rows = db.query(
        "select s.k from (select o_orderkey as k from orders where o_custkey = 1) s order by k",
    );
    assert_eq!(rows.len(), 2);
}

#[test]
fn views_expand_recursively() {
    let mut db = db();
    db.run_ddl("create view v1 as select o_orderkey, o_custkey from orders");
    db.catalog.create_view("v2", "select v1.o_orderkey from v1 where v1.o_custkey = 1").unwrap();
    let rows = db.query("select * from v2 order by 1");
    assert_eq!(rows.len(), 2);
    // Plan views registered in the registry also resolve.
    let plan = db.plan("select * from v1").unwrap();
    assert!(plan_stats(&plan).table_instances >= 1);
}

#[test]
fn view_cycles_are_detected() {
    let mut db = db();
    db.catalog.create_view("a", "select * from b").unwrap();
    db.catalog.create_view("b", "select * from a").unwrap();
    let err = db.plan("select * from a").unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}

#[test]
fn precision_loss_flag_reaches_agg() {
    let db = db();
    let plan =
        db.plan("select allow_precision_loss(sum(round(o_total * 1.11, 2))) from orders").unwrap();
    fn find_flag(p: &PlanRef) -> bool {
        if let LogicalPlan::Aggregate { aggs, .. } = p.as_ref() {
            return aggs.iter().any(|(a, _)| a.allow_precision_loss);
        }
        p.children().iter().any(|c| find_flag(c))
    }
    assert!(find_flag(&plan));
}

#[test]
fn expression_macros_define_and_reuse() {
    let mut db = db();
    db.run_ddl(
        "create view sales as select o_custkey, o_total from orders \
         with expression macros (sum(o_total) / count(*) as avg_order)",
    );
    let rows = db.query(
        "select o_custkey, expression_macro(avg_order) from sales group by o_custkey order by 1",
    );
    assert_eq!(rows.len(), 2);
    // avg for customer 1: (5.00 + 7.25) / 2 = 6.125.
    let v = rows[0][1].as_dec().unwrap();
    assert_eq!(v.round_to(3).to_string(), "6.125");
    // Unknown macro errors cleanly.
    let err = db.plan("select expression_macro(nope) from sales group by o_custkey").unwrap_err();
    assert!(err.to_string().contains("unknown expression macro"), "{err}");
}

#[test]
fn order_by_position_and_limit_offset() {
    let db = db();
    let rows = db.query("select o_orderkey from orders order by 1 desc limit 1 offset 1");
    assert_eq!(rows, vec![vec![Value::Int(101)]]);
}

#[test]
fn distinct_binds() {
    let db = db();
    let rows = db.query("select distinct o_custkey from orders");
    assert_eq!(rows.len(), 2);
}

#[test]
fn ambiguity_and_unknowns_are_errors() {
    let db = db();
    assert!(db.plan("select missing from orders").is_err());
    assert!(db.plan("select * from missing_table").is_err());
    let err = db
        .plan(
            "select o_custkey from orders o \
             join orders o2 on o.o_orderkey = o2.o_orderkey",
        )
        .unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn insert_reorders_and_defaults_null() {
    let mut db = Db::new();
    db.run_ddl(
        "create table t (a bigint primary key, b text, c bigint);
         insert into t (c, a) values (7, 1);",
    );
    let rows = db.query("select * from t");
    assert_eq!(rows, vec![vec![Value::Int(1), Value::Null, Value::Int(7)]]);
}

#[test]
fn from_less_select() {
    let db = Db::new();
    let rows = db.query("select 1 + 1 as two");
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn scalar_functions_bind() {
    let db = db();
    let rows = db.query("select upper(c_name) from customer where c_custkey = 1");
    assert_eq!(rows, vec![vec![Value::str("ALICE")]]);
    assert!(db.plan("select nosuchfunc(c_name) from customer").is_err());
}

#[test]
fn aggregates_rejected_in_where() {
    let db = db();
    let err = db.plan("select o_orderkey from orders where sum(o_total) > 1").unwrap_err();
    assert!(err.to_string().contains("not allowed"), "{err}");
}

#[test]
fn in_list_and_between_desugar() {
    let db = db();
    let rows = db.query("select o_orderkey from orders where o_custkey in (1, 9) order by 1");
    assert_eq!(rows.len(), 3);
    let rows = db.query("select o_orderkey from orders where o_custkey not in (1) order by 1");
    assert_eq!(rows, vec![vec![Value::Int(102)]]);
    let rows =
        db.query("select o_orderkey from orders where o_total between 5.00 and 8.00 order by 1");
    assert_eq!(rows.len(), 2);
    let rows = db
        .query("select o_orderkey from orders where o_total not between 5.00 and 8.00 order by 1");
    assert_eq!(rows, vec![vec![Value::Int(102)]]);
    // Empty-ish edge: NOT IN with a NULL yields no rows (NULL semantics).
    let rows = db.query("select o_orderkey from orders where o_custkey not in (1, null)");
    assert_eq!(rows.len(), 0);
    // IN works in HAVING position too.
    let rows = db.query(
        "select o_custkey, count(*) from orders group by o_custkey having count(*) in (2) order by 1",
    );
    assert_eq!(rows.len(), 1);
}
