//! SQL lexer.

use vdm_types::{Result, VdmError};

/// One lexical token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds. Keywords are not distinguished here — the parser matches
/// identifiers case-insensitively, which keeps the keyword set open for
/// the HANA extensions (`MANY`, `EXACT`, `CASE JOIN`, ...).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (normalized case preserved).
    Ident(String),
    /// Quoted identifier (`"Mixed Case"`).
    QuotedIdent(String),
    /// Numeric literal (lexeme kept verbatim: `42`, `1.5`).
    Number(String),
    /// String literal with quotes removed and `''` unescaped.
    Str(String),
    /// Punctuation / operator: `( ) , . * + - / = < > <= >= <> != ?`.
    Sym(&'static str),
    /// Numbered placeholder `$1`, `$2`, ... (stored 0-based). The anonymous
    /// form `?` lexes as `Sym("?")` and is numbered positionally by the
    /// parser / shape canonicalizer.
    Param(usize),
    Eof,
}

impl TokenKind {
    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            TokenKind::QuotedIdent(s) => format!("identifier \"{s}\""),
            TokenKind::Number(s) => format!("number {s}"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Sym(s) => format!("symbol {s:?}"),
            TokenKind::Param(i) => format!("placeholder ${}", i + 1),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// Lexes `sql` into tokens (trailing [`TokenKind::Eof`] included).
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token { kind: TokenKind::Ident(sql[start..i].to_string()), offset: start });
            continue;
        }
        if c.is_ascii_digit() {
            let mut seen_dot = false;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit() || (bytes[i] == b'.' && !seen_dot))
            {
                if bytes[i] == b'.' {
                    // A dot not followed by a digit terminates the number
                    // (e.g. `1.` is invalid; `t.1` never happens).
                    if !(i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) {
                        break;
                    }
                    seen_dot = true;
                }
                i += 1;
            }
            out.push(Token { kind: TokenKind::Number(sql[start..i].to_string()), offset: start });
            continue;
        }
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(VdmError::Parse(format!(
                        "unterminated string literal at offset {start}"
                    )));
                }
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(bytes[i] as char);
                i += 1;
            }
            out.push(Token { kind: TokenKind::Str(s), offset: start });
            continue;
        }
        if c == '"' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(VdmError::Parse(format!(
                        "unterminated quoted identifier at offset {start}"
                    )));
                }
                if bytes[i] == b'"' {
                    i += 1;
                    break;
                }
                s.push(bytes[i] as char);
                i += 1;
            }
            out.push(Token { kind: TokenKind::QuotedIdent(s), offset: start });
            continue;
        }
        if c == '$' {
            i += 1;
            let digits_start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if digits_start == i {
                return Err(VdmError::Parse(format!(
                    "expected digits after '$' at offset {start} (placeholders are $1, $2, ...)"
                )));
            }
            let n: usize = sql[digits_start..i].parse().map_err(|_| {
                VdmError::Parse(format!("placeholder number too large: ${}", &sql[digits_start..i]))
            })?;
            if n == 0 {
                return Err(VdmError::Parse("placeholders are 1-based: $1, $2, ...".into()));
            }
            out.push(Token { kind: TokenKind::Param(n - 1), offset: start });
            continue;
        }
        // Multi-char operators first.
        let two = sql.get(i..i + 2).unwrap_or("");
        let sym: Option<&'static str> = match two {
            "<=" => Some("<="),
            ">=" => Some(">="),
            "<>" => Some("<>"),
            "!=" => Some("!="),
            _ => None,
        };
        if let Some(s) = sym {
            out.push(Token { kind: TokenKind::Sym(s), offset: start });
            i += 2;
            continue;
        }
        let sym: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            ',' => Some(","),
            '.' => Some("."),
            '*' => Some("*"),
            '+' => Some("+"),
            '-' => Some("-"),
            '/' => Some("/"),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            ';' => Some(";"),
            '?' => Some("?"),
            _ => None,
        };
        match sym {
            Some(s) => {
                out.push(Token { kind: TokenKind::Sym(s), offset: start });
                i += 1;
            }
            None => {
                return Err(VdmError::Parse(format!("unexpected character {c:?} at offset {i}")))
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: sql.len() });
    Ok(out)
}

/// Renders `sql` as a canonical token string for plan-cache keys: plain
/// identifiers/keywords lowercased, literals kept verbatim, anonymous `?`
/// placeholders numbered positionally so `?` and `$1` produce the same
/// shape. Whitespace and comments never affect the result. Purely lexical —
/// no parse, so the hot cache-hit path pays only the lexer.
pub fn canonical_shape(sql: &str) -> Result<String> {
    Ok(canonical_shapes(sql)?.join(" ; "))
}

/// Per-statement [`canonical_shape`]s of a `;`-separated script, in
/// statement order (empty segments — e.g. a trailing `;` — are skipped,
/// matching what the parser returns). Anonymous `?` numbering restarts at
/// `$1` for each statement, mirroring the parser's per-statement parameter
/// spaces.
pub fn canonical_shapes(sql: &str) -> Result<Vec<String>> {
    let tokens = lex(sql)?;
    let mut shapes = Vec::new();
    let mut out = String::new();
    let mut anon = 0usize;
    for t in &tokens {
        if t.kind == TokenKind::Eof || t.kind == TokenKind::Sym(";") {
            if !out.is_empty() {
                shapes.push(std::mem::take(&mut out));
            }
            anon = 0;
            if t.kind == TokenKind::Eof {
                break;
            }
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.kind {
            TokenKind::Ident(s) => {
                for c in s.chars() {
                    out.push(c.to_ascii_lowercase());
                }
            }
            TokenKind::QuotedIdent(s) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            TokenKind::Number(s) => out.push_str(s),
            TokenKind::Str(s) => {
                out.push('\'');
                for c in s.chars() {
                    if c == '\'' {
                        out.push('\'');
                    }
                    out.push(c);
                }
                out.push('\'');
            }
            TokenKind::Sym("?") => {
                anon += 1;
                out.push_str(&format!("${anon}"));
            }
            TokenKind::Sym(s) => out.push_str(s),
            TokenKind::Param(i) => out.push_str(&format!("${}", i + 1)),
            TokenKind::Eof => unreachable!("loop breaks at Eof"),
        }
    }
    Ok(shapes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_placeholders() {
        let k = kinds("select * from t where a = ? and b = $2");
        assert!(k.contains(&TokenKind::Sym("?")));
        assert!(k.contains(&TokenKind::Param(1)));
        assert!(lex("select $x").is_err());
        assert!(lex("select $0").is_err());
    }

    #[test]
    fn canonical_shape_normalizes() {
        let a = canonical_shape("SELECT  a,b FROM t\nWHERE a = ? -- c\n").unwrap();
        let b = canonical_shape("select a , b from t where a = $1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, "select a , b from t where a = $1");
        // Literals and quoted identifiers stay verbatim.
        let c = canonical_shape("select \"Mixed\" from t where s = 'It''s'").unwrap();
        assert_eq!(c, "select \"Mixed\" from t where s = 'It''s'");
        // Different literals are different shapes.
        assert_ne!(
            canonical_shape("select * from t where a = 1").unwrap(),
            canonical_shape("select * from t where a = 2").unwrap()
        );
        // Scripts split per statement; `?` numbering restarts each time.
        let shapes = canonical_shapes("select ?; select ? ;").unwrap();
        assert_eq!(shapes, vec!["select $1".to_string(), "select $1".to_string()]);
        assert_eq!(canonical_shape("select 1;").unwrap(), "select 1");
    }

    #[test]
    fn lexes_basic_select() {
        let k = kinds("select a, b from t where a <= 1.5");
        assert_eq!(k[0], TokenKind::Ident("select".into()));
        assert!(k.contains(&TokenKind::Sym("<=")));
        assert!(k.contains(&TokenKind::Number("1.5".into())));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_escapes_and_comments() {
        let k = kinds("select 'it''s' -- trailing comment\nfrom t");
        assert!(k.contains(&TokenKind::Str("it's".into())));
        assert!(k.contains(&TokenKind::Ident("from".into())));
    }

    #[test]
    fn quoted_identifiers() {
        let k = kinds("select \"Mixed Case\" from t");
        assert!(k.contains(&TokenKind::QuotedIdent("Mixed Case".into())));
    }

    #[test]
    fn number_dot_boundary() {
        // `count(*)` style and qualified names must not eat dots.
        let k = kinds("t.col");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Sym("."),
                TokenKind::Ident("col".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("select ~").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
