//! SQL front end: lexer, parser, and binder.
//!
//! Covers the SQL subset the paper's workloads need — SELECT with joins,
//! GROUP BY/HAVING, UNION ALL, ORDER BY/LIMIT/OFFSET, subqueries in FROM,
//! CREATE TABLE/VIEW, INSERT — plus the four HANA extensions the paper
//! introduces:
//!
//! * **join cardinality** (§7.3): `LEFT OUTER MANY TO ONE JOIN`,
//!   `INNER MANY TO EXACT ONE JOIN`;
//! * **case join** (§6.3): `LEFT OUTER CASE JOIN` — declares ASJ intent;
//! * **`ALLOW_PRECISION_LOSS(...)`** (§7.1) around aggregates;
//! * **expression macros** (§7.2): `CREATE VIEW ... WITH EXPRESSION MACROS
//!   (expr AS name, ...)` and `EXPRESSION_MACRO(name)` in queries.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::{SelectStmt, Statement};
pub use binder::{Binder, MacroRegistry};
pub use lexer::{canonical_shape, canonical_shapes};
pub use parser::{parse, parse_one, parse_one_with_params};
