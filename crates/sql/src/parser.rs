//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};
use vdm_plan::DeclaredCardinality;
use vdm_types::{Result, VdmError};

/// Parses a string of `;`-separated statements.
pub fn parse(sql: &str) -> Result<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0, anon_params: 0, max_param: None };
    let mut out = Vec::new();
    loop {
        while p.eat_sym(";") {}
        if p.at_eof() {
            break;
        }
        p.anon_params = 0;
        out.push(p.statement()?);
    }
    if out.is_empty() {
        return Err(VdmError::Parse("empty statement".into()));
    }
    Ok(out)
}

/// Parses exactly one statement.
pub fn parse_one(sql: &str) -> Result<Statement> {
    Ok(parse_one_with_params(sql)?.0)
}

/// Parses exactly one statement, also returning the number of placeholder
/// parameters it references (`max index + 1`, so `$3` alone means 3).
pub fn parse_one_with_params(sql: &str) -> Result<(Statement, usize)> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0, anon_params: 0, max_param: None };
    while p.eat_sym(";") {}
    let stmt = p.statement()?;
    while p.eat_sym(";") {}
    if !p.at_eof() {
        return p.err("end of statement");
    }
    Ok((stmt, p.max_param.map_or(0, |m| m + 1)))
}

/// Maximum expression/FROM nesting depth — recursion in the parser is
/// bounded so hostile inputs error instead of overflowing the stack.
const MAX_RECURSION: u32 = 96;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
    /// Anonymous `?` placeholders seen so far (they number positionally).
    anon_params: usize,
    /// Highest placeholder index referenced (0-based).
    max_param: Option<usize>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err<T>(&self, what: &str) -> Result<T> {
        Err(VdmError::Parse(format!(
            "expected {what}, found {} at offset {}",
            self.peek().describe(),
            self.tokens[self.pos].offset
        )))
    }

    /// Case-insensitive keyword check.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Keyword check one token ahead.
    fn at_kw_next(&self, kw: &str) -> bool {
        matches!(self.peek_at(1), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(&format!("keyword {kw}"))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), TokenKind::Sym(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err(&format!("{sym:?}"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.bump();
                Ok(s)
            }
            _ => self.err("identifier"),
        }
    }

    fn number_u64(&mut self) -> Result<u64> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                n.parse::<u64>().map_err(|_| VdmError::Parse(format!("expected integer, got {n}")))
            }
            _ => self.err("integer"),
        }
    }

    // ------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("explain") {
            self.bump();
            if self.at_kw("analyze") {
                self.bump();
                return Ok(Statement::ExplainAnalyze(Box::new(self.statement()?)));
            }
            if self.at_kw("trace") {
                self.bump();
                return Ok(Statement::ExplainTrace(Box::new(self.statement()?)));
            }
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.at_kw("select") {
            return Ok(Statement::Select(self.select_with_unions()?));
        }
        if self.at_kw("create") {
            return self.create();
        }
        if self.at_kw("insert") {
            return self.insert();
        }
        if self.at_kw("drop") {
            return self.drop_statement();
        }
        self.err("statement (SELECT, CREATE, DROP, INSERT, EXPLAIN)")
    }

    fn drop_statement(&mut self) -> Result<Statement> {
        self.expect_kw("drop")?;
        let is_table = if self.eat_kw("table") {
            true
        } else if self.eat_kw("view") {
            false
        } else {
            return self.err("TABLE or VIEW");
        };
        let if_exists = if self.at_kw("if") {
            self.bump();
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(if is_table {
            Statement::DropTable { name, if_exists }
        } else {
            Statement::DropView { name, if_exists }
        })
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        let or_replace = if self.at_kw("or") {
            self.bump();
            self.expect_kw("replace")?;
            true
        } else {
            false
        };
        if self.eat_kw("table") {
            if or_replace {
                return Err(VdmError::Parse("CREATE OR REPLACE TABLE is not supported".into()));
            }
            return self.create_table();
        }
        if self.eat_kw("view") {
            return self.create_view(or_replace);
        }
        self.err("TABLE or VIEW")
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        let mut uniques = Vec::new();
        let mut foreign_keys = Vec::new();
        loop {
            if self.at_kw("primary") {
                self.bump();
                self.expect_kw("key")?;
                primary_key = self.paren_name_list()?;
            } else if self.at_kw("unique") {
                self.bump();
                uniques.push(self.paren_name_list()?);
            } else if self.at_kw("foreign") {
                self.bump();
                self.expect_kw("key")?;
                let cols = self.paren_name_list()?;
                self.expect_kw("references")?;
                let ref_table = self.ident()?;
                let ref_cols = self.paren_name_list()?;
                foreign_keys.push((cols, ref_table, ref_cols));
            } else {
                let col_name = self.ident()?;
                let type_name = self.ident()?;
                let mut scale = None;
                if self.eat_sym("(") {
                    let precision = self.number_u64()?;
                    let _ = precision;
                    if self.eat_sym(",") {
                        scale = Some(self.number_u64()? as u8);
                    }
                    self.expect_sym(")")?;
                }
                let mut not_null = false;
                if self.at_kw("not") {
                    self.bump();
                    self.expect_kw("null")?;
                    not_null = true;
                } else if self.at_kw("primary") {
                    // Inline `PRIMARY KEY`.
                    self.bump();
                    self.expect_kw("key")?;
                    primary_key = vec![col_name.clone()];
                    not_null = true;
                }
                columns.push(ColumnAst { name: col_name, type_name, scale, not_null });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
            uniques,
            foreign_keys,
        }))
    }

    fn create_view(&mut self, or_replace: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("as")?;
        self.expect_keyword_lookahead("select")?;
        let query = self.select_with_unions()?;
        let mut macros = Vec::new();
        if self.at_kw("with") {
            self.bump();
            self.expect_kw("expression")?;
            self.expect_kw("macros")?;
            self.expect_sym("(")?;
            loop {
                let body = self.expr()?;
                self.expect_kw("as")?;
                let mname = self.ident()?;
                macros.push(MacroAst { name: mname, body });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        Ok(Statement::CreateView { name, or_replace, query, macros })
    }

    fn expect_keyword_lookahead(&self, kw: &str) -> Result<()> {
        if self.at_kw(kw) {
            Ok(())
        } else {
            Err(VdmError::Parse(format!("expected {kw}, found {}", self.peek().describe())))
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if matches!(self.peek(), TokenKind::Sym("(")) {
            Some(self.paren_name_list()?)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn paren_name_list(&mut self) -> Result<Vec<String>> {
        self.expect_sym("(")?;
        let mut out = Vec::new();
        loop {
            out.push(self.ident()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(out)
    }

    // ----------------------------------------------------------- SELECT

    fn select_with_unions(&mut self) -> Result<SelectStmt> {
        let mut first = self.select_core()?;
        while self.at_kw("union") {
            self.bump();
            self.expect_kw("all")?;
            self.expect_keyword_lookahead("select")?;
            first.union_all.push(self.select_core()?);
        }
        // ORDER BY / LIMIT / OFFSET apply to the whole union.
        if self.at_kw("order") {
            self.bump();
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                first.order_by.push((e, asc));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            first.limit = Some(self.number_u64()?);
        }
        if self.eat_kw("offset") {
            first.offset = Some(self.number_u64()?);
        }
        Ok(first)
    }

    fn select_core(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), TokenKind::Ident(_) | TokenKind::QuotedIdent(_))
                && matches!(self.peek_at(1), TokenKind::Sym("."))
                && matches!(self.peek_at(2), TokenKind::Sym("*"))
            {
                let q = self.ident()?;
                self.bump(); // .
                self.bump(); // *
                items.push(SelectItem::QualifiedWildcard(q));
            } else {
                let expr = self.expr()?;
                // Explicit `AS alias` or a bare trailing identifier.
                let has_alias = self.eat_kw("as")
                    || matches!(self.peek(), TokenKind::Ident(s) if !is_clause_keyword(s));
                let alias = if has_alias { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        let from = if self.eat_kw("from") { Some(self.table_ref()?) } else { None };
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.at_kw("group") {
            self.bump();
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            union_all: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        })
    }

    // ------------------------------------------------------- FROM / JOIN

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            // JOIN | INNER JOIN | LEFT [OUTER] [<cardinality>|CASE] JOIN.
            let kind = if self.at_kw("join") {
                AstJoinKind::Inner
            } else if self.at_kw("inner") {
                self.bump();
                AstJoinKind::Inner
            } else if self.at_kw("left") {
                self.bump();
                self.eat_kw("outer");
                AstJoinKind::LeftOuter
            } else {
                break;
            };
            // Optional cardinality / CASE annotations before JOIN.
            let mut cardinality = None;
            let mut case_join = false;
            if self.at_kw("many") {
                self.bump();
                self.expect_kw("to")?;
                if self.eat_kw("exact") {
                    self.expect_kw("one")?;
                    cardinality = Some(DeclaredCardinality::ManyToExactOne);
                } else {
                    self.expect_kw("one")?;
                    cardinality = Some(DeclaredCardinality::ManyToOne);
                }
            } else if self.at_kw("case") {
                self.bump();
                case_join = true;
            }
            self.expect_kw("join")?;
            let right = self.table_factor()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                cardinality,
                case_join,
                on: Some(on),
            };
        }
        Ok(left)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat_sym("(") {
            if self.at_kw("select") {
                let query = self.select_with_unions()?;
                self.expect_sym(")")?;
                self.eat_kw("as");
                let alias = self.ident()?;
                return Ok(TableRef::Subquery { query: Box::new(query), alias });
            }
            // Parenthesized join tree.
            let inner = self.table_ref()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let has_alias = self.eat_kw("as")
            || matches!(self.peek(), TokenKind::Ident(s) if !is_clause_keyword(s));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(TableRef::Named { name, alias })
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<AstExpr> {
        self.depth += 1;
        if self.depth > MAX_RECURSION {
            self.depth -= 1;
            return Err(VdmError::Parse("expression nesting too deep".into()));
        }
        let out = self.or_expr();
        self.depth -= 1;
        out
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left =
                AstExpr::Binary { op: AstBinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left =
                AstExpr::Binary { op: AstBinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL.
        if self.at_kw("is") {
            self.bump();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN (...) / [NOT] BETWEEN lo AND hi / [NOT] LIKE 'pat'.
        let negated = if self.at_kw("not")
            && (self.at_kw_next("in") || self.at_kw_next("between") || self.at_kw_next("like"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            let call =
                AstExpr::Func { name: "like".into(), args: vec![left, pattern], distinct: false };
            return Ok(if negated { AstExpr::Not(Box::new(call)) } else { call });
        }
        if self.eat_kw("in") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(AstExpr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return self.err("IN or BETWEEN after NOT");
        }
        let op = match self.peek() {
            TokenKind::Sym("=") => Some(AstBinOp::Eq),
            TokenKind::Sym("<>") | TokenKind::Sym("!=") => Some(AstBinOp::NotEq),
            TokenKind::Sym("<") => Some(AstBinOp::Lt),
            TokenKind::Sym("<=") => Some(AstBinOp::LtEq),
            TokenKind::Sym(">") => Some(AstBinOp::Gt),
            TokenKind::Sym(">=") => Some(AstBinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym("+") => AstBinOp::Add,
                TokenKind::Sym("-") => AstBinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym("*") => AstBinOp::Mul,
                TokenKind::Sym("/") => AstBinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat_sym("-") {
            // Negation as `0 - x`.
            let inner = self.unary()?;
            return Ok(AstExpr::Binary {
                op: AstBinOp::Sub,
                left: Box::new(AstExpr::Number("0".into())),
                right: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(AstExpr::Number(n))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(AstExpr::Str(s))
            }
            TokenKind::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Sym("*") => {
                self.bump();
                Ok(AstExpr::Star)
            }
            TokenKind::Sym("?") => {
                self.bump();
                let idx = self.anon_params;
                self.anon_params += 1;
                self.max_param = Some(self.max_param.map_or(idx, |m| m.max(idx)));
                Ok(AstExpr::Param(idx))
            }
            TokenKind::Param(idx) => {
                self.bump();
                self.max_param = Some(self.max_param.map_or(idx, |m| m.max(idx)));
                Ok(AstExpr::Param(idx))
            }
            TokenKind::Ident(_) | TokenKind::QuotedIdent(_) => self.ident_or_call(),
            _ => self.err("expression"),
        }
    }

    fn ident_or_call(&mut self) -> Result<AstExpr> {
        // Keywords acting as expression heads.
        if self.at_kw("case") {
            return self.case_expr();
        }
        if self.at_kw("cast") {
            self.bump();
            self.expect_sym("(")?;
            let e = self.expr()?;
            self.expect_kw("as")?;
            let type_name = self.ident()?;
            let mut scale = None;
            if self.eat_sym("(") {
                let _precision = self.number_u64()?;
                if self.eat_sym(",") {
                    scale = Some(self.number_u64()? as u8);
                }
                self.expect_sym(")")?;
            }
            self.expect_sym(")")?;
            return Ok(AstExpr::Cast { expr: Box::new(e), type_name, scale });
        }
        if self.at_kw("null") {
            self.bump();
            return Ok(AstExpr::Null);
        }
        if self.at_kw("true") {
            self.bump();
            return Ok(AstExpr::Bool(true));
        }
        if self.at_kw("false") {
            self.bump();
            return Ok(AstExpr::Bool(false));
        }
        let name = self.ident()?;
        // Function call?
        if matches!(self.peek(), TokenKind::Sym("(")) {
            self.bump();
            if name.eq_ignore_ascii_case("allow_precision_loss") {
                let inner = self.expr()?;
                self.expect_sym(")")?;
                return Ok(AstExpr::PrecisionLoss(Box::new(inner)));
            }
            if name.eq_ignore_ascii_case("expression_macro") {
                let mname = self.ident()?;
                self.expect_sym(")")?;
                return Ok(AstExpr::MacroRef(mname));
            }
            let distinct = self.eat_kw("distinct");
            let mut args = Vec::new();
            if !matches!(self.peek(), TokenKind::Sym(")")) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            return Ok(AstExpr::Func { name, args, distinct });
        }
        // Qualified identifier.
        let mut parts = vec![name];
        while self.eat_sym(".") {
            parts.push(self.ident()?);
        }
        Ok(AstExpr::Ident(parts))
    }

    fn case_expr(&mut self) -> Result<AstExpr> {
        self.expect_kw("case")?;
        let mut branches = Vec::new();
        // Optional operand form: CASE x WHEN v THEN r ...
        let operand = if !self.at_kw("when") { Some(self.expr()?) } else { None };
        while self.eat_kw("when") {
            let mut cond = self.expr()?;
            if let Some(op) = &operand {
                cond = AstExpr::Binary {
                    op: AstBinOp::Eq,
                    left: Box::new(op.clone()),
                    right: Box::new(cond),
                };
            }
            self.expect_kw("then")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        let else_expr = if self.eat_kw("else") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("end")?;
        if branches.is_empty() {
            return Err(VdmError::Parse("CASE requires at least one WHEN".into()));
        }
        Ok(AstExpr::Case { branches, else_expr })
    }
}

/// Keywords that terminate an implicit alias position.
fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "from", "where", "group", "having", "order", "limit", "offset", "union", "join", "inner",
        "left", "right", "full", "cross", "on", "as", "and", "or", "not", "when", "then", "else",
        "end", "asc", "desc", "is", "null", "with", "case", "many", "in", "between", "like",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_one(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_select() {
        let s = sel("select a, b as bee from t where a > 1");
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
        assert!(matches!(&s.items[1], SelectItem::Expr { alias: Some(a), .. } if a == "bee"));
    }

    #[test]
    fn parses_joins_with_cardinality_and_case_join() {
        let s = sel("select * from a left outer many to one join b on a.k = b.k \
             left outer case join c on a.k = c.k");
        let TableRef::Join { left, cardinality, case_join, .. } = s.from.unwrap() else {
            panic!("expected join");
        };
        assert!(case_join);
        assert_eq!(cardinality, None);
        let TableRef::Join { cardinality, case_join, .. } = *left else {
            panic!("expected nested join");
        };
        assert_eq!(cardinality, Some(DeclaredCardinality::ManyToOne));
        assert!(!case_join);
    }

    #[test]
    fn parses_many_to_exact_one() {
        let s = sel("select * from a inner many to exact one join b on a.k = b.k");
        let TableRef::Join { kind, cardinality, .. } = s.from.unwrap() else {
            panic!("expected join");
        };
        assert_eq!(kind, AstJoinKind::Inner);
        assert_eq!(cardinality, Some(DeclaredCardinality::ManyToExactOne));
    }

    #[test]
    fn parses_group_by_having_order_limit() {
        let s = sel("select c, count(*) from t group by c having count(*) > 2 \
             order by c desc limit 10 offset 5");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].1, "desc");
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn parses_union_all_chain() {
        let s = sel("select a from t union all select a from u union all select a from v");
        assert_eq!(s.union_all.len(), 2);
    }

    #[test]
    fn parses_subquery_and_qualified_wildcard() {
        let s = sel("select t.*, x.n from (select a as n from u) x join t on x.n = t.k");
        assert!(matches!(&s.items[0], SelectItem::QualifiedWildcard(q) if q == "t"));
        let TableRef::Join { left, .. } = s.from.unwrap() else { panic!() };
        assert!(matches!(*left, TableRef::Subquery { .. }));
        // Comma joins are unsupported — explicit JOIN syntax only.
        assert!(parse("select 1 from a, b").is_err());
    }

    #[test]
    fn parses_precision_loss_and_macro() {
        let s = sel("select allow_precision_loss(sum(round(p * 1.11, 2))) from t");
        assert!(matches!(&s.items[0], SelectItem::Expr { expr: AstExpr::PrecisionLoss(_), .. }));
        let s = sel("select o, expression_macro(margin) from v group by o");
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { expr: AstExpr::MacroRef(m), .. } if m == "margin"
        ));
    }

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse_one(
            "create table t (a bigint not null, b decimal(10,2), c varchar(20), \
             primary key (a), unique (b, c), \
             foreign key (b) references u (x))",
        )
        .unwrap();
        let Statement::CreateTable(t) = stmt else { panic!() };
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.primary_key, vec!["a"]);
        assert_eq!(t.uniques.len(), 1);
        assert_eq!(t.foreign_keys.len(), 1);
        assert_eq!(t.columns[1].scale, Some(2));
    }

    #[test]
    fn parses_create_view_with_macros() {
        let stmt = parse_one(
            "create view v as select * from t with expression macros \
             (1 - sum(c) / sum(p) as margin)",
        )
        .unwrap();
        let Statement::CreateView { macros, .. } = stmt else { panic!() };
        assert_eq!(macros.len(), 1);
        assert_eq!(macros[0].name, "margin");
    }

    #[test]
    fn parses_insert() {
        let stmt = parse_one("insert into t (a, b) values (1, 'x'), (2, null)").unwrap();
        let Statement::Insert { rows, columns, .. } = stmt else { panic!() };
        assert_eq!(rows.len(), 2);
        assert_eq!(columns.unwrap().len(), 2);
    }

    #[test]
    fn parses_case_expressions() {
        let s = sel("select case when a = 1 then 'one' else 'many' end from t");
        assert!(matches!(&s.items[0], SelectItem::Expr { expr: AstExpr::Case { .. }, .. }));
        let s = sel("select case a when 1 then 'one' when 2 then 'two' end x from t");
        let SelectItem::Expr { expr: AstExpr::Case { branches, .. }, .. } = &s.items[0] else {
            panic!();
        };
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported_with_position() {
        let err = parse("select from where").unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
        assert!(parse("").is_err());
        assert!(parse("frobnicate t").is_err());
    }

    #[test]
    fn parses_explain() {
        let stmt = parse_one("explain select 1 from t").unwrap();
        assert!(matches!(stmt, Statement::Explain(_)));
    }

    #[test]
    fn parses_explain_analyze() {
        let stmt = parse_one("explain analyze select 1 from t").unwrap();
        let Statement::ExplainAnalyze(inner) = stmt else {
            panic!("expected ExplainAnalyze");
        };
        assert!(matches!(*inner, Statement::Select(_)));
        // `analyze` stays usable as an ordinary identifier elsewhere.
        assert!(parse_one("select analyze from t").is_ok());
    }

    #[test]
    fn parses_placeholders_and_counts_them() {
        let (stmt, n) = parse_one_with_params("select * from t where a = ? and b > ?").unwrap();
        assert_eq!(n, 2);
        let Statement::Select(s) = stmt else { panic!() };
        let Some(AstExpr::Binary { left, .. }) = s.where_clause else { panic!() };
        let AstExpr::Binary { right, .. } = *left else { panic!() };
        assert_eq!(*right, AstExpr::Param(0));
        // Explicit numbering can repeat and skip order.
        let (_, n) = parse_one_with_params("select * from t where a = $2 or b = $2").unwrap();
        assert_eq!(n, 2);
        let (_, n) = parse_one_with_params("select 1 from t").unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn parses_drop_statements() {
        assert_eq!(
            parse_one("drop table t").unwrap(),
            Statement::DropTable { name: "t".into(), if_exists: false }
        );
        assert_eq!(
            parse_one("drop view if exists v").unwrap(),
            Statement::DropView { name: "v".into(), if_exists: true }
        );
        assert!(parse_one("drop index i").is_err());
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts = parse("select 1 from t; select 2 from u;").unwrap();
        assert_eq!(stmts.len(), 2);
    }
}
