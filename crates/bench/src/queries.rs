//! The paper's evaluation queries, built against a generated TPC-H catalog.
//!
//! Fig. 5 (UAJ 1/2/3/1a/2a/3a/1b), Fig. 6 (limit on AJ), Fig. 10 (ASJ
//! a/b/c), and Fig. 12 (UNION ALL UAJ patterns). All seven Fig. 5 queries
//! can be optimized into a single projection; the harness checks which
//! profile manages it.

use std::sync::Arc;
use vdm_catalog::{Catalog, TableDef};
use vdm_expr::{AggExpr, AggFunc, BinOp, Expr};
use vdm_plan::{JoinKind, LogicalPlan, PlanRef, SortKey};
use vdm_types::Result;

fn t(catalog: &Catalog, name: &str) -> Arc<TableDef> {
    catalog.table(name).unwrap_or_else(|| panic!("TPC-H table {name} missing"))
}

/// `select o_orderkey from orders LEFT JOIN <augmenter> ON <keys>`.
fn uaj_query(catalog: &Catalog, augmenter: PlanRef, right_key: usize) -> Result<PlanRef> {
    uaj_query_on(catalog, augmenter, 0, right_key)
}

fn uaj_query_on(
    catalog: &Catalog,
    augmenter: PlanRef,
    left_key: usize,
    right_key: usize,
) -> Result<PlanRef> {
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(t(catalog, "orders")),
        augmenter,
        vec![(left_key, right_key)],
    )?;
    LogicalPlan::project(join, vec![(Expr::col(0), "o_orderkey".into())])
}

/// UAJ 1: augmenter is `customer` keyed by primary key (AJ 2a-1).
pub fn uaj1(catalog: &Catalog) -> Result<PlanRef> {
    uaj_query_on(catalog, LogicalPlan::scan(t(catalog, "customer")), 1, 0)
}

/// UAJ 2: augmenter is a GROUP BY over lineitem (AJ 2a-2).
pub fn uaj2(catalog: &Catalog) -> Result<PlanRef> {
    let agg = LogicalPlan::aggregate(
        LogicalPlan::scan(t(catalog, "lineitem")),
        vec![(Expr::col(0), "l_orderkey".into())],
        vec![(AggExpr::count_star(), "cnt".into())],
    )?;
    uaj_query(catalog, agg, 0)
}

/// UAJ 3: augmenter is lineitem filtered to `l_linenumber = 1` (AJ 2a-3).
pub fn uaj3(catalog: &Catalog) -> Result<PlanRef> {
    let f = LogicalPlan::filter(
        LogicalPlan::scan(t(catalog, "lineitem")),
        Expr::col(1).eq(Expr::int(1)),
    )?;
    uaj_query(catalog, f, 0)
}

/// UAJ 1a: a non-duplicating join added to the augmenter.
pub fn uaj1a(catalog: &Catalog) -> Result<PlanRef> {
    let j = LogicalPlan::inner_join(
        LogicalPlan::scan(t(catalog, "customer")),
        LogicalPlan::scan(t(catalog, "nation")),
        vec![(2, 0)],
    )?;
    uaj_query_on(catalog, j, 1, 0)
}

/// UAJ 2a: GROUP BY over (lineitem ⋈ part).
pub fn uaj2a(catalog: &Catalog) -> Result<PlanRef> {
    let j = LogicalPlan::inner_join(
        LogicalPlan::scan(t(catalog, "lineitem")),
        LogicalPlan::scan(t(catalog, "part")),
        vec![(2, 0)],
    )?;
    let agg = LogicalPlan::aggregate(
        j,
        vec![(Expr::col(0), "l_orderkey".into())],
        vec![(AggExpr::new(AggFunc::Sum, Expr::col(4)), "qty".into())],
    )?;
    uaj_query(catalog, agg, 0)
}

/// UAJ 3a: constant filter over (lineitem ⋈ part).
pub fn uaj3a(catalog: &Catalog) -> Result<PlanRef> {
    let j = LogicalPlan::inner_join(
        LogicalPlan::scan(t(catalog, "lineitem")),
        LogicalPlan::scan(t(catalog, "part")),
        vec![(2, 0)],
    )?;
    let f = LogicalPlan::filter(j, Expr::col(1).eq(Expr::int(1)))?;
    uaj_query(catalog, f, 0)
}

/// UAJ 1b: ORDER BY + LIMIT over the augmenter.
pub fn uaj1b(catalog: &Catalog) -> Result<PlanRef> {
    let s = LogicalPlan::sort(LogicalPlan::scan(t(catalog, "customer")), vec![SortKey::desc(3)])?;
    let l = LogicalPlan::limit(s, 0, Some(10));
    uaj_query_on(catalog, l, 1, 0)
}

/// The seven Fig. 5 queries in paper order.
pub fn all_uaj(catalog: &Catalog) -> Vec<(&'static str, PlanRef)> {
    vec![
        ("UAJ 1", uaj1(catalog).expect("uaj1")),
        ("UAJ 2", uaj2(catalog).expect("uaj2")),
        ("UAJ 3", uaj3(catalog).expect("uaj3")),
        ("UAJ 1a", uaj1a(catalog).expect("uaj1a")),
        ("UAJ 2a", uaj2a(catalog).expect("uaj2a")),
        ("UAJ 3a", uaj3a(catalog).expect("uaj3a")),
        ("UAJ 1b", uaj1b(catalog).expect("uaj1b")),
    ]
}

/// Fig. 6: `select * from orders ⟕ customer limit 100 offset 1`.
pub fn paging(catalog: &Catalog) -> Result<PlanRef> {
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(t(catalog, "orders")),
        LogicalPlan::scan(t(catalog, "customer")),
        vec![(1, 0)],
    )?;
    Ok(LogicalPlan::limit(join, 1, Some(100)))
}

/// Fig. 10(a): bare self-join on key, augmenter field used.
pub fn asj_basic(catalog: &Catalog) -> Result<PlanRef> {
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(t(catalog, "customer")),
        LogicalPlan::scan(t(catalog, "customer")),
        vec![(0, 0)],
    )?;
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(6), "name".into())])
}

/// Fig. 10(b): the anchor is a subquery.
pub fn asj_subquery(catalog: &Catalog) -> Result<PlanRef> {
    let anchor = LogicalPlan::project(
        LogicalPlan::filter(
            LogicalPlan::scan(t(catalog, "customer")),
            Expr::col(3).binary(BinOp::Gt, Expr::int(0)),
        )?,
        vec![(Expr::col(0), "k".into()), (Expr::col(3), "bal".into())],
    )?;
    let join =
        LogicalPlan::left_join(anchor, LogicalPlan::scan(t(catalog, "customer")), vec![(0, 0)])?;
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(3), "name".into())])
}

/// Fig. 10(c): filtered augmenter whose predicate subsumes the anchor's.
pub fn asj_filtered(catalog: &Catalog) -> Result<PlanRef> {
    let pred = |_: ()| Expr::col(2).eq(Expr::int(1));
    let anchor = LogicalPlan::filter(LogicalPlan::scan(t(catalog, "customer")), pred(()))?;
    let aug = LogicalPlan::filter(LogicalPlan::scan(t(catalog, "customer")), pred(()))?;
    let join = LogicalPlan::left_join(anchor, aug, vec![(0, 0)])?;
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(6), "name".into())])
}

/// Fig. 13(a): anchor-side UNION ALL with the augmenter table in both
/// children (the extended ASJ traversal).
pub fn asj_anchor_union(catalog: &Catalog) -> Result<PlanRef> {
    let mk = |lo: i64, hi: i64| -> Result<PlanRef> {
        LogicalPlan::filter(
            LogicalPlan::scan(t(catalog, "customer")),
            Expr::col(2)
                .binary(BinOp::GtEq, Expr::int(lo))
                .and(Expr::col(2).binary(BinOp::Lt, Expr::int(hi))),
        )
    };
    let anchor = LogicalPlan::union_all(vec![mk(0, 8)?, mk(8, 100)?])?;
    let join =
        LogicalPlan::left_join(anchor, LogicalPlan::scan(t(catalog, "customer")), vec![(0, 0)])?;
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(6), "name".into())])
}

/// The three Fig. 10 queries in paper order.
pub fn all_asj(catalog: &Catalog) -> Vec<(&'static str, PlanRef)> {
    vec![
        ("Fig. 10(a)", asj_basic(catalog).expect("asj a")),
        ("Fig. 10(b)", asj_subquery(catalog).expect("asj b")),
        ("Fig. 10(c)", asj_filtered(catalog).expect("asj c")),
    ]
}

/// Fig. 12(a) via Fig. 11(a): augmenter is a UNION ALL of disjoint subsets.
pub fn union_disjoint(catalog: &Catalog) -> Result<PlanRef> {
    let a = LogicalPlan::filter(
        LogicalPlan::scan(t(catalog, "customer")),
        Expr::col(2).eq(Expr::int(1)),
    )?;
    let b = LogicalPlan::filter(
        LogicalPlan::scan(t(catalog, "customer")),
        Expr::col(2).binary(BinOp::NotEq, Expr::int(1)),
    )?;
    let u = LogicalPlan::union_all(vec![a, b])?;
    uaj_query_on(catalog, u, 1, 0)
}

/// Fig. 12(b) via Fig. 11(b): augmenter is a branch-id UNION ALL.
pub fn union_branch_id(catalog: &Catalog) -> Result<PlanRef> {
    let mk = |bid: i64| -> Result<PlanRef> {
        LogicalPlan::project(
            LogicalPlan::scan(t(catalog, "customer")),
            vec![
                (Expr::int(bid), "bid".into()),
                (Expr::col(0), "key".into()),
                (Expr::col(1), "name".into()),
            ],
        )
    };
    let u = LogicalPlan::union_all(vec![mk(0)?, mk(1)?])?;
    let left = LogicalPlan::project(
        LogicalPlan::scan(t(catalog, "orders")),
        vec![
            (Expr::col(0), "o_orderkey".into()),
            (Expr::col(1), "o_custkey".into()),
            (Expr::int(0), "probe_bid".into()),
        ],
    )?;
    let join = LogicalPlan::left_join(left, u, vec![(2, 0), (1, 1)])?;
    LogicalPlan::project(join, vec![(Expr::col(0), "o_orderkey".into())])
}

/// The two Fig. 12 queries in paper order (labelled by their Fig. 11
/// source patterns, as Table 4 does).
pub fn all_union(catalog: &Catalog) -> Vec<(&'static str, PlanRef)> {
    vec![
        ("Fig. 11(a)", union_disjoint(catalog).expect("union a")),
        ("Fig. 11(b)", union_branch_id(catalog).expect("union b")),
    ]
}

/// §7.1: `sum(round(l_extendedprice * 1.11, 2))` over lineitem, with or
/// without `allow_precision_loss`.
pub fn precision_query(catalog: &Catalog, allow: bool) -> Result<PlanRef> {
    let arg = Expr::Func {
        func: vdm_expr::ScalarFunc::Round,
        args: vec![
            Expr::col(5).binary(
                BinOp::Mul,
                Expr::Lit(vdm_types::Value::Dec("1.11".parse().expect("literal"))),
            ),
            Expr::int(2),
        ],
    };
    let mut agg = AggExpr::new(AggFunc::Sum, arg);
    agg.allow_precision_loss = allow;
    LogicalPlan::aggregate(
        LogicalPlan::scan(t(catalog, "lineitem")),
        vec![(Expr::col(3), "supp".into())],
        vec![(agg, "taxed".into())],
    )
}

/// True when some Limit sits strictly below some Join (the Fig. 6 check).
pub fn limit_below_join(plan: &PlanRef) -> bool {
    fn walk(p: &PlanRef, under_join: bool) -> bool {
        if matches!(p.as_ref(), vdm_plan::LogicalPlan::Limit { .. }) && under_join {
            return true;
        }
        let is_join = matches!(p.as_ref(), vdm_plan::LogicalPlan::Join { .. });
        p.children().iter().any(|c| walk(c, under_join || is_join))
    }
    walk(plan, false)
}

/// Ensures Fig. 10/12 queries can also reference JoinKind in assertions.
pub fn _kind_witness() -> JoinKind {
    JoinKind::Inner
}
