//! Benchmark harness: the paper's evaluation queries and shared tooling.
//!
//! Every table and figure of the paper has a regenerating binary in
//! `src/bin/` (see `DESIGN.md` §5 for the index), and a timing counterpart
//! in `benches/paper.rs`. The query builders here are shared between both
//! and the workspace integration tests.

pub mod harness;
pub mod queries;
