//! Regenerates the **§7.3** demonstration: declared join cardinalities and
//! the verification tool.
//!
//! 1. A constraint-free dimension table (as SAP applications prefer) makes
//!    UAJ elimination impossible — until the query declares
//!    `LEFT OUTER MANY TO ONE JOIN`.
//! 2. The verification tool checks declarations against the data and finds
//!    the violation we inject.
//!
//! Run: `cargo run --release -p vdm-bench --bin sec7_cardinality`

use vdm_model::verify_join_cardinality;
use vdm_optimizer::Profile;
use vdm_plan::{plan_stats, DeclaredCardinality};
use vdm_types::Value;

fn main() {
    let mut db = vdm_core::Database::new(Profile::hana());
    db.execute_script(
        "create table orders (id bigint primary key, curr text not null);
         -- Deliberately constraint-free, as SAP master data usually is:
         create table currency (code text not null, rate decimal(10,4) not null);
         insert into orders values (1, 'EUR'), (2, 'USD'), (3, 'EUR');
         insert into currency values ('EUR', 1.0000), ('USD', 0.9214);",
    )
    .expect("setup");

    println!("== §7.3: join cardinality specification ==\n");
    let plain = "select id from orders left join currency on curr = code";
    let declared = "select id from orders left outer many to one join currency on curr = code";
    let p1 = db.optimized_plan(plain).expect("plain plan");
    let p2 = db.optimized_plan(declared).expect("declared plan");
    println!("no declaration, no unique constraint:  {} join(s) remain", plan_stats(&p1).joins);
    println!("LEFT OUTER MANY TO ONE JOIN:           {} join(s) remain", plan_stats(&p2).joins);
    assert_eq!(plan_stats(&p1).joins, 1);
    assert_eq!(plan_stats(&p2).joins, 0);

    println!("\n== verification tool ==");
    let report = verify_join_cardinality(
        db.engine(),
        db.engine().snapshot(),
        "orders",
        &["curr"],
        "currency",
        &["code"],
        DeclaredCardinality::ManyToOne,
    )
    .expect("verify");
    println!(
        "orders.curr -> currency.code declared MANY TO ONE: holds = {}, max matches = {}",
        report.holds, report.max_matches
    );
    assert!(report.holds);

    // Inject a duplicate rate row — the declaration becomes a lie.
    db.execute("insert into currency values ('EUR', 1.0500)").expect("inject duplicate");
    let report = verify_join_cardinality(
        db.engine(),
        db.engine().snapshot(),
        "orders",
        &["curr"],
        "currency",
        &["code"],
        DeclaredCardinality::ManyToOne,
    )
    .expect("verify again");
    println!(
        "after injecting a duplicate 'EUR' rate:            holds = {}, max matches = {}, witness = {:?}",
        report.holds, report.max_matches, report.violating_key
    );
    assert!(!report.holds);
    assert_eq!(report.violating_key, Some(vec![Value::str("EUR")]));

    // MANY TO EXACT ONE additionally needs full coverage.
    db.execute("create table orders2 (id bigint primary key, curr text not null)").unwrap();
    db.execute("insert into orders2 values (1, 'JPY')").unwrap();
    let exact = verify_join_cardinality(
        db.engine(),
        db.engine().snapshot(),
        "orders2",
        &["curr"],
        "currency",
        &["code"],
        DeclaredCardinality::ManyToExactOne,
    )
    .expect("verify exact");
    println!(
        "orders2 ('JPY') declared MANY TO EXACT ONE:        holds = {}, unmatched keys = {}",
        exact.holds, exact.unmatched_left_keys
    );
    assert!(!exact.holds);
    println!("\nAll §7.3 checks behave as described in the paper.");
}
