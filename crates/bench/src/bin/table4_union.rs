//! Regenerates **Table 4**: UAJ elimination when the augmenter is a UNION
//! ALL — the disjoint-subset pattern (Fig. 11a/12a) and the branch-id
//! draft pattern (Fig. 11b/12b).
//!
//! Run: `cargo run --release -p vdm-bench --bin table4_union`

use vdm_bench::{harness, queries};
use vdm_optimizer::{Optimizer, Profile};

fn main() {
    let (catalog, engine) = harness::setup_tpch(0.1, false);
    let systems = Profile::paper_systems();
    let queries_list = queries::all_union(&catalog);

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (name, plan) in &queries_list {
        rows.push(name.to_string());
        cells
            .push(systems.iter().map(|p| harness::join_free_under(p, plan)).collect::<Vec<bool>>());
    }
    println!(
        "{}",
        harness::render_matrix(
            "Table 4: UAJ Optimization Status for UNION ALL (Y = union join removed)",
            &rows,
            &systems,
            &cells
        )
    );
    let paper_row = [true, false, false, false, false];
    let matches = cells.iter().all(|row| row.as_slice() == paper_row);
    println!(
        "Paper agreement: {}",
        if matches { "EXACT (HANA only)" } else { "DIVERGES — investigate!" }
    );

    println!("\nExecution time (median of 5 runs, sf=0.1):");
    let hana = Optimizer::hana();
    for (name, plan) in &queries_list {
        let optimized = hana.optimize(plan).expect("optimize");
        let t_raw = harness::time_plan(&engine, plan, 5);
        let t_opt = harness::time_plan(&engine, &optimized, 5);
        println!(
            "  {:12} {} -> {}  ({:.1}x)",
            name,
            harness::fmt_duration(t_raw),
            harness::fmt_duration(t_opt),
            t_raw.as_secs_f64() / t_opt.as_secs_f64().max(1e-9),
        );
    }
}
