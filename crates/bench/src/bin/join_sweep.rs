//! Join-order sweep: estimate-only vs feedback-corrected cost-based
//! ordering across star, chain, and ERP join shapes at 3–10 joins.
//!
//! Every workload plants the same trap: one filtered table whose zone-map
//! interpolation looks vanishingly selective but actually keeps 90% of its
//! rows (values piled just inside the predicate range, the rest far
//! outside it), and one filtered table whose 1% selectivity the estimator
//! gets right. Cost-based ordering on static estimates joins the fake
//! -selective table first and drags a huge intermediate through every
//! remaining join; one profiled execution later, the observed per-node
//! cardinalities re-cost the space and the truly selective side drives.
//!
//! Per (shape, join count) the sweep times three plans over identical
//! data — the rule-based order (no cost-based ordering), the
//! estimate-only order, and the feedback-corrected order — and asserts
//! all three produce multiset-identical results. The skewed ERP shape
//! additionally demonstrates the live loop: two `db.query` runs through
//! the plan cache must bump `vdm_reoptimizations_total`.
//!
//! Emits `BENCH_join.json`. Run:
//! `cargo run --release -p vdm-bench --bin join_sweep`
//! Optional: `--shapes=star,chain,erp`, `--joins=3,6,10`,
//! `--rows=200000`, `--iters=3`, `--threads=1`, and `--gate=2` to exit
//! non-zero unless the feedback-corrected plan beats the estimate-only
//! plan by the given factor on the skewed 6-join ERP shape (the CI smoke
//! check).

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use vdm_cache::multiset_digest;
use vdm_core::{feedback, Database, EngineStats, ParallelConfig};
use vdm_obs::{names, MetricsRegistry, QueryStore};
use vdm_plan::PlanRef;
use vdm_types::{SplitMix64, Value};

const DIM_ROWS: i64 = 1_000;
/// Fraction of skew-dim rows sitting inside the predicate range.
const SKEW_IN_RANGE: f64 = 0.9;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    Star,
    Chain,
    Erp,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Star => "star",
            Shape::Chain => "chain",
            Shape::Erp => "erp",
        }
    }

    fn parse(s: &str) -> Shape {
        match s {
            "star" => Shape::Star,
            "chain" => Shape::Chain,
            "erp" => Shape::Erp,
            other => panic!("unknown shape {other:?} (star|chain|erp)"),
        }
    }
}

struct SweepResult {
    shape: &'static str,
    joins: usize,
    rows_out: usize,
    rule: Duration,
    estimate: Duration,
    feedback: Duration,
}

impl SweepResult {
    /// Estimate-only over feedback-corrected: the payoff of observed
    /// cardinalities.
    fn speedup(&self) -> f64 {
        self.estimate.as_secs_f64() / self.feedback.as_secs_f64().max(f64::EPSILON)
    }
}

/// The skew dim: 90% of `val` in [0, 10] (inside the predicate), 10% far
/// outside in [10_000, 100_000]. The zone map spans the whole range, so
/// interpolation prices `val <= 10` at ~0.01% when it really keeps 90%.
fn skew_val(rng: &mut SplitMix64, i: i64, total: i64) -> i64 {
    if (i as f64) < total as f64 * SKEW_IN_RANGE {
        rng.random_range(0..=10)
    } else {
        rng.random_range(10_000..100_000)
    }
}

/// The honest dim: `val` uniform over [0, 100_000), so `val < 1000` is 1%
/// and the estimator prices it correctly.
fn uniform_val(rng: &mut SplitMix64, _i: i64, _total: i64) -> i64 {
    rng.random_range(0..100_000)
}

fn dim_ddl(name: &str) -> String {
    format!("create table {name} (id bigint primary key, val bigint not null)")
}

fn load_dim(
    db: &mut Database,
    rng: &mut SplitMix64,
    name: &str,
    rows: i64,
    val: fn(&mut SplitMix64, i64, i64) -> i64,
) {
    db.execute(&dim_ddl(name)).expect("dim ddl");
    let data: Vec<Vec<Value>> =
        (0..rows).map(|i| vec![Value::Int(i), Value::Int(val(rng, i, rows))]).collect();
    db.engine().insert(name, data).expect("dim load");
}

/// Builds the workload for `shape` with `joins` join edges and returns the
/// query SQL. Zone maps are materialized (delta merged) on every table so
/// the estimator sees column ranges.
fn build(db: &mut Database, shape: Shape, joins: usize, fact_rows: i64) -> String {
    let mut rng = SplitMix64::seed_from_u64(0x10A0 + joins as u64);
    let mut tables: Vec<String> = Vec::new();
    let sql = match shape {
        Shape::Star => {
            // fact → d1..dn; d1 is the skew trap, d2 is honestly selective.
            for i in 1..=joins {
                let name = format!("d{i}");
                let val: fn(&mut SplitMix64, i64, i64) -> i64 =
                    if i == 1 { skew_val } else { uniform_val };
                load_dim(db, &mut rng, &name, DIM_ROWS, val);
                tables.push(name);
            }
            let fks: Vec<String> = (1..=joins)
                .map(|i| format!("fk{i} bigint not null, foreign key (fk{i}) references d{i} (id)"))
                .collect();
            db.execute(&format!(
                "create table fact (f_id bigint primary key, amount bigint not null, {})",
                fks.join(", ")
            ))
            .expect("fact ddl");
            let data: Vec<Vec<Value>> = (0..fact_rows)
                .map(|i| {
                    let mut row = vec![Value::Int(i), Value::Int(rng.random_range(0..1_000_000))];
                    row.extend((0..joins).map(|_| Value::Int(rng.random_range(0..DIM_ROWS))));
                    row
                })
                .collect();
            db.engine().insert("fact", data).expect("fact load");
            tables.push("fact".into());
            let join_sql: Vec<String> =
                (1..=joins).map(|i| format!("join d{i} on f.fk{i} = d{i}.id")).collect();
            format!(
                "select f.f_id, f.amount, d1.val as v1 from fact f {} \
                 where d1.val <= 10 and d2.val < 1000",
                join_sql.join(" ")
            )
        }
        Shape::Chain => {
            // fact → c1 → c2 → … → cn; c1 is the skew trap next to the
            // fact, the far end cn is honestly selective — the corrected
            // order must drive the chain from the other side.
            for i in (1..=joins).rev() {
                let name = format!("c{i}");
                let val: fn(&mut SplitMix64, i64, i64) -> i64 =
                    if i == 1 { skew_val } else { uniform_val };
                db.execute(&if i == joins {
                    dim_ddl(&name)
                } else {
                    format!(
                        "create table {name} (id bigint primary key, val bigint not null, \
                         nxt bigint not null, foreign key (nxt) references c{} (id))",
                        i + 1
                    )
                })
                .expect("chain ddl");
                let data: Vec<Vec<Value>> = (0..DIM_ROWS)
                    .map(|r| {
                        let mut row = vec![Value::Int(r), Value::Int(val(&mut rng, r, DIM_ROWS))];
                        if i != joins {
                            row.push(Value::Int(rng.random_range(0..DIM_ROWS)));
                        }
                        row
                    })
                    .collect();
                db.engine().insert(&name, data).expect("chain load");
                tables.push(name);
            }
            db.execute(
                "create table fact (f_id bigint primary key, amount bigint not null, \
                 nxt bigint not null, foreign key (nxt) references c1 (id))",
            )
            .expect("fact ddl");
            let data: Vec<Vec<Value>> = (0..fact_rows)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Int(rng.random_range(0..1_000_000)),
                        Value::Int(rng.random_range(0..DIM_ROWS)),
                    ]
                })
                .collect();
            db.engine().insert("fact", data).expect("fact load");
            tables.push("fact".into());
            let join_sql: Vec<String> = (1..=joins)
                .map(|i| {
                    let prev = if i == 1 { "f".into() } else { format!("c{}", i - 1) };
                    format!("join c{i} on {prev}.nxt = c{i}.id")
                })
                .collect();
            format!(
                "select f.f_id, f.amount, c1.val as v1 from fact f {} \
                 where c1.val <= 10 and c{joins}.val < 1000",
                join_sql.join(" ")
            )
        }
        Shape::Erp => {
            // Order lines (fact) → header → customer, plus dims d3..dn on
            // the fact: the ERP mix of one chained document hop and a star
            // of attribute joins. The skew trap is fact-side dim d3; the
            // honest 1% filter sits at the far end of the document chain.
            assert!(joins >= 3, "erp needs at least 3 joins (fact→hdr→cust + one dim)");
            load_dim(db, &mut rng, "cust", DIM_ROWS, uniform_val);
            tables.push("cust".into());
            let hdr_rows = (fact_rows / 10).max(DIM_ROWS);
            db.execute(
                "create table hdr (id bigint primary key, cust_id bigint not null, \
                 foreign key (cust_id) references cust (id))",
            )
            .expect("hdr ddl");
            let data: Vec<Vec<Value>> = (0..hdr_rows)
                .map(|i| vec![Value::Int(i), Value::Int(rng.random_range(0..DIM_ROWS))])
                .collect();
            db.engine().insert("hdr", data).expect("hdr load");
            tables.push("hdr".into());
            for i in 3..=joins {
                let name = format!("d{i}");
                let val: fn(&mut SplitMix64, i64, i64) -> i64 =
                    if i == 3 { skew_val } else { uniform_val };
                load_dim(db, &mut rng, &name, DIM_ROWS, val);
                tables.push(name);
            }
            let fks: Vec<String> = std::iter::once(
                "hdr_id bigint not null, foreign key (hdr_id) references hdr (id)".to_string(),
            )
            .chain((3..=joins).map(|i| {
                format!("fk{i} bigint not null, foreign key (fk{i}) references d{i} (id)")
            }))
            .collect();
            db.execute(&format!(
                "create table fact (f_id bigint primary key, amount bigint not null, {})",
                fks.join(", ")
            ))
            .expect("fact ddl");
            let data: Vec<Vec<Value>> = (0..fact_rows)
                .map(|i| {
                    let mut row = vec![
                        Value::Int(i),
                        Value::Int(rng.random_range(0..1_000_000)),
                        Value::Int(rng.random_range(0..hdr_rows)),
                    ];
                    row.extend((3..=joins).map(|_| Value::Int(rng.random_range(0..DIM_ROWS))));
                    row
                })
                .collect();
            db.engine().insert("fact", data).expect("fact load");
            tables.push("fact".into());
            let join_sql: Vec<String> = std::iter::once(
                "join hdr on f.hdr_id = hdr.id join cust on hdr.cust_id = cust.id".to_string(),
            )
            .chain((3..=joins).map(|i| format!("join d{i} on f.fk{i} = d{i}.id")))
            .collect();
            format!(
                "select f.f_id, f.amount, d3.val as v3 from fact f {} \
                 where d3.val <= 10 and cust.val < 1000",
                join_sql.join(" ")
            )
        }
    };
    for t in &tables {
        db.engine().merge_delta(t).expect("merge");
    }
    sql
}

/// Median execution time of `plan` over `iters` runs.
fn time_plan(db: &Database, plan: &PlanRef, parallel: ParallelConfig, iters: usize) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        vdm_exec::execute_parallel_at(plan, db.engine(), db.engine().snapshot(), parallel)
            .expect("execute");
        samples.push(t0.elapsed());
    }
    samples.sort();
    samples[iters / 2]
}

/// One workload: builds the data, derives the three plan variants,
/// asserts multiset-identical results, and times each.
fn run_one(
    shape: Shape,
    joins: usize,
    fact_rows: i64,
    iters: usize,
    parallel: ParallelConfig,
) -> SweepResult {
    let mut db = Database::hana();
    db.set_parallelism(parallel);
    let sql = build(&mut db, shape, joins, fact_rows);
    let bound = db.plan(&sql).expect("bind");
    let stats = EngineStats::new(db.engine());

    // Rule-based: no statistics, the join-ordering pass stays off.
    let plan_rule = db.optimize(&bound).expect("rule plan");
    // Estimate-only: cost-based ordering on static statistics.
    let (plan_est, _) = db
        .optimizer()
        .optimize_traced_with(&bound, Some(&stats), None)
        .expect("estimate-only plan");
    // Feedback-corrected: one profiled run of the estimate-only plan
    // supplies observed per-node cardinalities as overriding estimates —
    // the same evidence the plan-cache hit path feeds back.
    let (_, _, profile) =
        vdm_exec::execute_profiled_at(&plan_est, db.engine(), db.engine().snapshot(), parallel)
            .expect("profiled run");
    let observed: Vec<(u32, f64)> =
        profile.nodes.iter().map(|(id, s)| (*id as u32, s.rows_out as f64)).collect();
    let overrides = feedback::overrides_from_observed(&plan_est, &observed);
    let (plan_fb, _) = db
        .optimizer()
        .optimize_traced_with(&bound, Some(&stats), Some(&overrides))
        .expect("feedback plan");

    // Every ordering must produce the identical result multiset.
    let (b_rule, _) = db.execute_plan_unoptimized(&plan_rule).expect("rule exec");
    let (b_est, _) = db.execute_plan_unoptimized(&plan_est).expect("est exec");
    let (b_fb, _) = db.execute_plan_unoptimized(&plan_fb).expect("fb exec");
    let digest = multiset_digest(&b_rule);
    assert_eq!(b_rule.num_rows(), b_est.num_rows(), "[{} {joins}] row count", shape.name());
    assert_eq!(digest, multiset_digest(&b_est), "[{} {joins}] estimate-only order", shape.name());
    assert_eq!(digest, multiset_digest(&b_fb), "[{} {joins}] feedback order", shape.name());

    SweepResult {
        shape: shape.name(),
        joins,
        rows_out: b_rule.num_rows(),
        rule: time_plan(&db, &plan_rule, parallel, iters),
        estimate: time_plan(&db, &plan_est, parallel, iters),
        feedback: time_plan(&db, &plan_fb, parallel, iters),
    }
}

/// The live loop through the plan cache: first `db.query` fills the cache
/// and records observed cardinalities; the second hits, sees the
/// misestimate, and must re-optimize. Returns the number of
/// re-optimizations the two queries triggered.
fn run_live_loop(joins: usize, fact_rows: i64, parallel: ParallelConfig) -> (u64, usize) {
    let store = QueryStore::global();
    let was_enabled = store.enabled();
    store.set_enabled(true);
    let mut db = Database::hana();
    db.set_parallelism(parallel);
    let sql = build(&mut db, Shape::Erp, joins, fact_rows);
    let before = MetricsRegistry::global().counter(names::REOPTIMIZATIONS_TOTAL);
    let first = db.query(&sql).expect("first run").num_rows();
    let second = db.query(&sql).expect("second run").num_rows();
    assert_eq!(first, second, "re-optimized plan changed the result");
    let after = MetricsRegistry::global().counter(names::REOPTIMIZATIONS_TOTAL);
    store.set_enabled(was_enabled);
    (after - before, second)
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

fn to_json(fact_rows: i64, results: &[SweepResult], reopts: u64) -> String {
    let mut out = String::from("{\n  \"bench\": \"join_sweep\",\n");
    let _ = writeln!(out, "  \"fact_rows\": {fact_rows},");
    let _ = writeln!(out, "  \"live_loop_reoptimizations\": {reopts},");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"shape\": \"{}\", \"joins\": {}, \"rows_out\": {}, \
             \"rule_millis\": {:.3}, \"estimate_millis\": {:.3}, \"feedback_millis\": {:.3}, \
             \"feedback_speedup\": {:.2}}}{}",
            r.shape,
            r.joins,
            r.rows_out,
            r.rule.as_secs_f64() * 1e3,
            r.estimate.as_secs_f64() * 1e3,
            r.feedback.as_secs_f64() * 1e3,
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut shapes = vec![Shape::Star, Shape::Chain, Shape::Erp];
    let mut joins: Vec<usize> = (3..=10).collect();
    let mut fact_rows: i64 = 200_000;
    let mut iters = 3usize;
    let mut threads = 1usize;
    let mut gate: Option<f64> = None;
    for arg in std::env::args().skip(1) {
        if let Some(list) = arg.strip_prefix("--shapes=") {
            shapes = list.split(',').map(|s| Shape::parse(s.trim())).collect();
        } else if let Some(list) = arg.strip_prefix("--joins=") {
            joins = list
                .split(',')
                .map(|s| s.trim().parse().expect("--joins takes a comma-separated list"))
                .collect();
        } else if let Some(n) = arg.strip_prefix("--rows=") {
            fact_rows = n.parse().expect("--rows takes a number");
        } else if let Some(n) = arg.strip_prefix("--iters=") {
            iters = n.parse().expect("--iters takes a number");
        } else if let Some(n) = arg.strip_prefix("--threads=") {
            threads = n.parse().expect("--threads takes a number");
        } else if let Some(g) = arg.strip_prefix("--gate=") {
            gate = Some(g.parse().expect("--gate takes a number"));
        } else {
            panic!("unknown argument {arg:?}");
        }
    }
    let parallel = ParallelConfig { threads, ..ParallelConfig::default() };

    println!("== join_sweep: estimate-only vs feedback-corrected join ordering ==");
    println!("fact_rows={fact_rows}, iters={iters}, threads={threads}");

    let mut results = Vec::new();
    for &shape in &shapes {
        for &n in &joins {
            if shape == Shape::Erp && n < 3 {
                continue;
            }
            let r = run_one(shape, n, fact_rows, iters, parallel);
            println!(
                "  {:>5} joins={:>2} rows_out={:>7} rule={:>9} estimate={:>9} feedback={:>9} speedup={:.1}x",
                r.shape,
                r.joins,
                r.rows_out,
                fmt_duration(r.rule),
                fmt_duration(r.estimate),
                fmt_duration(r.feedback),
                r.speedup(),
            );
            results.push(r);
        }
    }

    // The live feedback loop on the skewed 6-join ERP shape (or the
    // largest swept ERP size below 6).
    let live_joins =
        joins.iter().copied().filter(|&n| n >= 3).min().map(|min| min.max(6)).unwrap_or(6);
    let (reopts, live_rows) = run_live_loop(live_joins, fact_rows, parallel);
    println!("live loop (erp, {live_joins} joins): {reopts} re-optimization(s), {live_rows} rows");

    let json = to_json(fact_rows, &results, reopts);
    std::fs::write("BENCH_join.json", &json).expect("write BENCH_join.json");
    println!("\nwrote BENCH_join.json");

    if let Some(gate) = gate {
        let gated = results
            .iter()
            .filter(|r| r.shape == "erp")
            .min_by_key(|r| (r.joins as i64 - 6).abs())
            .expect("gate needs an erp shape in the sweep");
        let speedup = gated.speedup();
        if speedup < gate {
            eprintln!(
                "FAIL: erp joins={} feedback speedup {speedup:.2}x is below the {gate:.2}x gate",
                gated.joins
            );
            std::process::exit(1);
        }
        if reopts == 0 {
            eprintln!("FAIL: the live loop did not re-optimize the skewed ERP shape");
            std::process::exit(1);
        }
        println!(
            "gate: erp joins={} feedback speedup {speedup:.2}x clears the {gate:.2}x gate \
             ({reopts} live re-optimization(s))",
            gated.joins
        );
    }
}
