//! Regenerates **Fig. 3 / Fig. 4**: the complexity of the
//! `journal_entry_item_browser` VDM view and its collapse under
//! optimization.
//!
//! Fig. 3 (the unoptimized `select *` plan) must show 47 table instances
//! (62 unshared), 49 joins, one five-way UNION ALL, one GROUP BY, one
//! DISTINCT. Fig. 4 (`select count(*)`, optimized) must retain only the
//! two DAC-guarded supplier/customer joins.
//!
//! Run: `cargo run --release -p vdm-bench --bin fig3_plan_complexity`

use vdm_bench::harness;
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_optimizer::Optimizer;
use vdm_plan::{plan_stats, LogicalPlan, PlanStats};

fn show(label: &str, stats: &PlanStats) {
    println!(
        "{label}\n  table instances: {} (unshared references: {})\n  joins: {} ({} left outer)\n  union alls: {} (max width {})\n  group bys: {}, distincts: {}, filters: {}\n  total operators: {}, plan depth: {}",
        stats.table_instances,
        stats.table_references,
        stats.joins,
        stats.left_outer_joins,
        stats.unions,
        stats.max_union_width,
        stats.aggregates,
        stats.distincts,
        stats.filters,
        stats.nodes,
        stats.depth,
    );
}

fn main() {
    let erp = Erp { journal_rows: 20_000, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = vdm_storage::StorageEngine::new();
    let schema = erp.build(&mut catalog, &engine).expect("ERP generation");
    let browser = journal_entry_item_browser(&schema).expect("browser view");

    println!("== Fig. 3: select * from journal_entry_item_browser (unoptimized) ==");
    let fig3 = plan_stats(&browser.protected);
    show("Plan complexity:", &fig3);
    let ok3 = fig3.table_instances == 47
        && fig3.joins == 49
        && fig3.table_references == 62
        && fig3.max_union_width == 5
        && fig3.aggregates == 1
        && fig3.distincts == 1;
    println!(
        "Paper agreement: {}\n",
        if ok3 {
            "EXACT (47 instances / 62 unshared / 49 joins / 5-way union / 1 group-by / 1 distinct)"
        } else {
            "DIVERGES — investigate!"
        }
    );

    // Fig. 4: count(*) collapses everything but the DAC-guarded joins.
    let count_plan = LogicalPlan::aggregate(
        browser.protected.clone(),
        vec![],
        vec![(vdm_expr::AggExpr::count_star(), "n".into())],
    )
    .expect("count plan");
    let hana = Optimizer::hana();
    let optimized = hana.optimize(&count_plan).expect("optimize");
    println!("== Fig. 4: select count(*) from journal_entry_item_browser (optimized) ==");
    let fig4 = plan_stats(&optimized);
    show("Plan complexity:", &fig4);
    let ok4 = fig4.joins == 2 && fig4.table_instances == 3 && fig4.unions == 0;
    println!(
        "Paper agreement: {}\n",
        if ok4 {
            "EXACT (only the DAC-guarded lfa1/kna1 joins survive)"
        } else {
            "DIVERGES — investigate!"
        }
    );
    println!("Optimized count(*) plan:\n{}", vdm_plan::explain(&optimized));

    // Execution-time consequence.
    let t_raw = harness::time_plan(&engine, &count_plan, 3);
    let t_opt = harness::time_plan(&engine, &optimized, 3);
    println!("count(*) over 20k journal lines:");
    println!("  unoptimized: {}", harness::fmt_duration(t_raw));
    println!("  optimized:   {}", harness::fmt_duration(t_opt));
    println!("  speedup:     {:.1}x", t_raw.as_secs_f64() / t_opt.as_secs_f64().max(1e-9));
    // Cross-check: both agree.
    let a = vdm_exec::execute(&count_plan, &engine).unwrap();
    let b = vdm_exec::execute(&optimized, &engine).unwrap();
    assert_eq!(a.row(0), b.row(0), "optimization must not change count(*)");
    println!("count(*) = {} (identical under both plans)", a.row(0)[0]);

    // Also report a full-width paging query on the view.
    let select_star = LogicalPlan::limit(browser.protected.clone(), 0, Some(100));
    let star_opt = hana.optimize(&select_star).unwrap();
    let t_star_raw = harness::time_plan(&engine, &select_star, 3);
    let t_star_opt = harness::time_plan(&engine, &star_opt, 3);
    println!("\nselect * ... limit 100:");
    println!("  unoptimized: {}", harness::fmt_duration(t_star_raw));
    println!(
        "  optimized:   {} ({} joins remain — all fields used)",
        harness::fmt_duration(t_star_opt),
        plan_stats(&star_opt).joins
    );
}
