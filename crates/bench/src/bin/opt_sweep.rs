//! Optimize-time sweep: how fast is `Optimizer::optimize` itself?
//!
//! The paper's premise is that VDM plans are huge DAGs the optimizer must
//! simplify *cheaply*. This bench times the optimizer (not execution) on
//! the two canonical workloads at all five capability profiles:
//!
//! 1. **browser** — the Fig. 3 `journal_entry_item_browser` view (47 table
//!    instances, 49 joins, five-way UNION ALL under DAC);
//! 2. **fig14** — the Fig. 14 view population (original + both extension
//!    variants per case).
//!
//! Each workload runs twice per profile: with the property cache (the
//! annotated-plan path) and with `with_property_cache(false)` — the
//! pre-refactor cost model in which every property probe re-derives from
//! scratch. Output plans are asserted digest-identical between the two
//! modes, so the ratio is a pure optimize-time speedup.
//!
//! Emits a human-readable table and machine-readable `BENCH_optimize.json`
//! in the working directory (no external benchmarking framework).
//!
//! Run: `cargo run --release -p vdm-bench --bin opt_sweep`
//! Optional args: `opt_sweep <journal_rows> <n_views> <rows_per_table>`.

use std::fmt::Write as _;
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_data::figview::{generate, Fig14Config};
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::{plan_digest, CacheStats, PlanRef};
use vdm_storage::StorageEngine;

/// One timed sweep of the plan set: summed optimize time, summed cache
/// counters, and a digest of every output plan (order-sensitive, for
/// cross-mode identity checks).
fn sweep(opt: &Optimizer, plans: &[PlanRef]) -> (u64, CacheStats, Vec<u64>) {
    let mut total = 0u64;
    let mut cache = CacheStats::default();
    let mut digests = Vec::with_capacity(plans.len());
    for plan in plans {
        let (out, trace) = opt.optimize_traced(plan).expect("optimize");
        total += trace.optimize_nanos;
        cache.hits += trace.cache.hits;
        cache.misses += trace.cache.misses;
        cache.entries += trace.cache.entries;
        digests.push(plan_digest(&out));
    }
    (total, cache, digests)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

struct WorkloadRow {
    workload: &'static str,
    plans: usize,
    cached_millis: f64,
    baseline_millis: f64,
    speedup: f64,
    cache: CacheStats,
}

/// Benchmarks one workload at one profile. Iterations are *paired* —
/// each runs the cached sweep and the baseline sweep back to back, and
/// the reported speedup is the median of the per-iteration ratios — so
/// machine-noise windows (a co-tenant burst, a frequency dip) hit both
/// modes alike instead of skewing whichever mode they landed on.
fn bench_workload(
    workload: &'static str,
    profile: &Profile,
    plans: &[PlanRef],
    iters: usize,
) -> WorkloadRow {
    let cached_opt = Optimizer::new(profile.clone());
    let baseline_opt = Optimizer::new(profile.clone()).with_property_cache(false);
    // One warmup sweep per mode outside the timed region: first-touch
    // effects (allocator growth, cold caches) otherwise dominate sub-ms
    // medians. The warmup also provides the cross-mode identity check
    // and the cache counters (both are deterministic per sweep).
    let (_, cache, cached_digests) = sweep(&cached_opt, plans);
    let (_, _, baseline_digests) = sweep(&baseline_opt, plans);
    assert_eq!(
        cached_digests,
        baseline_digests,
        "{workload}@{}: cached and baseline optimizers must produce identical plans",
        profile.name()
    );
    let mut cached_times = Vec::with_capacity(iters);
    let mut baseline_times = Vec::with_capacity(iters);
    let mut ratios = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (c, _, _) = sweep(&cached_opt, plans);
        let (b, _, _) = sweep(&baseline_opt, plans);
        cached_times.push(c as f64 / 1e6);
        baseline_times.push(b as f64 / 1e6);
        ratios.push(b as f64 / (c as f64).max(1.0));
    }
    let cached_millis = median(cached_times);
    let baseline_millis = median(baseline_times);
    let speedup = median(ratios);
    println!(
        "  {:>8} {workload:>8}: cached={cached_millis:>9.3}ms baseline={baseline_millis:>9.3}ms \
         speedup={speedup:>5.2}x cache: {} hits / {} misses ({:.0}% hit rate)",
        profile.name(),
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
    );
    WorkloadRow { workload, plans: plans.len(), cached_millis, baseline_millis, speedup, cache }
}

fn to_json(journal_rows: usize, n_views: usize, rows: &[(String, Vec<WorkloadRow>)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"opt_sweep\",\n");
    let _ = writeln!(out, "  \"journal_rows\": {journal_rows},");
    let _ = writeln!(out, "  \"n_views\": {n_views},");
    out.push_str("  \"plans_identical_across_modes\": true,\n  \"profiles\": [\n");
    for (pi, (profile, workloads)) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{\"profile\": \"{profile}\", \"workloads\": [");
        for (wi, w) in workloads.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"name\": \"{}\", \"plans\": {}, \"cached_millis\": {:.3}, \
                 \"baseline_millis\": {:.3}, \"speedup\": {:.2}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"cache_hit_rate_pct\": {:.1}}}",
                w.workload,
                w.plans,
                w.cached_millis,
                w.baseline_millis,
                w.speedup,
                w.cache.hits,
                w.cache.misses,
                w.cache.hit_rate() * 100.0,
            );
            let _ = writeln!(out, "{}", if wi + 1 == workloads.len() { "" } else { "," });
        }
        let _ = writeln!(out, "    ]}}{}", if pi + 1 == rows.len() { "" } else { "," });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let journal_rows: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let n_views: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
    let rows_per_table: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(500);

    println!("== opt_sweep: optimize-time benchmark (property cache vs re-derivation) ==");

    // Fig. 3 browser view over the ERP schema.
    let erp = Erp { journal_rows, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let schema = erp.build(&mut catalog, &engine).expect("ERP generation");
    let browser = journal_entry_item_browser(&schema).expect("browser view");
    let browser_plans = [browser.protected.clone()];

    // Fig. 14 population: every case contributes all three plan variants.
    let cfg = Fig14Config { n_views, rows_per_table, seed: 1414 };
    let mut fig_catalog = vdm_catalog::Catalog::new();
    let fig_engine = StorageEngine::new();
    let population = generate(&cfg, &mut fig_catalog, &fig_engine).expect("Fig. 14 population");
    let fig14_plans: Vec<PlanRef> = population
        .cases
        .iter()
        .flat_map(|c| [c.original.clone(), c.extended_plain.clone(), c.extended_case.clone()])
        .collect();
    println!(
        "browser: journal_rows={journal_rows}; fig14: {} views ({} plans)\n",
        n_views,
        fig14_plans.len()
    );

    let mut rows: Vec<(String, Vec<WorkloadRow>)> = Vec::new();
    for profile in Profile::paper_systems() {
        let b = bench_workload("browser", &profile, &browser_plans, 25);
        let f = bench_workload("fig14", &profile, &fig14_plans, 3);
        rows.push((profile.name().to_string(), vec![b, f]));
    }

    let json = to_json(journal_rows, n_views, &rows);
    std::fs::write("BENCH_optimize.json", &json).expect("write BENCH_optimize.json");
    println!("\nwrote BENCH_optimize.json:\n{json}");

    // The acceptance bar the CI smoke run watches: the Fig. 3 browser at
    // the full-capability profile must optimize markedly faster with the
    // cache than with per-probe re-derivation.
    let hana = rows.iter().find(|(p, _)| p == "hana").expect("hana profile present");
    let hb = &hana.1[0];
    println!(
        "hana browser: {:.3}ms cached vs {:.3}ms baseline = {:.2}x",
        hb.cached_millis, hb.baseline_millis, hb.speedup
    );
}
