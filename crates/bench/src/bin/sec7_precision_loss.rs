//! Regenerates the **§7.1** experiment: aggregation pushdown across
//! decimal rounding via `allow_precision_loss`.
//!
//! The query is `select l_suppkey, sum(round(l_extendedprice * 1.11, 2))
//! from lineitem group by l_suppkey`. Without the extension, the rounding
//! blocks the interchange and every row pays a decimal multiply+round;
//! with it, the optimizer evaluates `round(sum(l_extendedprice) * 1.11,
//! 2)` once per group. We report the speedup and the controlled value
//! discrepancy the user opted into.
//!
//! Run: `cargo run --release -p vdm-bench --bin sec7_precision_loss`

use vdm_bench::{harness, queries};
use vdm_optimizer::Optimizer;
use vdm_types::Value;

fn main() {
    let (catalog, engine) = harness::setup_tpch(0.5, false);
    let strict = queries::precision_query(&catalog, false).expect("strict query");
    let loose = queries::precision_query(&catalog, true).expect("loose query");
    let hana = Optimizer::hana();
    let strict_opt = hana.optimize(&strict).expect("optimize strict");
    let loose_opt = hana.optimize(&loose).expect("optimize loose");

    let t_strict = harness::time_plan(&engine, &strict_opt, 5);
    let t_loose = harness::time_plan(&engine, &loose_opt, 5);
    println!("== §7.1: sum(round(price * 1.11, 2)) group by supplier ==");
    println!("  exact rounding:        {}", harness::fmt_duration(t_strict));
    println!("  allow_precision_loss:  {}", harness::fmt_duration(t_loose));
    println!(
        "  speedup:               {:.2}x",
        t_strict.as_secs_f64() / t_loose.as_secs_f64().max(1e-9)
    );

    // Value discrepancy report.
    let a = vdm_exec::execute(&strict_opt, &engine).expect("strict run");
    let b = vdm_exec::execute(&loose_opt, &engine).expect("loose run");
    let mut strict_rows = a.to_rows();
    let mut loose_rows = b.to_rows();
    let key = |r: &Vec<Value>| r[0].clone();
    strict_rows.sort_by(|x, y| key(x).total_cmp(&key(y)));
    loose_rows.sort_by(|x, y| key(x).total_cmp(&key(y)));
    assert_eq!(strict_rows.len(), loose_rows.len(), "same groups");
    let mut max_delta = 0.0f64;
    let mut diff_groups = 0usize;
    for (s, l) in strict_rows.iter().zip(&loose_rows) {
        let sv = s[1].as_dec().expect("decimal").to_f64();
        let lv = l[1].as_dec().expect("decimal").to_f64();
        let d = (sv - lv).abs();
        if d > 0.0 {
            diff_groups += 1;
        }
        max_delta = max_delta.max(d);
    }
    println!("\nControlled precision loss across {} groups:", strict_rows.len());
    println!("  groups with trailing-digit differences: {diff_groups}");
    println!("  max absolute difference:                {max_delta:.2}");
    println!(
        "  (bounded by 0.005 * rows-per-group — exactly the insignificant\n   trailing decimal digits the user traded for speed)"
    );
}
