//! Observability-overhead sweep: what do always-on query tracing and the
//! plan-digest query store cost on the paper's browser workload?
//!
//! The tracing layer (`vdm_obs::trace`) and the [`QueryStore`] are both
//! enabled by default, so their overhead budget is a hard product
//! constraint: the serve layer promises ≤3% versus a fully untraced run.
//! This bench measures exactly that:
//!
//! * ERP dataset + the Fig. 3 `journal_entry_item_browser` view, HANA
//!   profile, plan cache warmed once per shape;
//! * the three browser paging shapes as prepared statements, executed
//!   round-robin with seeded parameter values;
//! * **per-query interleaving**: every sampled query executes twice
//!   back-to-back — once observed, once dark — with the first-run slot
//!   alternating each query so warm-cache advantage cancels. The only
//!   difference between the twins is tracing + store recording (which
//!   also switches the executor to its profiled path). Drift (scheduler,
//!   thermal, noisy neighbours) moves at a far coarser grain than one
//!   ~ms query, so it hits both accumulators equally; the overhead is
//!   the median of the per-round relative differences;
//! * after the timed section, the store's per-digest aggregates are
//!   saved as JSON lines, reloaded into a fresh store, and verified
//!   identical — the persistence round-trip the serve layer relies on.
//!
//! Emits `BENCH_obs.json` and optionally gates on the measured overhead.
//!
//! Run: `cargo run --release -p vdm-bench --bin obs_sweep`
//! Args (both `--flag=v` and `--flag v` forms):
//!   `--journal-rows N`        ERP journal size (default 500)
//!   `--queries N`             queries per batch (default 300)
//!   `--rounds N`              interleaved measurement rounds (default 5)
//!   `--threads N`             execution + pool threads (default 1: the
//!                             low-variance apples-to-apples setting;
//!                             0 = use every core, as serving would)
//!   `--mode both|trace|store` which layers the observed batches enable
//!                             (default both; trace/store isolate one layer)
//!   `--gate-overhead-pct X`   exit non-zero if overhead exceeds X percent

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use vdm_core::Database;
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_exec::ParallelConfig;
use vdm_obs::{trace, MetricsRegistry, QueryStore};
use vdm_optimizer::Profile;
use vdm_serve::{ServeConfig, Server, Session};
use vdm_types::{SplitMix64, Value};

/// The browser paging shapes (same as `serve_sweep`).
const SHAPES: [&str; 3] = [
    "select AccountingDocument, LineItem, PostingDate, AmountInCompanyCodeCurrency, \
     SupplierName, CustomerName from journal_entry_item_browser \
     where CompanyCode = ? and FiscalYear = ? \
     order by AccountingDocument, LineItem limit 50",
    "select LineItem, AmountInCompanyCodeCurrency, DebitCreditCode, CompanyName \
     from journal_entry_item_browser \
     where CompanyCode = ? and FiscalYear = ? and AccountingDocument = ? \
     order by LineItem",
    "select FiscalYear, count(*) as n from journal_entry_item_browser \
     where CompanyCode = ? group by FiscalYear order by FiscalYear",
];

fn shape_params(shape: usize, rng: &mut SplitMix64) -> Vec<Value> {
    let company = Value::Int(rng.random_range(1..=20));
    match shape {
        0 => vec![company, Value::Int(rng.random_range(2023..=2026))],
        1 => vec![
            company,
            Value::Int(rng.random_range(2023..=2026)),
            Value::Int(rng.random_range(1..=2_500)),
        ],
        _ => vec![company],
    }
}

fn build_server(journal_rows: usize, threads: usize) -> Server {
    let mut db = Database::new(Profile::hana());
    if threads > 0 {
        db.set_parallelism(ParallelConfig { threads, morsel_rows: 1024 });
    }
    let erp = Erp { journal_rows, seed: 4711 };
    let (catalog, engine) = db.catalog_and_engine();
    let schema = erp.build(catalog, engine).expect("ERP generation");
    db.invalidate_plans();
    let browser = journal_entry_item_browser(&schema).expect("browser view");
    db.register_view("journal_entry_item_browser", browser.protected.clone());
    Server::with_config(db, ServeConfig { pool_threads: threads })
}

/// Which observability layers the "observed" batches enable.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Tracing and the query store together (the production default).
    Both,
    /// Tracing only — isolates span collection cost.
    Trace,
    /// Query store only — isolates profiled execution + recording cost.
    Store,
}

/// Switches the layers selected by `mode` — "observed" vs "dark".
fn set_observability(mode: Mode, on: bool) {
    if mode != Mode::Store {
        trace::set_enabled(on);
    }
    if mode != Mode::Trace {
        QueryStore::global().set_enabled(on);
    }
}

/// One warmup batch: `queries` prepared executions round-robin over the
/// shapes, parameters drawn from `seed`.
fn run_batch(session: &Session, queries: usize, seed: u64) {
    let prepared: Vec<_> =
        SHAPES.iter().map(|sql| session.prepare(sql).expect("prepare")).collect();
    let mut rng = SplitMix64::seed_from_u64(seed);
    for qi in 0..queries {
        let shape = qi % SHAPES.len();
        let params = shape_params(shape, &mut rng);
        prepared[shape].execute(&params).expect("browser query");
    }
}

/// One measurement round: `queries` parameter draws, each executed twice
/// back-to-back (observed and dark), the first-run slot alternating per
/// query. Returns accumulated (observed, dark) execution time.
fn run_paired_round(
    session: &Session,
    queries: usize,
    seed: u64,
    mode: Mode,
) -> (Duration, Duration) {
    let prepared: Vec<_> =
        SHAPES.iter().map(|sql| session.prepare(sql).expect("prepare")).collect();
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut observed = Duration::ZERO;
    let mut dark = Duration::ZERO;
    for qi in 0..queries {
        let shape = qi % SHAPES.len();
        let params = shape_params(shape, &mut rng);
        // Even queries run observed-first, odd queries dark-first.
        for turn in 0..2 {
            let on = (qi % 2 == 0) == (turn == 0);
            set_observability(mode, on);
            let start = Instant::now();
            prepared[shape].execute(&params).expect("browser query");
            let elapsed = start.elapsed();
            if on {
                observed += elapsed;
            } else {
                dark += elapsed;
            }
        }
    }
    (observed, dark)
}

fn median_ms(samples: &[Duration]) -> f64 {
    let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.total_cmp(b));
    ms[ms.len() / 2]
}

fn json_list(samples: &[Duration]) -> String {
    let items: Vec<String> =
        samples.iter().map(|d| format!("{:.3}", d.as_secs_f64() * 1e3)).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let mut journal_rows = 500usize;
    let mut queries = 300usize;
    let mut rounds = 5usize;
    let mut threads = 1usize;
    let mut mode = Mode::Both;
    let mut gate_overhead_pct: Option<f64> = None;

    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < raw.len() {
        let (flag, value) = match raw[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = raw[i].clone();
                i += 1;
                let v = raw.get(i).unwrap_or_else(|| panic!("{f} needs a value")).clone();
                (f, v)
            }
        };
        match flag.as_str() {
            "--journal-rows" => {
                journal_rows = value.parse().expect("--journal-rows takes a number")
            }
            "--queries" => queries = value.parse().expect("--queries takes a number"),
            "--rounds" => rounds = value.parse().expect("--rounds takes a number"),
            "--threads" => threads = value.parse().expect("--threads takes a number"),
            "--mode" => {
                mode = match value.as_str() {
                    "both" => Mode::Both,
                    "trace" => Mode::Trace,
                    "store" => Mode::Store,
                    other => panic!("--mode takes both|trace|store, got {other}"),
                }
            }
            "--gate-overhead-pct" => {
                gate_overhead_pct = Some(value.parse().expect("--gate-overhead-pct takes a number"))
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    assert!(rounds > 0 && queries > 0);

    let mode_label = match mode {
        Mode::Both => "trace+store",
        Mode::Trace => "trace-only",
        Mode::Store => "store-only",
    };
    println!("== obs_sweep: tracing + query-store overhead on the browser workload ==");
    println!(
        "journal_rows={journal_rows} queries/batch={queries} rounds={rounds} \
         threads={threads} mode={mode_label}"
    );

    let server = build_server(journal_rows, threads);
    let session = server.session();
    let store = QueryStore::global();
    store.clear();

    // Warm both paths with a full batch each (plan cache fill, first-touch
    // allocations, branch predictors), then clear the store so the reported
    // aggregates come from the timed runs only.
    set_observability(Mode::Both, true);
    run_batch(&session, queries, 0xFEED);
    set_observability(Mode::Both, false);
    run_batch(&session, queries, 0xFEED);
    store.clear();

    let mut on_times = Vec::with_capacity(rounds);
    let mut off_times = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let seed = 0x0B5_0000 + round as u64;
        let (on, off) = run_paired_round(&session, queries, seed, mode);
        on_times.push(on);
        off_times.push(off);
    }
    set_observability(Mode::Both, true);

    let on_ms = median_ms(&on_times);
    let off_ms = median_ms(&off_times);
    // Index i in both vectors is one round over the same parameter draws;
    // the median over rounds is robust to the occasional round that caught
    // scheduler interference.
    let mut round_pcts: Vec<f64> = on_times
        .iter()
        .zip(&off_times)
        .map(|(on, off)| (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64() * 100.0)
        .collect();
    round_pcts.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = round_pcts[round_pcts.len() / 2];
    println!(
        "\nmedian round: observed={on_ms:.2}ms dark={off_ms:.2}ms \
         interleaved overhead={overhead_pct:+.2}%"
    );

    // What the observed half of the run deposited in the store.
    let aggs = store.aggregates();
    let records: u64 = aggs.iter().map(|a| a.execs).sum();
    println!("store: {} digest(s), {} execution(s) recorded", aggs.len(), records);
    for a in &aggs {
        println!(
            "  digest={:016x} execs={} hit_rate={:.1}% p50={:.3}ms p95={:.3}ms rows_out={}",
            a.digest,
            a.execs,
            a.cache_hits as f64 / (a.cache_hits + a.cache_misses).max(1) as f64 * 100.0,
            a.latency_quantile(0.50) * 1e3,
            a.latency_quantile(0.95) * 1e3,
            a.rows_out_total,
        );
    }

    // Persistence round-trip: save, reload into a fresh store, compare.
    let jsonl_path = std::path::Path::new("query_store.jsonl");
    store.save_jsonl(jsonl_path).expect("write query_store.jsonl");
    let reloaded = QueryStore::new();
    let report = reloaded.load_jsonl(jsonl_path).expect("reload query_store.jsonl");
    assert_eq!(report.skipped, 0, "no record may be skipped on a clean round-trip");
    let lines = report.loaded;
    let identical = reloaded.aggregates() == aggs;
    assert!(identical, "JSONL reload must reproduce the aggregates exactly");
    let bytes = std::fs::metadata(jsonl_path).map(|m| m.len()).unwrap_or(0);
    println!("persisted {lines} digest line(s), {bytes} bytes, reload identical={identical}");

    let traces_total = MetricsRegistry::global().counter(vdm_obs::names::TRACES_TOTAL);
    let mut json = String::from("{\n  \"bench\": \"obs_sweep\",\n");
    let _ = writeln!(json, "  \"mode\": \"{mode_label}\",");
    let _ = writeln!(json, "  \"journal_rows\": {journal_rows},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"queries_per_batch\": {queries},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"observed_round_ms\": {},", json_list(&on_times));
    let _ = writeln!(json, "  \"dark_round_ms\": {},", json_list(&off_times));
    let _ = writeln!(json, "  \"median_observed_ms\": {on_ms:.3},");
    let _ = writeln!(json, "  \"median_dark_ms\": {off_ms:.3},");
    let pcts: Vec<String> = round_pcts.iter().map(|p| format!("{p:.3}")).collect();
    let _ = writeln!(json, "  \"round_overhead_pcts\": [{}],", pcts.join(", "));
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "  \"traces_total\": {traces_total},");
    let _ = writeln!(
        json,
        "  \"store\": {{\"digests\": {}, \"records\": {records}, \"jsonl_lines\": {lines}, \
         \"jsonl_bytes\": {bytes}, \"reload_identical\": {identical}}}",
        aggs.len(),
    );
    json.push_str("}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json:\n{json}");

    if let Some(gate) = gate_overhead_pct {
        if overhead_pct > gate {
            eprintln!(
                "FAIL: tracing+store overhead {overhead_pct:.2}% exceeds the {gate:.2}% gate"
            );
            std::process::exit(1);
        }
        println!("gate: overhead {overhead_pct:.2}% clears the {gate:.2}% gate");
    }
}
