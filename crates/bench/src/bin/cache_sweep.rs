//! Delta-fraction sweep for incremental cached-view maintenance.
//!
//! One workload — the par_sweep `agg_over_join` shape (fact ⋈ dim →
//! grouped COUNT/SUM) cached as a dynamic view over a ≥1M-row base —
//! maintained across delta fractions {0.1%, 1%, 10%}. Each fraction
//! inserts `base × fraction` fresh fact rows and times the view's
//! incremental fold against a cold full recompute of the same plan at
//! the same snapshot, asserting multiset-digest equality every round.
//!
//! The point of the numbers: incremental cost should track the delta,
//! not the base, so the speedup over full recompute must *grow* as the
//! fraction shrinks. Emits `BENCH_cache.json` in the working directory.
//!
//! Run: `cargo run --release -p vdm-bench --bin cache_sweep`
//! Optional args: `cache_sweep <fact_rows>`, plus
//! `--fractions=0.001,0.01,0.1` to restrict the sweep and
//! `--gate-delta-speedup=5` to exit non-zero when the 1%-delta
//! speedup over full recompute falls below the gate (the CI
//! O(delta)-scaling smoke check).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vdm_cache::{multiset_digest, CacheMode, MaintainOutcome, ViewCache};
use vdm_catalog::TableBuilder;
use vdm_expr::{AggExpr, AggFunc, Expr};
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_storage::StorageEngine;
use vdm_types::{Decimal, SplitMix64, SqlType, Value};

const DEFAULT_FRACTIONS: [f64; 3] = [0.001, 0.01, 0.1];
const DIM_ROWS: i64 = 1_000;

struct FractionResult {
    fraction: f64,
    delta_rows: usize,
    incremental: Duration,
    full: Duration,
}

impl FractionResult {
    fn speedup(&self) -> f64 {
        self.full.as_secs_f64() / self.incremental.as_secs_f64().max(f64::EPSILON)
    }
}

/// Loads the par_sweep agg-over-join schema (dim_product ⋈ fact_sales →
/// group by category) and returns the aggregate plan with a root
/// `Aggregate` node, which the maintenance planner classifies as
/// foldable.
fn build_workload(engine: &StorageEngine, fact_rows: usize) -> PlanRef {
    let dim = Arc::new(
        TableBuilder::new("dim_product")
            .column("d_id", SqlType::Int, false)
            .column("d_category", SqlType::Int, false)
            .primary_key(&["d_id"])
            .build()
            .expect("dim table"),
    );
    let fact = Arc::new(
        TableBuilder::new("fact_sales")
            .column("f_id", SqlType::Int, false)
            .column("f_product", SqlType::Int, false)
            .column("f_amount", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["f_id"])
            .build()
            .expect("fact table"),
    );
    engine.create_table(Arc::clone(&dim)).expect("create dim");
    engine.create_table(Arc::clone(&fact)).expect("create fact");
    engine
        .insert(
            "dim_product",
            (0..DIM_ROWS).map(|i| vec![Value::Int(i), Value::Int(i % 37)]).collect(),
        )
        .expect("load dim");
    let mut rng = SplitMix64::seed_from_u64(0xFACADE);
    insert_facts(engine, &mut rng, 0, fact_rows);
    engine.merge_delta("fact_sales").expect("merge fact");
    engine.merge_delta("dim_product").expect("merge dim");

    let join =
        LogicalPlan::inner_join(LogicalPlan::scan(fact), LogicalPlan::scan(dim), vec![(1, 0)])
            .expect("join plan");
    LogicalPlan::aggregate(
        join,
        vec![(Expr::col(4), "category".into())],
        vec![
            (AggExpr::count_star(), "n".into()),
            (AggExpr::new(AggFunc::Sum, Expr::col(2)), "revenue".into()),
        ],
    )
    .expect("aggregate plan")
}

fn insert_facts(engine: &StorageEngine, rng: &mut SplitMix64, first_id: usize, count: usize) {
    let mut batch = Vec::with_capacity(count.min(50_000));
    for id in first_id..first_id + count {
        batch.push(vec![
            Value::Int(id as i64),
            Value::Int(rng.random_range(0..DIM_ROWS)),
            Value::Dec(Decimal::from_units(rng.random_range(0..1_000_000i64) as i128, 2)),
        ]);
        if batch.len() == 50_000 {
            engine.insert("fact_sales", std::mem::take(&mut batch)).expect("load fact");
        }
    }
    if !batch.is_empty() {
        engine.insert("fact_sales", batch).expect("load fact tail");
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

fn to_json(fact_rows: usize, results: &[FractionResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"cache_sweep\",\n");
    let _ = writeln!(out, "  \"workload\": \"agg_over_join\",\n  \"base_rows\": {fact_rows},");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"fraction\": {}, \"delta_rows\": {}, \"incremental_millis\": {:.3}, \"full_millis\": {:.3}, \"speedup\": {:.2}}}{}",
            r.fraction,
            r.delta_rows,
            r.incremental.as_secs_f64() * 1e3,
            r.full.as_secs_f64() * 1e3,
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut positional: Vec<usize> = Vec::new();
    let mut fractions: Vec<f64> = DEFAULT_FRACTIONS.to_vec();
    let mut gate_delta_speedup: Option<f64> = None;
    for arg in std::env::args().skip(1) {
        if let Some(list) = arg.strip_prefix("--fractions=") {
            fractions = list
                .split(',')
                .map(|s| s.trim().parse().expect("--fractions takes a comma-separated list"))
                .collect();
            assert!(!fractions.is_empty(), "--fractions needs at least one step");
        } else if let Some(gate) = arg.strip_prefix("--gate-delta-speedup=") {
            gate_delta_speedup = Some(gate.parse().expect("--gate-delta-speedup takes a number"));
        } else {
            positional.push(arg.parse().expect("positional arg is the fact row count"));
        }
    }
    let fact_rows: usize = positional.first().copied().unwrap_or(1_000_000);

    println!("== cache_sweep: incremental view maintenance vs full recompute ==");
    println!("[agg_over_join] fact_rows={fact_rows}, dim_rows={DIM_ROWS}");

    let engine = StorageEngine::new();
    let plan = build_workload(&engine, fact_rows);
    let cache = ViewCache::new();
    let view =
        cache.register("agg", Arc::clone(&plan), CacheMode::Dynamic, &engine).expect("register");
    // The bench times the production fast path; equivalence is asserted
    // below with an explicit digest check against a cold recompute.
    view.set_verify(false);

    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    let mut next_id = fact_rows;
    let mut results = Vec::new();
    // Per fraction: 5 rounds of (insert delta → time one incremental
    // maintain) interleaved with full-recompute timings at the same
    // snapshot, medians of both. Interleaving keeps machine-load drift
    // from landing on one side of the comparison.
    let iters = 5;
    for &fraction in &fractions {
        let delta_rows = ((fact_rows as f64 * fraction) as usize).max(1);
        let mut inc_samples = Vec::with_capacity(iters);
        let mut full_samples = Vec::with_capacity(iters);
        for round in 0..iters {
            insert_facts(&engine, &mut rng, next_id, delta_rows);
            next_id += delta_rows;
            let t0 = Instant::now();
            let outcome = view.maintain(&engine).expect("maintain");
            inc_samples.push(t0.elapsed());
            assert!(
                matches!(outcome, MaintainOutcome::Incremental { .. }),
                "[fraction {fraction}] round {round} expected an incremental fold, got {}",
                outcome.describe()
            );
            let t0 = Instant::now();
            let (cold, _) =
                vdm_exec::execute_at(&plan, &engine, engine.snapshot()).expect("full recompute");
            full_samples.push(t0.elapsed());
            let served = view.read(&engine).expect("read view");
            assert_eq!(
                multiset_digest(&served),
                multiset_digest(&cold),
                "[fraction {fraction}] round {round} incremental result diverged from recompute"
            );
        }
        inc_samples.sort();
        full_samples.sort();
        let r = FractionResult {
            fraction,
            delta_rows,
            incremental: inc_samples[iters / 2],
            full: full_samples[iters / 2],
        };
        println!(
            "  fraction={:>6} delta_rows={:>8} incremental={:>9} full={:>9} speedup={:.1}x",
            format!("{:.2}%", fraction * 100.0),
            r.delta_rows,
            fmt_duration(r.incremental),
            fmt_duration(r.full),
            r.speedup(),
        );
        results.push(r);
    }
    let stats = view.stats();
    println!(
        "view stats: full={} incremental={} noop={} delta_rows={}",
        stats.full_refreshes, stats.incremental_refreshes, stats.noop_refreshes, stats.delta_rows
    );

    let json = to_json(fact_rows, &results);
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("\nwrote BENCH_cache.json:\n{json}");

    if let Some(gate) = gate_delta_speedup {
        // Gate on the 1% fraction when swept, else the smallest fraction:
        // the regime where O(delta) maintenance must clearly beat O(base).
        let gated = results
            .iter()
            .find(|r| (r.fraction - 0.01).abs() < 1e-9)
            .or_else(|| results.iter().min_by(|a, b| a.fraction.total_cmp(&b.fraction)))
            .expect("at least one fraction");
        let speedup = gated.speedup();
        if speedup < gate {
            eprintln!(
                "FAIL: fraction {:.2}% incremental speedup {speedup:.2}x is below the {gate:.2}x gate",
                gated.fraction * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "gate: fraction {:.2}% incremental speedup {speedup:.2}x clears the {gate:.2}x gate",
            gated.fraction * 100.0
        );
    }
}
