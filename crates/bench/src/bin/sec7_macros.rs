//! Regenerates the **§7.2** demonstration: expression macros — reusable
//! calculation formulas over aggregates.
//!
//! The paper's example: margin is `1 - sum(supplycost) / sum(revenue)`,
//! a non-additive ratio of aggregates. Averaging pre-computed margins is
//! wrong (10% on $100 plus 20% on $900 is a 19% margin, not 15%); defining
//! the formula once as a macro makes the correct computation reusable
//! under any GROUP BY.
//!
//! Run: `cargo run --release -p vdm-bench --bin sec7_macros`

use vdm_core::Database;
use vdm_optimizer::Profile;

fn main() {
    let mut db = Database::new(Profile::hana());
    let gen = vdm_data::tpch::Tpch { sf: 0.05, seed: 42, with_foreign_keys: false };
    let (catalog, engine) = db.catalog_and_engine();
    gen.build(catalog, engine).expect("TPC-H load");

    // Define the margin macro once, on the joined line-item view.
    db.execute(
        "create view vlineitem as
         select l.l_orderkey, l.l_suppkey, l.l_extendedprice, l.l_discount, ps.ps_supplycost
         from lineitem l
         join partsupp ps on l.l_partkey = ps.ps_partkey and l.l_suppkey = ps.ps_suppkey
         with expression macros (
             1 - sum(ps_supplycost) / sum(l_extendedprice * (1 - l_discount)) as margin
         )",
    )
    .expect("view with macro");

    println!("== §7.2: EXPRESSION_MACRO(margin) reused across grouping levels ==\n");
    // Per-order margins.
    let by_order = db
        .query(
            "select l_orderkey, expression_macro(margin) from vlineitem
             group by l_orderkey order by l_orderkey limit 5",
        )
        .expect("per-order margins");
    println!("per order (first 5):");
    for row in by_order.to_rows() {
        println!("  order {:>4}  margin {}", row[0], row[1]);
    }
    // Per-supplier margins — same formula, different GROUP BY.
    let by_supplier = db
        .query(
            "select l_suppkey, expression_macro(margin) from vlineitem
             group by l_suppkey order by 2 desc limit 5",
        )
        .expect("per-supplier margins");
    println!("\nbest suppliers by margin:");
    for row in by_supplier.to_rows() {
        println!("  supplier {:>3}  margin {}", row[0], row[1]);
    }

    // The pitfall the macro avoids: averaging margins ignores weights.
    let correct = db
        .query("select expression_macro(margin) from vlineitem group by l_suppkey order by 1")
        .expect("per-supplier margins");
    let overall =
        db.query("select expression_macro(margin) from vlineitem").expect("overall margin").row(0)
            [0]
        .as_dec()
        .expect("decimal")
        .to_f64();
    let naive_avg: f64 = {
        let rows = correct.to_rows();
        let n = rows.len() as f64;
        rows.iter().map(|r| r[0].as_dec().expect("decimal").to_f64()).sum::<f64>() / n
    };
    println!("\noverall margin (correct, weighted): {overall:.4}");
    println!("average of per-supplier margins:    {naive_avg:.4}");
    println!(
        "difference: {:.4} — the non-additivity the paper's §7.2 warns about",
        (overall - naive_avg).abs()
    );
    assert!((overall - naive_avg).abs() > 1e-6, "the weighting difference must be observable");
}
