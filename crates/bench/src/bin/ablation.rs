//! Capability ablation: remove one optimizer capability at a time from the
//! full (HANA) profile and report which of the paper's experiment queries
//! stop optimizing. This maps each Y-cell of Tables 1–4 to the exact
//! derivation/rewrite it depends on — the design-choice accounting
//! DESIGN.md promises.
//!
//! Run: `cargo run --release -p vdm-bench --bin ablation`

use vdm_bench::{harness, queries};
use vdm_optimizer::{Capability, Optimizer, Profile};
use vdm_plan::PlanRef;

fn main() {
    let (catalog, _engine) = harness::setup_tpch(0.02, false);
    let mut suite: Vec<(&str, PlanRef)> = queries::all_uaj(&catalog);
    suite.extend(queries::all_asj(&catalog));
    suite.extend(queries::all_union(&catalog));
    suite.push(("Fig. 13(a)", queries::asj_anchor_union(&catalog).expect("fig 13a")));

    let ablations: &[(Capability, &str)] = &[
        (Capability::UajElimination, "UAJ elimination (rule)"),
        (Capability::UniqueFromPrimaryKey, "uniqueness from primary keys"),
        (Capability::UniqueFromGroupBy, "uniqueness from GROUP BY"),
        (Capability::UniqueFromConstFilter, "uniqueness from constant filters"),
        (Capability::UniqueThroughJoin, "uniqueness through joins"),
        (Capability::UniqueThroughSortLimit, "uniqueness through sort+limit"),
        (Capability::UnionUniqueDisjoint, "uniqueness over disjoint unions"),
        (Capability::UnionUniqueBranchId, "uniqueness over branch-id unions"),
        (Capability::AsjBasic, "ASJ: bare self-joins"),
        (Capability::AsjSubquery, "ASJ: subquery anchors"),
        (Capability::AsjFilteredAugmenter, "ASJ: filtered augmenters"),
        (Capability::AsjThroughUnion, "ASJ: anchor-side unions"),
    ];

    let full = Profile::hana();
    let baseline: Vec<bool> =
        suite.iter().map(|(_, q)| harness::join_free_under(&full, q)).collect();
    assert!(baseline.iter().all(|&b| b), "full profile optimizes every suite query");

    println!("Removed capability                        | queries that stop optimizing");
    println!("{}", "-".repeat(90));
    for (cap, label) in ablations {
        let profile = Profile::hana().without(*cap);
        let broken: Vec<&str> = suite
            .iter()
            .filter(|(_, q)| !harness::join_free_under(&profile, q))
            .map(|(name, _)| *name)
            .collect();
        println!(
            "{label:41} | {}",
            if broken.is_empty() { "(none)".to_string() } else { broken.join(", ") }
        );
    }

    // Limit pushdown ablation uses its own success criterion.
    let paging = queries::paging(&catalog).expect("paging");
    let without = Optimizer::new(Profile::hana().without(Capability::LimitPushdownAj))
        .optimize(&paging)
        .expect("optimize");
    println!(
        "{:41} | {}",
        "limit pushdown across AJ",
        if queries::limit_below_join(&without) { "(none)" } else { "Fig. 6 paging" }
    );
}
