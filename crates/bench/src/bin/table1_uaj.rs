//! Regenerates **Table 1** of the paper: UAJ optimization status of the
//! seven Fig. 5 queries across the five optimizer profiles, plus the
//! execution-time payoff of the elimination.
//!
//! Run: `cargo run --release -p vdm-bench --bin table1_uaj`

use vdm_bench::{harness, queries};
use vdm_optimizer::{Optimizer, Profile};

fn main() {
    let (catalog, engine) = harness::setup_tpch(0.1, false);
    let systems = Profile::paper_systems();
    let queries_list = queries::all_uaj(&catalog);

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (name, plan) in &queries_list {
        rows.push(name.to_string());
        cells
            .push(systems.iter().map(|p| harness::join_free_under(p, plan)).collect::<Vec<bool>>());
    }
    println!(
        "{}",
        harness::render_matrix(
            "Table 1: UAJ Optimization Status (Y = all joins removed)",
            &rows,
            &systems,
            &cells
        )
    );

    // Paper's Table 1 for comparison.
    let paper: &[[bool; 5]] = &[
        [true, true, false, true, true],
        [true, true, false, false, true],
        [true, true, false, true, true],
        [true, false, false, false, true],
        [true, true, false, false, true],
        [true, false, false, false, true],
        [true, false, false, false, false],
    ];
    let matches = cells.iter().zip(paper).all(|(got, want)| got.as_slice() == want.as_slice());
    println!(
        "Paper agreement: {}",
        if matches { "EXACT (all 35 cells)" } else { "DIVERGES — investigate!" }
    );

    // Execution-time payoff (unoptimized vs HANA-optimized).
    println!("\nExecution time (median of 5 runs, TPC-H sf=0.1):");
    println!("{:8} | {:>12} | {:>12} | {:>8}", "query", "unoptimized", "optimized", "speedup");
    println!("{}", "-".repeat(52));
    let hana = Optimizer::hana();
    for (name, plan) in &queries_list {
        let optimized = hana.optimize(plan).expect("optimize");
        let t_raw = harness::time_plan(&engine, plan, 5);
        let t_opt = harness::time_plan(&engine, &optimized, 5);
        println!(
            "{:8} | {:>12} | {:>12} | {:>7.1}x",
            name,
            harness::fmt_duration(t_raw),
            harness::fmt_duration(t_opt),
            t_raw.as_secs_f64() / t_opt.as_secs_f64().max(1e-9),
        );
    }
}
