//! Multi-session serving sweep for `vdm-serve`.
//!
//! The paper's workload is many ERP users paging through the same browser
//! views concurrently — a handful of statement shapes, re-executed with
//! different parameter values from hundreds of sessions. This bench
//! measures exactly that against one [`Server`]:
//!
//! * ERP dataset + the Fig. 3 `journal_entry_item_browser` registered as
//!   a queryable view, HANA profile;
//! * three prepared paging shapes (list page, document drill-down,
//!   per-year count) with per-session random parameter values;
//! * session counts swept over `{1, 8, 64, 256}` (configurable), every
//!   session on its own OS thread, all queries executing on the server's
//!   one shared worker pool;
//! * interactive pacing: each session thinks for `--think-ms` between
//!   queries (with a random initial phase), like the paper's §4.4 paging
//!   users. Without think time, N closed-loop sessions on few cores only
//!   measure run-queue depth; with it, per-query latency is the serving
//!   latency an interactive user sees. The highest step typically pushes
//!   offered load past one core's capacity on small machines — that
//!   saturation is part of the result;
//! * a **baseline**: the same mixed workload on a plan-cache-disabled
//!   server, single session, so every query pays parse + bind + optimize
//!   (what each query cost before the serving layer).
//!
//! Emits a table and `BENCH_serve.json` with p50/p99 latency, throughput,
//! and plan-cache hit rate per session count.
//!
//! Run: `cargo run --release -p vdm-bench --bin serve_sweep`
//! Args (both `--flag=v` and `--flag v` forms):
//!   `--sessions 1,8,64,256`  session-count steps
//!   `--queries N`            queries per session (default 16)
//!   `--journal-rows N`       ERP journal size (default 500)
//!   `--think-ms X`           per-session think time between queries (default 600)
//!   `--gate-p99-ms X`        exit non-zero if the highest step's p99 exceeds X ms
//!   `--gate-hit-rate X`      exit non-zero if its hit rate falls below X (0..1)

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use vdm_core::Database;
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_optimizer::Profile;
use vdm_serve::Server;
use vdm_types::{SplitMix64, Value};

const DEFAULT_SESSION_STEPS: [usize; 4] = [1, 8, 64, 256];

/// The browser paging shapes every session cycles through. Parameter
/// generators draw from the ERP generator's value ranges (companies
/// 1..=20, fiscal years 2023..=2026, documents 1..=2500).
const SHAPES: [&str; 3] = [
    "select AccountingDocument, LineItem, PostingDate, AmountInCompanyCodeCurrency, \
     SupplierName, CustomerName from journal_entry_item_browser \
     where CompanyCode = ? and FiscalYear = ? \
     order by AccountingDocument, LineItem limit 50",
    "select LineItem, AmountInCompanyCodeCurrency, DebitCreditCode, CompanyName \
     from journal_entry_item_browser \
     where CompanyCode = ? and FiscalYear = ? and AccountingDocument = ? \
     order by LineItem",
    "select FiscalYear, count(*) as n from journal_entry_item_browser \
     where CompanyCode = ? group by FiscalYear order by FiscalYear",
];

fn shape_params(shape: usize, rng: &mut SplitMix64) -> Vec<Value> {
    let company = Value::Int(rng.random_range(1..=20));
    match shape {
        0 => vec![company, Value::Int(rng.random_range(2023..=2026))],
        1 => vec![
            company,
            Value::Int(rng.random_range(2023..=2026)),
            Value::Int(rng.random_range(1..=2_500)),
        ],
        _ => vec![company],
    }
}

/// ERP database with the browser view registered, behind a server whose
/// plan cache holds `cache_capacity` entries (0 = disabled, the baseline).
fn build_server(journal_rows: usize, cache_capacity: usize) -> Server {
    let mut db = Database::new(Profile::hana());
    db.set_plan_cache_capacity(cache_capacity);
    let erp = Erp { journal_rows, seed: 4711 };
    let (catalog, engine) = db.catalog_and_engine();
    let schema = erp.build(catalog, engine).expect("ERP generation");
    db.invalidate_plans();
    let browser = journal_entry_item_browser(&schema).expect("browser view");
    db.register_view("journal_entry_item_browser", browser.protected.clone());
    Server::from_database(db)
}

struct SweepResult {
    sessions: usize,
    queries: usize,
    p50: Duration,
    p99: Duration,
    throughput_qps: f64,
    hit_rate: f64,
    hits: u64,
    misses: u64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Runs `sessions` OS threads, each with its own [`vdm_serve::Session`]
/// and prepared statements, `queries_per_session` queries round-robin over
/// the shapes, thinking `think` between queries (random initial phase so
/// sessions de-synchronize). Returns overall latency percentiles,
/// throughput, and the plan cache's hit rate over the run.
fn sweep(
    server: &Server,
    sessions: usize,
    queries_per_session: usize,
    think: Duration,
) -> SweepResult {
    let before = server.plan_cache().stats();
    let start = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|si| {
                scope.spawn(move || {
                    let session = server.session();
                    let prepared: Vec<_> =
                        SHAPES.iter().map(|sql| session.prepare(sql).expect("prepare")).collect();
                    let mut rng = SplitMix64::seed_from_u64(0x5E55_1000 + si as u64);
                    if !think.is_zero() {
                        let phase = rng.random_range(0..think.as_micros().max(1) as u64);
                        std::thread::sleep(Duration::from_micros(phase));
                    }
                    let mut lats = Vec::with_capacity(queries_per_session);
                    for qi in 0..queries_per_session {
                        let shape = qi % SHAPES.len();
                        let params = shape_params(shape, &mut rng);
                        let t = Instant::now();
                        let batch = prepared[shape].execute(&params).expect("query");
                        lats.push(t.elapsed());
                        // Any shape can legitimately page to an empty
                        // result; the count query never does.
                        if shape == 2 {
                            assert!(batch.num_rows() > 0, "count query returned no groups");
                        }
                        if !think.is_zero() && qi + 1 < queries_per_session {
                            // Jitter ±50% so sessions stay de-phased:
                            // identical intervals re-synchronize into
                            // arrival bursts that measure the burst, not
                            // the server.
                            let us = think.as_micros().max(2) as u64;
                            std::thread::sleep(Duration::from_micros(
                                rng.random_range(us / 2..us + us / 2),
                            ));
                        }
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("session thread")).collect()
    });
    let wall = start.elapsed();
    latencies.sort();
    let after = server.plan_cache().stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let lookups = (hits + misses).max(1);
    SweepResult {
        sessions,
        queries: latencies.len(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        throughput_qps: latencies.len() as f64 / wall.as_secs_f64().max(f64::EPSILON),
        hit_rate: hits as f64 / lookups as f64,
        hits,
        misses,
    }
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

fn to_json(
    journal_rows: usize,
    think_ms: f64,
    baseline: &SweepResult,
    sweeps: &[SweepResult],
) -> String {
    let row = |r: &SweepResult| {
        format!(
            "{{\"sessions\": {}, \"queries\": {}, \"p50_millis\": {:.3}, \"p99_millis\": {:.3}, \"throughput_qps\": {:.1}, \"hit_rate\": {:.4}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            r.sessions,
            r.queries,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.throughput_qps,
            r.hit_rate,
            r.hits,
            r.misses,
        )
    };
    let mut out = String::from("{\n  \"bench\": \"serve_sweep\",\n");
    let _ = writeln!(out, "  \"journal_rows\": {journal_rows},");
    let _ = writeln!(out, "  \"think_ms\": {think_ms:.1},");
    let _ = writeln!(out, "  \"baseline_uncached_single_session\": {},", row(baseline));
    out.push_str("  \"sweeps\": [\n");
    let base_p50 = baseline.p50.as_secs_f64();
    for (i, r) in sweeps.iter().enumerate() {
        let speedup = base_p50 / r.p50.as_secs_f64().max(f64::EPSILON);
        let mut line = row(r);
        let insert = format!(", \"p50_speedup_vs_baseline\": {speedup:.2}}}");
        line.replace_range(line.len() - 1.., &insert);
        let _ = writeln!(out, "    {}{}", line, if i + 1 == sweeps.len() { "" } else { "," });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut steps: Vec<usize> = DEFAULT_SESSION_STEPS.to_vec();
    let mut queries_per_session = 16usize;
    let mut journal_rows = 500usize;
    let mut think_ms = 600f64;
    let mut gate_p99_ms: Option<f64> = None;
    let mut gate_hit_rate: Option<f64> = None;

    // Accept both `--flag=value` and `--flag value`.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < raw.len() {
        let (flag, value) = match raw[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = raw[i].clone();
                i += 1;
                let v = raw.get(i).unwrap_or_else(|| panic!("{f} needs a value")).clone();
                (f, v)
            }
        };
        match flag.as_str() {
            "--sessions" => {
                steps = value
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sessions takes a comma-separated list"))
                    .collect();
                assert!(!steps.is_empty(), "--sessions needs at least one step");
            }
            "--queries" => queries_per_session = value.parse().expect("--queries takes a number"),
            "--journal-rows" => {
                journal_rows = value.parse().expect("--journal-rows takes a number")
            }
            "--think-ms" => think_ms = value.parse().expect("--think-ms takes a number"),
            "--gate-p99-ms" => {
                gate_p99_ms = Some(value.parse().expect("--gate-p99-ms takes a number"))
            }
            "--gate-hit-rate" => {
                gate_hit_rate = Some(value.parse().expect("--gate-hit-rate takes a number"))
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let think = Duration::from_secs_f64(think_ms.max(0.0) / 1e3);
    println!("== serve_sweep: concurrent sessions over one server ==");
    println!(
        "journal_rows={journal_rows} queries/session={queries_per_session} think={think_ms:.0}ms pool threads={}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Baseline: plan cache disabled, one session, same interactive pacing
    // as the served sweep — every query re-parses, re-binds, and
    // re-optimizes the Fig. 3 plan, so its p50 is the per-query
    // parse+optimize+execute cost the serving layer is measured against.
    println!("\n[baseline] single session, plan cache disabled");
    let cold = build_server(journal_rows, 0);
    let baseline = sweep(&cold, 1, queries_per_session.max(SHAPES.len()), think);
    println!(
        "  baseline  p50={} p99={} throughput={:.1} q/s",
        fmt_ms(baseline.p50),
        fmt_ms(baseline.p99),
        baseline.throughput_qps
    );
    drop(cold);

    // The served sweep: one warm server, cache enabled.
    let server = build_server(journal_rows, vdm_core::DEFAULT_PLAN_CACHE_CAPACITY);
    // Warm the cache once per shape so the sweep measures steady-state
    // serving, not a thundering herd of identical cold optimizations.
    {
        let session = server.session();
        let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
        for (si, sql) in SHAPES.iter().enumerate() {
            let p = session.prepare(sql).expect("warm-up prepare");
            p.execute(&shape_params(si, &mut rng)).expect("warm-up query");
        }
    }

    println!("\n[served] plan cache capacity={}", server.plan_cache().capacity());
    let mut sweeps = Vec::new();
    for &sessions in &steps {
        let r = sweep(&server, sessions, queries_per_session, think);
        println!(
            "  sessions={:>4}  p50={} p99={} throughput={:.1} q/s hit_rate={:.1}% ({} hits / {} misses)",
            r.sessions,
            fmt_ms(r.p50),
            fmt_ms(r.p99),
            r.throughput_qps,
            r.hit_rate * 100.0,
            r.hits,
            r.misses,
        );
        sweeps.push(r);
    }

    let json = to_json(journal_rows, think_ms, &baseline, &sweeps);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json:\n{json}");

    let top = sweeps.last().expect("at least one sweep step");
    println!(
        "summary: sessions={} p50 {} vs uncached single-session p50 {} ({:.1}x), hit rate {:.1}%",
        top.sessions,
        fmt_ms(top.p50),
        fmt_ms(baseline.p50),
        baseline.p50.as_secs_f64() / top.p50.as_secs_f64().max(f64::EPSILON),
        top.hit_rate * 100.0,
    );

    let mut failed = false;
    if let Some(gate) = gate_p99_ms {
        let p99_ms = top.p99.as_secs_f64() * 1e3;
        if p99_ms > gate {
            eprintln!(
                "FAIL: sessions={} p99 {p99_ms:.2}ms exceeds the {gate:.2}ms gate",
                top.sessions
            );
            failed = true;
        } else {
            println!(
                "gate: sessions={} p99 {p99_ms:.2}ms clears the {gate:.2}ms gate",
                top.sessions
            );
        }
    }
    if let Some(gate) = gate_hit_rate {
        if top.hit_rate < gate {
            eprintln!(
                "FAIL: sessions={} hit rate {:.4} is below the {gate:.4} gate",
                top.sessions, top.hit_rate
            );
            failed = true;
        } else {
            println!(
                "gate: sessions={} hit rate {:.4} clears the {gate:.4} gate",
                top.sessions, top.hit_rate
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
