//! Regenerates **Fig. 14**: performance impact of the custom-fields
//! extension, with and without declared CASE JOIN intent.
//!
//! For each generated view `V` we time `select * from V limit 10` against
//! the original view and against its custom-field extension view, twice:
//!
//! * **(a)** extension *without* intent — the optimizer must recognize the
//!   ASJ-over-UNION-ALL heuristically, and fails on the deep shapes;
//! * **(b)** extension *with* CASE JOIN — always recognized.
//!
//! Output: one CSV row per view (time in µs), plus a summary of
//! recognition rates and slowdown distribution. Points far off the
//! diagonal in regime (a) are exactly the paper's scatter outliers.
//!
//! Run: `cargo run --release -p vdm-bench --bin fig14_custom_fields`

use vdm_bench::harness;
use vdm_data::figview::{generate, Fig14Config};
use vdm_optimizer::Optimizer;
use vdm_plan::{plan_stats, LogicalPlan, PlanRef};

fn main() {
    let cfg = Fig14Config { n_views: 100, rows_per_table: 4_000, seed: 1414 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = vdm_storage::StorageEngine::new();
    eprintln!("generating {} view pairs ...", cfg.n_views);
    let fig = generate(&cfg, &mut catalog, &engine).expect("fig14 population");
    let hana = Optimizer::hana();
    let page = |p: &PlanRef| LogicalPlan::limit(p.clone(), 0, Some(10));

    println!("view,deep,orig_us,ext_no_intent_us,ext_case_join_us,heuristic_recognized");
    let mut recognized = 0usize;
    let mut slowdown_a_shallow: Vec<f64> = Vec::new();
    let mut slowdown_a_deep: Vec<f64> = Vec::new();
    let mut slowdown_b: Vec<f64> = Vec::new();
    for case in &fig.cases {
        let orig = hana.optimize(&page(&case.original)).expect("optimize original");
        let plain = hana.optimize(&page(&case.extended_plain)).expect("optimize plain");
        let with_case = hana.optimize(&page(&case.extended_case)).expect("optimize case");
        let hit = plan_stats(&plain).joins == plan_stats(&orig).joins;
        recognized += hit as usize;
        let t_orig = harness::time_plan(&engine, &orig, 5).as_secs_f64() * 1e6;
        let t_plain = harness::time_plan(&engine, &plain, 5).as_secs_f64() * 1e6;
        let t_case = harness::time_plan(&engine, &with_case, 5).as_secs_f64() * 1e6;
        if case.deep {
            slowdown_a_deep.push(t_plain / t_orig.max(1e-9));
        } else {
            slowdown_a_shallow.push(t_plain / t_orig.max(1e-9));
        }
        slowdown_b.push(t_case / t_orig.max(1e-9));
        println!("{},{},{:.0},{:.0},{:.0},{}", case.name, case.deep, t_orig, t_plain, t_case, hit);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    let n = fig.cases.len();
    let deep = fig.cases.iter().filter(|c| c.deep).count();
    eprintln!("\n== Fig. 14 summary ==");
    eprintln!("views: {n} ({deep} deep, {} shallow)", n - deep);
    eprintln!(
        "(a) no intent:  heuristic recognized {recognized}/{n} extension views \
         (all shallow views, no deep views)"
    );
    eprintln!(
        "    recognized (shallow) views: median {:.2}x, max {:.2}x (on the diagonal)",
        median(&mut slowdown_a_shallow),
        max(&slowdown_a_shallow)
    );
    eprintln!(
        "    UNRECOGNIZED (deep) views:  median {:.2}x, max {:.2}x (off the diagonal)",
        median(&mut slowdown_a_deep),
        max(&slowdown_a_deep)
    );
    eprintln!("(b) case join:  all {n}/{n} recognized");
    eprintln!(
        "    extension slowdown vs original: median {:.2}x, max {:.2}x (diagonal)",
        median(&mut slowdown_b),
        max(&slowdown_b)
    );
    eprintln!(
        "\nAn unrecognized ASJ forfeits limit pushdown: the paging query then \n\
         executes the full join of two unions instead of fetching 10 rows — \n\
         the 2-3 orders of magnitude the paper reports in Fig. 14(a). \n\
         Recognized/declared cases stay near the diagonal; the residual \n\
         ~1.5x is the cost of materializing the additional custom field."
    );
}
