//! Thread sweep for the morsel-driven parallel executor.
//!
//! Two workloads, each run at `threads ∈ {1, 2, 4, 8}`:
//!
//! 1. **browser** — the Fig. 3 `journal_entry_item_browser` full
//!    scan-and-join over the ERP dataset, optimized under the HANA
//!    profile (the paper's interactive HTAP read).
//! 2. **agg_over_join** — a ≥1M-row fact ⋈ dim probe feeding a grouped
//!    aggregation (the classic analytical morsel-parallelism shape).
//!
//! Emits a human-readable table and machine-readable
//! `BENCH_parallel.json` in the working directory (no external
//! benchmarking framework).
//!
//! Run: `cargo run --release -p vdm-bench --bin par_sweep`
//! Optional args: `par_sweep <fact_rows> <journal_rows>`, plus
//! `--threads=1,4` to restrict the sweep's thread steps and
//! `--gate-agg-speedup=2.5` to exit non-zero when the agg_over_join
//! speedup at the highest thread step falls below the gate (the CI
//! thread-scaling smoke check).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;
use vdm_bench::harness;
use vdm_catalog::TableBuilder;
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_exec::ParallelConfig;
use vdm_expr::{AggExpr, AggFunc, Expr};
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_storage::StorageEngine;
use vdm_types::{Decimal, SplitMix64, SqlType, Value};

const DEFAULT_THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];

struct SweepResult {
    threads: usize,
    median: Duration,
}

struct Workload {
    name: &'static str,
    rows: usize,
    results: Vec<SweepResult>,
}

fn sweep(
    name: &'static str,
    rows: usize,
    engine: &StorageEngine,
    plan: &PlanRef,
    iters: usize,
    steps: &[usize],
) -> Workload {
    // Round-robin the thread steps instead of timing each one in its own
    // sequential block: machine-load drift over the sweep's several-minute
    // runtime would otherwise land entirely on whichever steps run last
    // and masquerade as a scaling regression. One warm-up pass per step
    // first, then `iters` interleaved rounds, median per step.
    let cfg = |threads| ParallelConfig { threads, ..ParallelConfig::default() };
    for &threads in steps {
        harness::time_plan_parallel(engine, plan, cfg(threads), 1);
    }
    let mut samples: Vec<Vec<std::time::Duration>> = vec![Vec::with_capacity(iters); steps.len()];
    for _ in 0..iters {
        for (si, &threads) in steps.iter().enumerate() {
            samples[si].push(harness::time_plan_parallel(engine, plan, cfg(threads), 1));
        }
    }
    let mut results = Vec::new();
    for (si, &threads) in steps.iter().enumerate() {
        samples[si].sort();
        let median = samples[si][iters / 2];
        println!("  {name:>14}  threads={threads}  median={}", harness::fmt_duration(median));
        results.push(SweepResult { threads, median });
    }
    // Per-operator-class CPU time at the sweep's endpoints, from the
    // executor's timing counters (worker-local sums, merged at joins).
    for threads in [steps[0], steps[steps.len() - 1]] {
        let config = ParallelConfig { threads, ..ParallelConfig::default() };
        let (_, m) = vdm_exec::execute_parallel_at(plan, engine, engine.snapshot(), config)
            .expect("plan executes");
        let ms = |n: u64| n as f64 / 1e6;
        println!(
            "  {name:>14}  threads={threads} operator CPU ms: scan={:.1} filter={:.1} project={:.1} join={:.1} agg={:.1} sort={:.1} union={:.1}",
            ms(m.scan_nanos),
            ms(m.filter_nanos),
            ms(m.project_nanos),
            ms(m.join_nanos),
            ms(m.agg_nanos),
            ms(m.sort_nanos),
            ms(m.union_nanos),
        );
    }
    Workload { name, rows, results }
}

/// Builds the ≥1M-row fact ⋈ dim → group-by microbench directly in the
/// storage engine (no SQL round trip) and returns the plan.
fn agg_over_join(engine: &StorageEngine, fact_rows: usize) -> (PlanRef, usize) {
    let dim_rows = 1_000i64;
    let dim = Arc::new(
        TableBuilder::new("dim_product")
            .column("d_id", SqlType::Int, false)
            .column("d_category", SqlType::Int, false)
            .primary_key(&["d_id"])
            .build()
            .expect("dim table"),
    );
    let fact = Arc::new(
        TableBuilder::new("fact_sales")
            .column("f_id", SqlType::Int, false)
            .column("f_product", SqlType::Int, false)
            .column("f_amount", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["f_id"])
            .build()
            .expect("fact table"),
    );
    engine.create_table(Arc::clone(&dim)).expect("create dim");
    engine.create_table(Arc::clone(&fact)).expect("create fact");
    engine
        .insert(
            "dim_product",
            (0..dim_rows).map(|i| vec![Value::Int(i), Value::Int(i % 37)]).collect(),
        )
        .expect("load dim");
    let mut rng = SplitMix64::seed_from_u64(0xFACADE);
    let mut batch = Vec::with_capacity(50_000);
    let mut next_id = 0i64;
    while (next_id as usize) < fact_rows {
        batch.push(vec![
            Value::Int(next_id),
            Value::Int(rng.random_range(0..dim_rows)),
            Value::Dec(Decimal::from_units(rng.random_range(0..1_000_000i64) as i128, 2)),
        ]);
        next_id += 1;
        if batch.len() == batch.capacity() {
            engine.insert("fact_sales", std::mem::take(&mut batch)).expect("load fact");
            batch.reserve(50_000);
        }
    }
    if !batch.is_empty() {
        engine.insert("fact_sales", batch).expect("load fact tail");
    }
    engine.merge_delta("fact_sales").expect("merge fact");
    engine.merge_delta("dim_product").expect("merge dim");

    let join =
        LogicalPlan::inner_join(LogicalPlan::scan(fact), LogicalPlan::scan(dim), vec![(1, 0)])
            .expect("join plan");
    let plan = LogicalPlan::aggregate(
        join,
        vec![(Expr::col(4), "category".into())],
        vec![
            (AggExpr::count_star(), "n".into()),
            (AggExpr::new(AggFunc::Sum, Expr::col(2)), "revenue".into()),
        ],
    )
    .expect("aggregate plan");
    (plan, fact_rows + dim_rows as usize)
}

/// Observability cost + content report for the browser workload: profiled
/// vs unprofiled medians at `threads`, the optimizer's rewrite hit-counts,
/// and the per-operator runtime profile (rendered into the JSON output).
fn obs_json(
    engine: &StorageEngine,
    bound: &PlanRef,
    optimized: &PlanRef,
    threads: usize,
) -> String {
    let config = ParallelConfig { threads, ..ParallelConfig::default() };
    // Interleave the paired samples so slow machine-load drift hits both
    // paths equally, and *alternate which run goes first within each pair*
    // — a fixed order hands the second run warm caches every time, which
    // shows up as a systematic (even negative) overhead. One warm-up run
    // of each first. The overhead estimate is the *median of the per-pair
    // deltas*, not the delta of independent medians — two independently
    // sorted sample sets can pick their medians from different load
    // phases and report a spurious offset that delta-per-pair cancels.
    let iters = 9;
    harness::time_plan_parallel(engine, optimized, config, 1);
    harness::time_plan_profiled(engine, optimized, config, 1);
    let mut unprofiled_samples = Vec::with_capacity(iters);
    let mut deltas = Vec::with_capacity(iters);
    for i in 0..iters {
        let (u, p) = if i % 2 == 0 {
            let u = harness::time_plan_parallel(engine, optimized, config, 1);
            let p = harness::time_plan_profiled(engine, optimized, config, 1);
            (u, p)
        } else {
            let p = harness::time_plan_profiled(engine, optimized, config, 1);
            let u = harness::time_plan_parallel(engine, optimized, config, 1);
            (u, p)
        };
        unprofiled_samples.push(u);
        deltas.push(p.as_secs_f64() - u.as_secs_f64());
    }
    unprofiled_samples.sort();
    deltas.sort_by(|a, b| a.total_cmp(b));
    let unprofiled = unprofiled_samples[iters / 2];
    // Profiling only ever adds instructions, so the true overhead is
    // non-negative by construction; a negative median delta means the
    // overhead sits below this machine's run-to-run noise floor. Clamp to
    // zero rather than publishing a spurious negative number.
    let median_delta = deltas[iters / 2].max(0.0);
    let profiled = Duration::from_secs_f64((unprofiled.as_secs_f64() + median_delta).max(0.0));
    let overhead_pct = median_delta / unprofiled.as_secs_f64().max(f64::EPSILON) * 100.0;
    let (_, trace) =
        Optimizer::new(Profile::hana()).optimize_traced(bound).expect("traced optimize");
    let (_, _, profile) =
        vdm_exec::execute_profiled_at(optimized, engine, engine.snapshot(), config)
            .expect("profiled run");
    println!(
        "  {:>14}  threads={threads} profiled={} unprofiled={} overhead={overhead_pct:.1}%",
        "browser(obs)",
        harness::fmt_duration(profiled),
        harness::fmt_duration(unprofiled),
    );
    let mut out = String::new();
    let _ = write!(
        out,
        "  \"obs\": {{\"workload\": \"browser\", \"threads\": {threads}, \"unprofiled_millis\": {:.3}, \"profiled_millis\": {:.3}, \"overhead_pct\": {overhead_pct:.2},\n    \"rewrite_hits\": {{",
        unprofiled.as_secs_f64() * 1e3,
        profiled.as_secs_f64() * 1e3,
    );
    for (i, (rule, n)) in trace.hit_counts().iter().enumerate() {
        let _ = write!(out, "{}\"{rule}\": {n}", if i == 0 { "" } else { ", " });
    }
    out.push_str("},\n    \"operators\": [");
    for (i, (id, s)) in profile.nodes.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"node\": {id}, \"rows_out\": {}, \"cpu_millis\": {:.3}, \"invocations\": {}, \"workers\": {}}}",
            if i == 0 { "" } else { ", " },
            s.rows_out,
            s.nanos as f64 / 1e6,
            s.invocations,
            s.workers,
        );
    }
    out.push_str("]}");
    out
}

fn to_json(workloads: &[Workload], obs: &str) -> String {
    let mut out = String::from("{\n  \"bench\": \"par_sweep\",\n  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        let serial = w.results.first().map(|r| r.median.as_secs_f64()).unwrap_or(0.0);
        let _ = write!(out, "    {{\"name\": \"{}\", \"rows\": {}, \"results\": [", w.name, w.rows);
        for (i, r) in w.results.iter().enumerate() {
            let millis = r.median.as_secs_f64() * 1e3;
            let speedup =
                if r.median.as_secs_f64() > 0.0 { serial / r.median.as_secs_f64() } else { 0.0 };
            let _ = write!(
                out,
                "{}{{\"threads\": {}, \"millis\": {millis:.3}, \"speedup\": {speedup:.2}}}",
                if i == 0 { "" } else { ", " },
                r.threads,
            );
        }
        let _ = writeln!(out, "]}}{}", if wi + 1 == workloads.len() { "" } else { "," });
    }
    out.push_str("  ],\n");
    out.push_str(obs);
    out.push_str("\n}\n");
    out
}

fn main() {
    let mut positional: Vec<usize> = Vec::new();
    let mut steps: Vec<usize> = DEFAULT_THREAD_STEPS.to_vec();
    let mut gate_agg_speedup: Option<f64> = None;
    for arg in std::env::args().skip(1) {
        if let Some(list) = arg.strip_prefix("--threads=") {
            steps = list
                .split(',')
                .map(|s| s.trim().parse().expect("--threads takes a comma-separated list"))
                .collect();
            assert!(!steps.is_empty(), "--threads needs at least one step");
        } else if let Some(gate) = arg.strip_prefix("--gate-agg-speedup=") {
            gate_agg_speedup = Some(gate.parse().expect("--gate-agg-speedup takes a number"));
        } else {
            positional.push(arg.parse().expect("positional args are row counts"));
        }
    }
    let fact_rows: usize = positional.first().copied().unwrap_or(1_000_000);
    let journal_rows: usize = positional.get(1).copied().unwrap_or(100_000);
    let max_threads = *steps.iter().max().expect("non-empty steps");

    println!("== par_sweep: morsel-driven executor thread sweep ==");
    println!(
        "available parallelism: {}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Workload 1: Fig. 3 browser over ERP data, optimized under HANA.
    println!("\n[browser] journal_entry_item_browser, journal_rows={journal_rows}");
    let erp = Erp { journal_rows, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let erp_engine = StorageEngine::new();
    let schema = erp.build(&mut catalog, &erp_engine).expect("ERP generation");
    let browser = journal_entry_item_browser(&schema).expect("browser view");
    let optimized =
        Optimizer::new(Profile::hana()).optimize(&browser.protected).expect("optimize browser");
    let w1 = sweep("browser", journal_rows, &erp_engine, &optimized, 5, &steps);
    let obs = obs_json(&erp_engine, &browser.protected, &optimized, max_threads.min(4));

    // Workload 2: ≥1M-row aggregate over join.
    println!("\n[agg_over_join] fact_rows={fact_rows}");
    let engine = StorageEngine::new();
    let (plan, rows) = agg_over_join(&engine, fact_rows);
    let w2 = sweep("agg_over_join", rows, &engine, &plan, 3, &steps);

    let workloads = [w1, w2];
    let json = to_json(&workloads, &obs);
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json:\n{json}");

    let mut agg_max_speedup = f64::INFINITY;
    for w in &workloads {
        let serial = w.results[0].median.as_secs_f64();
        if let Some(top) = w.results.iter().find(|r| r.threads == max_threads) {
            let speedup = serial / top.median.as_secs_f64().max(f64::EPSILON);
            println!("{}: threads={max_threads} speedup over serial = {speedup:.2}x", w.name);
            if w.name == "agg_over_join" {
                agg_max_speedup = speedup;
            }
        }
    }
    if let Some(gate) = gate_agg_speedup {
        if agg_max_speedup < gate {
            eprintln!(
                "FAIL: agg_over_join threads={max_threads} speedup {agg_max_speedup:.2}x is below the {gate:.2}x gate"
            );
            std::process::exit(1);
        }
        println!(
            "gate: agg_over_join threads={max_threads} speedup {agg_max_speedup:.2}x clears the {gate:.2}x gate"
        );
    }
}
