//! Regenerates **Table 2** / Fig. 6: limit pushdown across an augmentation
//! join. Only a profile with `LIMIT_PUSHDOWN_AJ` (HANA) moves the LIMIT
//! below the join.
//!
//! Run: `cargo run --release -p vdm-bench --bin table2_limit`

use vdm_bench::{harness, queries};
use vdm_optimizer::{Optimizer, Profile};

fn main() {
    let (catalog, engine) = harness::setup_tpch(0.2, false);
    let systems = Profile::paper_systems();
    let paging = queries::paging(&catalog).expect("paging query");

    let cells: Vec<bool> = systems
        .iter()
        .map(|p| {
            let optimized = Optimizer::new(p.clone()).optimize(&paging).expect("optimize");
            queries::limit_below_join(&optimized)
        })
        .collect();
    println!(
        "{}",
        harness::render_matrix(
            "Table 2: Limit-on-AJ Optimization Status (Y = LIMIT pushed below the join)",
            &["Fig. 6".to_string()],
            &systems,
            std::slice::from_ref(&cells)
        )
    );
    let expected = [true, false, false, false, false];
    println!(
        "Paper agreement: {}",
        if cells == expected { "EXACT" } else { "DIVERGES — investigate!" }
    );

    println!("\nExecution time (select * ⟕ limit 100 offset 1, sf=0.2):");
    let hana = Optimizer::hana().optimize(&paging).unwrap();
    let t_raw = harness::time_plan(&engine, &paging, 5);
    let t_opt = harness::time_plan(&engine, &hana, 5);
    println!("  without pushdown: {}", harness::fmt_duration(t_raw));
    println!("  with pushdown:    {}", harness::fmt_duration(t_opt));
    println!("  speedup:          {:.1}x", t_raw.as_secs_f64() / t_opt.as_secs_f64().max(1e-9));
    // The pushdown also changes the join's build side economics: report
    // the rows that flow into the join in both shapes.
    let (_, m_raw) = vdm_exec::execute_at(&paging, &engine, engine.snapshot()).unwrap();
    let (_, m_opt) = vdm_exec::execute_at(&hana, &engine, engine.snapshot()).unwrap();
    println!("  join output rows: {} -> {}", m_raw.join_output_rows, m_opt.join_output_rows);
}
