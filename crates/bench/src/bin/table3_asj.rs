//! Regenerates **Table 3**: augmentation-self-join elimination for the
//! three Fig. 10 query shapes across the five profiles.
//!
//! Run: `cargo run --release -p vdm-bench --bin table3_asj`

use vdm_bench::{harness, queries};
use vdm_optimizer::{Optimizer, Profile};

fn main() {
    let (catalog, engine) = harness::setup_tpch(0.1, false);
    let systems = Profile::paper_systems();
    let queries_list = queries::all_asj(&catalog);

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (name, plan) in &queries_list {
        rows.push(name.to_string());
        cells
            .push(systems.iter().map(|p| harness::join_free_under(p, plan)).collect::<Vec<bool>>());
    }
    println!(
        "{}",
        harness::render_matrix(
            "Table 3: ASJ Optimization Status (Y = self-join removed, fields re-wired)",
            &rows,
            &systems,
            &cells
        )
    );
    let paper_row = [true, false, false, false, false];
    let matches = cells.iter().all(|row| row.as_slice() == paper_row);
    println!(
        "Paper agreement: {}",
        if matches { "EXACT (HANA only)" } else { "DIVERGES — investigate!" }
    );

    println!("\nExecution time (median of 5 runs, sf=0.1):");
    println!("{:12} | {:>12} | {:>12} | {:>8}", "query", "self-join", "re-wired", "speedup");
    println!("{}", "-".repeat(56));
    let hana = Optimizer::hana();
    for (name, plan) in &queries_list {
        let optimized = hana.optimize(plan).expect("optimize");
        let t_raw = harness::time_plan(&engine, plan, 5);
        let t_opt = harness::time_plan(&engine, &optimized, 5);
        println!(
            "{:12} | {:>12} | {:>12} | {:>7.1}x",
            name,
            harness::fmt_duration(t_raw),
            harness::fmt_duration(t_opt),
            t_raw.as_secs_f64() / t_opt.as_secs_f64().max(1e-9),
        );
    }
}
