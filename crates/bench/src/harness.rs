//! Shared measurement and reporting tooling.

use std::time::{Duration, Instant};
use vdm_catalog::Catalog;
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::{plan_stats, PlanRef};
use vdm_storage::StorageEngine;

/// Builds a loaded TPC-H environment at the given scale factor.
pub fn setup_tpch(sf: f64, with_foreign_keys: bool) -> (Catalog, StorageEngine) {
    let gen = vdm_data::tpch::Tpch { sf, seed: 42, with_foreign_keys };
    let mut catalog = Catalog::new();
    let engine = StorageEngine::new();
    gen.build(&mut catalog, &engine).expect("TPC-H generation");
    (catalog, engine)
}

/// Median wall time of `iters` executions of an (already optimized) plan.
pub fn time_plan(engine: &StorageEngine, plan: &PlanRef, iters: usize) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let batch = vdm_exec::execute(plan, engine).expect("plan executes");
        std::hint::black_box(batch.num_rows());
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Median wall time of `iters` executions on the morsel-driven parallel
/// executor under `config` (`threads: 1` measures the legacy serial path).
pub fn time_plan_parallel(
    engine: &StorageEngine,
    plan: &PlanRef,
    config: vdm_exec::ParallelConfig,
    iters: usize,
) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let batch = vdm_exec::execute_parallel(plan, engine, config).expect("plan executes");
        std::hint::black_box(batch.num_rows());
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Median wall time of `iters` profiled executions (EXPLAIN ANALYZE path):
/// same engine as [`time_plan_parallel`] plus per-operator stat recording.
/// The spread against the unprofiled median is the observability overhead.
pub fn time_plan_profiled(
    engine: &StorageEngine,
    plan: &PlanRef,
    config: vdm_exec::ParallelConfig,
    iters: usize,
) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let (batch, _, profile) =
            vdm_exec::execute_profiled_at(plan, engine, engine.snapshot(), config)
                .expect("plan executes");
        std::hint::black_box((batch.num_rows(), profile.nodes.len()));
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Optimizes under `profile` and reports whether the plan became join-free
/// (the success criterion of Tables 1, 3, 4: "optimized into a single
/// projection").
pub fn join_free_under(profile: &Profile, plan: &PlanRef) -> bool {
    let optimizer = Optimizer::new(profile.clone());
    let optimized = optimizer.optimize(plan).expect("optimization succeeds");
    plan_stats(&optimized).joins == 0
}

/// Renders a paper-style Y/− status matrix.
pub fn render_matrix(
    title: &str,
    row_names: &[String],
    systems: &[Profile],
    cells: &[Vec<bool>],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let name_width = row_names.iter().map(|r| r.len()).max().unwrap_or(8).max(8);
    out.push_str(&format!("{:name_width$}", ""));
    for s in systems {
        out.push_str(&format!(" | {:>8}", s.name()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(name_width + systems.len() * 11));
    out.push('\n');
    for (row, cell_row) in row_names.iter().zip(cells) {
        out.push_str(&format!("{row:name_width$}"));
        for &y in cell_row {
            out.push_str(&format!(" | {:>8}", if y { "Y" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_millis() >= 10 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_rendering() {
        let systems = vec![Profile::hana(), Profile::postgres()];
        let text = render_matrix(
            "Table T",
            &["Q1".to_string(), "Q2".to_string()],
            &systems,
            &[vec![true, false], vec![true, true]],
        );
        assert!(text.contains("hana"));
        assert!(text.contains('Y'));
        assert!(text.contains('-'));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn tpch_setup_and_timing() {
        let (catalog, engine) = setup_tpch(0.01, false);
        let q = crate::queries::uaj1(&catalog).unwrap();
        let d = time_plan(&engine, &q, 3);
        assert!(d.as_nanos() > 0);
        assert!(join_free_under(&Profile::hana(), &q));
        assert!(!join_free_under(&Profile::system_x(), &q));
    }
}
