//! Paper benches, criterion-free: the execution-time consequence of every
//! optimization the paper studies, plus a thread sweep over the parallel
//! executor. Each group runs the same plan unoptimized (a system without
//! the rule) and optimized (the HANA profile), so the reported ratio is
//! the payoff of the rewrite. Runs offline with a plain `harness = false`
//! main — no external benchmarking dependency.
//!
//! Run with `cargo bench --bench paper`.

use std::time::Duration;
use vdm_bench::{harness, queries};
use vdm_exec::ParallelConfig;
use vdm_optimizer::Optimizer;
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_storage::StorageEngine;

const ITERS: usize = 10;

fn report(group: &str, name: &str, d: Duration) {
    println!("{group:<28} {name:<22} {}", harness::fmt_duration(d));
}

fn bench_pair(group: &str, engine: &StorageEngine, plan: &PlanRef) {
    let hana = Optimizer::hana();
    let optimized = hana.optimize(plan).expect("optimize");
    report(group, "unoptimized", harness::time_plan(engine, plan, ITERS));
    report(group, "hana_optimized", harness::time_plan(engine, &optimized, ITERS));
}

/// Table 1: UAJ elimination payoff (UAJ 1 and the hardest case UAJ 1b).
fn uaj() {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair("table1/uaj1", &engine, &queries::uaj1(&catalog).unwrap());
    bench_pair("table1/uaj2a", &engine, &queries::uaj2a(&catalog).unwrap());
    bench_pair("table1/uaj1b", &engine, &queries::uaj1b(&catalog).unwrap());
}

/// Table 2 / Fig. 6: limit pushdown across an augmentation join.
fn limit_pushdown() {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair("table2/paging", &engine, &queries::paging(&catalog).unwrap());
}

/// Table 3 / Fig. 10: ASJ elimination payoff.
fn asj() {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair("table3/asj_basic", &engine, &queries::asj_basic(&catalog).unwrap());
    bench_pair("table3/asj_subquery", &engine, &queries::asj_subquery(&catalog).unwrap());
}

/// Table 4 / Fig. 12: UAJ elimination across UNION ALL.
fn union_uaj() {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair("table4/union_disjoint", &engine, &queries::union_disjoint(&catalog).unwrap());
    bench_pair("table4/union_branch_id", &engine, &queries::union_branch_id(&catalog).unwrap());
}

/// Fig. 3/4: the VDM consumption view, `select count(*)`.
fn vdm_browser() {
    let erp = vdm_data::erp::Erp { journal_rows: 10_000, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let schema = erp.build(&mut catalog, &engine).expect("erp");
    let browser = vdm_data::erp::journal_entry_item_browser(&schema).expect("browser");
    let count = LogicalPlan::aggregate(
        browser.protected.clone(),
        vec![],
        vec![(vdm_expr::AggExpr::count_star(), "n".into())],
    )
    .expect("count plan");
    bench_pair("fig3/count_star_browser", &engine, &count);
}

/// Fig. 14: paging an extension view, heuristic miss vs case join.
fn case_join() {
    let cfg = vdm_data::figview::Fig14Config { n_views: 6, rows_per_table: 4_000, seed: 7 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let fig = vdm_data::figview::generate(&cfg, &mut catalog, &engine).expect("fig14");
    let deep = fig.cases.iter().find(|x| x.deep).expect("a deep case");
    let hana = Optimizer::hana();
    let page = |p: &PlanRef| LogicalPlan::limit(p.clone(), 0, Some(10));
    let orig = hana.optimize(&page(&deep.original)).unwrap();
    let plain = hana.optimize(&page(&deep.extended_plain)).unwrap();
    let with_case = hana.optimize(&page(&deep.extended_case)).unwrap();
    report("fig14/deep_view_paging", "original", harness::time_plan(&engine, &orig, ITERS));
    report(
        "fig14/deep_view_paging",
        "extended_no_intent",
        harness::time_plan(&engine, &plain, ITERS),
    );
    report(
        "fig14/deep_view_paging",
        "extended_case_join",
        harness::time_plan(&engine, &with_case, ITERS),
    );
}

/// §7.1: aggregation pushdown across decimal rounding.
fn precision() {
    let (catalog, engine) = harness::setup_tpch(0.2, false);
    let strict = queries::precision_query(&catalog, false).unwrap();
    let loose = queries::precision_query(&catalog, true).unwrap();
    let hana = Optimizer::hana();
    let strict_opt = hana.optimize(&strict).unwrap();
    let loose_opt = hana.optimize(&loose).unwrap();
    report(
        "sec7/precision_loss",
        "exact_rounding",
        harness::time_plan(&engine, &strict_opt, ITERS),
    );
    report(
        "sec7/precision_loss",
        "allow_precision_loss",
        harness::time_plan(&engine, &loose_opt, ITERS),
    );
}

/// Thread sweep: the morsel-driven parallel path over the Fig. 3 browser,
/// at 1/2/4/8 worker threads (1 = the exact legacy serial path).
fn thread_sweep() {
    let erp = vdm_data::erp::Erp { journal_rows: 20_000, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let schema = erp.build(&mut catalog, &engine).expect("erp");
    let browser = vdm_data::erp::journal_entry_item_browser(&schema).expect("browser");
    let hana = Optimizer::hana();
    let plan = hana.optimize(&browser.protected).expect("optimize");
    for threads in [1usize, 2, 4, 8] {
        let config = ParallelConfig { threads, ..ParallelConfig::default() };
        let d = harness::time_plan_parallel(&engine, &plan, config, 5);
        report("parallel/fig3_browser", &format!("threads={threads}"), d);
    }
}

fn main() {
    uaj();
    limit_pushdown();
    asj();
    union_uaj();
    vdm_browser();
    case_join();
    precision();
    thread_sweep();
}
