//! Criterion benches: the execution-time consequence of every optimization
//! the paper studies. Each group runs the same plan unoptimized (a system
//! without the rule) and optimized (the HANA profile), so the reported
//! ratio is the payoff of the rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdm_bench::{harness, queries};
use vdm_optimizer::Optimizer;
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_storage::StorageEngine;

fn run(engine: &StorageEngine, plan: &PlanRef) {
    let batch = vdm_exec::execute(plan, engine).expect("plan executes");
    black_box(batch.num_rows());
}

fn bench_pair(c: &mut Criterion, group: &str, engine: &StorageEngine, plan: &PlanRef) {
    let hana = Optimizer::hana();
    let optimized = hana.optimize(plan).expect("optimize");
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("unoptimized", |b| b.iter(|| run(engine, plan)));
    g.bench_function("hana_optimized", |b| b.iter(|| run(engine, &optimized)));
    g.finish();
}

/// Table 1: UAJ elimination payoff (UAJ 1 and the hardest case UAJ 1b).
fn uaj(c: &mut Criterion) {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair(c, "table1/uaj1", &engine, &queries::uaj1(&catalog).unwrap());
    bench_pair(c, "table1/uaj2a", &engine, &queries::uaj2a(&catalog).unwrap());
    bench_pair(c, "table1/uaj1b", &engine, &queries::uaj1b(&catalog).unwrap());
}

/// Table 2 / Fig. 6: limit pushdown across an augmentation join.
fn limit_pushdown(c: &mut Criterion) {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair(c, "table2/paging", &engine, &queries::paging(&catalog).unwrap());
}

/// Table 3 / Fig. 10: ASJ elimination payoff.
fn asj(c: &mut Criterion) {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair(c, "table3/asj_basic", &engine, &queries::asj_basic(&catalog).unwrap());
    bench_pair(c, "table3/asj_subquery", &engine, &queries::asj_subquery(&catalog).unwrap());
}

/// Table 4 / Fig. 12: UAJ elimination across UNION ALL.
fn union_uaj(c: &mut Criterion) {
    let (catalog, engine) = harness::setup_tpch(0.05, false);
    bench_pair(c, "table4/union_disjoint", &engine, &queries::union_disjoint(&catalog).unwrap());
    bench_pair(c, "table4/union_branch_id", &engine, &queries::union_branch_id(&catalog).unwrap());
}

/// Fig. 3/4: the VDM consumption view, `select count(*)`.
fn vdm_browser(c: &mut Criterion) {
    let erp = vdm_data::erp::Erp { journal_rows: 10_000, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let schema = erp.build(&mut catalog, &engine).expect("erp");
    let browser = vdm_data::erp::journal_entry_item_browser(&schema).expect("browser");
    let count = LogicalPlan::aggregate(
        browser.protected.clone(),
        vec![],
        vec![(vdm_expr::AggExpr::count_star(), "n".into())],
    )
    .expect("count plan");
    bench_pair(c, "fig3/count_star_browser", &engine, &count);
}

/// Fig. 14: paging an extension view, heuristic miss vs case join.
fn case_join(c: &mut Criterion) {
    let cfg = vdm_data::figview::Fig14Config { n_views: 6, rows_per_table: 4_000, seed: 7 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let fig = vdm_data::figview::generate(&cfg, &mut catalog, &engine).expect("fig14");
    let deep = fig.cases.iter().find(|x| x.deep).expect("a deep case");
    let hana = Optimizer::hana();
    let page = |p: &PlanRef| LogicalPlan::limit(p.clone(), 0, Some(10));
    let orig = hana.optimize(&page(&deep.original)).unwrap();
    let plain = hana.optimize(&page(&deep.extended_plain)).unwrap();
    let with_case = hana.optimize(&page(&deep.extended_case)).unwrap();
    let mut g = c.benchmark_group("fig14/deep_view_paging");
    g.sample_size(10);
    g.bench_function("original", |b| b.iter(|| run(&engine, &orig)));
    g.bench_function("extended_no_intent", |b| b.iter(|| run(&engine, &plain)));
    g.bench_function("extended_case_join", |b| b.iter(|| run(&engine, &with_case)));
    g.finish();
}

/// §7.1: aggregation pushdown across decimal rounding.
fn precision(c: &mut Criterion) {
    let (catalog, engine) = harness::setup_tpch(0.2, false);
    let strict = queries::precision_query(&catalog, false).unwrap();
    let loose = queries::precision_query(&catalog, true).unwrap();
    let hana = Optimizer::hana();
    let strict_opt = hana.optimize(&strict).unwrap();
    let loose_opt = hana.optimize(&loose).unwrap();
    let mut g = c.benchmark_group("sec7/precision_loss");
    g.sample_size(10);
    g.bench_function("exact_rounding", |b| b.iter(|| run(&engine, &strict_opt)));
    g.bench_function("allow_precision_loss", |b| b.iter(|| run(&engine, &loose_opt)));
    g.finish();
}

criterion_group!(
    benches,
    uaj,
    limit_pushdown,
    asj,
    union_uaj,
    vdm_browser,
    case_join,
    precision
);
criterion_main!(benches);
