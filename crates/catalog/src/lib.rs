//! Catalog: tables, constraints, and SQL view definitions.
//!
//! The catalog is the metadata source the optimizer's uniqueness analysis
//! feeds on (§4.2 of the paper): primary keys and unique constraints seed
//! *unique key sets*, and foreign keys witness the lower bound of
//! many-to-exactly-one inner joins (AJ 1a). The paper notes that foreign
//! keys are *infrequent* in the SAP ecosystem — our ERP generator mirrors
//! that by mostly omitting them, which is why declared join cardinalities
//! (§7.3) exist as an alternative witness.

mod table;

pub use table::{ForeignKey, TableBuilder, TableDef};

use std::collections::HashMap;
use std::sync::Arc;
use vdm_types::{Result, VdmError};

/// A named SQL-text view registered through DDL.
///
/// Views built programmatically (the VDM layer) are registered as logical
/// plans in `vdm_plan::ViewRegistry` instead; the binder consults both.
#[derive(Debug, Clone)]
pub struct SqlView {
    pub name: String,
    pub sql: String,
}

/// The schema catalog: tables and SQL views, case-insensitive by name.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<TableDef>>,
    views: HashMap<String, Arc<SqlView>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table; errors on duplicate names (tables and views share
    /// one namespace).
    pub fn create_table(&mut self, table: TableDef) -> Result<Arc<TableDef>> {
        let key = table.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(VdmError::Catalog(format!("relation {:?} already exists", table.name)));
        }
        let arc = Arc::new(table);
        self.tables.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Registers a SQL-text view; errors on duplicates.
    pub fn create_view(&mut self, name: &str, sql: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(VdmError::Catalog(format!("relation {name:?} already exists")));
        }
        self.views.insert(key, Arc::new(SqlView { name: name.to_string(), sql: sql.to_string() }));
        Ok(())
    }

    /// Replaces or registers a SQL-text view (CREATE OR REPLACE VIEW).
    pub fn create_or_replace_view(&mut self, name: &str, sql: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(VdmError::Catalog(format!("{name:?} is a table, not a view")));
        }
        self.views.insert(key, Arc::new(SqlView { name: name.to_string(), sql: sql.to_string() }));
        Ok(())
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<Arc<TableDef>> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Looks up a table, erroring with the unknown name.
    pub fn table_or_err(&self, name: &str) -> Result<Arc<TableDef>> {
        self.table(name).ok_or_else(|| VdmError::Catalog(format!("unknown table {name:?}")))
    }

    /// Looks up a SQL view by name.
    pub fn view(&self, name: &str) -> Option<Arc<SqlView>> {
        self.views.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Drops a table (no-op error if missing).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| VdmError::Catalog(format!("unknown table {name:?}")))
    }

    /// All table names, sorted (deterministic listings for tests/tools).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }

    /// All view names, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.values().map(|v| v.name.clone()).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::SqlType;

    fn customer() -> TableDef {
        TableBuilder::new("customer")
            .column("c_custkey", SqlType::Int, false)
            .column("c_name", SqlType::Text, false)
            .primary_key(&["c_custkey"])
            .build()
            .unwrap()
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut cat = Catalog::new();
        cat.create_table(customer()).unwrap();
        assert!(cat.table("CUSTOMER").is_some());
        assert!(cat.table("Customer").is_some());
        assert!(cat.table_or_err("nope").is_err());
    }

    #[test]
    fn duplicate_names_rejected_across_tables_and_views() {
        let mut cat = Catalog::new();
        cat.create_table(customer()).unwrap();
        assert!(cat.create_table(customer()).is_err());
        assert!(cat.create_view("customer", "select 1").is_err());
        cat.create_view("v1", "select 1").unwrap();
        assert!(cat.create_view("V1", "select 2").is_err());
        cat.create_or_replace_view("v1", "select 2").unwrap();
        assert_eq!(cat.view("v1").unwrap().sql, "select 2");
        assert!(cat.create_or_replace_view("customer", "select 3").is_err());
    }

    #[test]
    fn drop_table() {
        let mut cat = Catalog::new();
        cat.create_table(customer()).unwrap();
        cat.drop_table("customer").unwrap();
        assert!(cat.table("customer").is_none());
        assert!(cat.drop_table("customer").is_err());
    }

    #[test]
    fn listings_are_sorted() {
        let mut cat = Catalog::new();
        cat.create_view("zeta", "select 1").unwrap();
        cat.create_view("alpha", "select 1").unwrap();
        assert_eq!(cat.view_names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
