//! Table definitions and constraints.

use vdm_types::{Field, Result, Schema, SqlType, VdmError};

/// A foreign-key constraint: `columns` of this table reference
/// `ref_columns` of `ref_table` (which must be unique there).
///
/// When the referencing columns are non-nullable, an inner equi-join along
/// the FK is *many-to-exactly-one* (AJ 1a in the paper): every left record
/// finds exactly one match, so the join neither filters nor duplicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Column ordinals in the referencing table.
    pub columns: Vec<usize>,
    /// Referenced table name.
    pub ref_table: String,
    /// Referenced column *names* — resolved against the referenced table at
    /// plan time, because the referenced table may not exist in the catalog
    /// yet when this table is defined.
    pub ref_columns: Vec<String>,
}

/// A base table: schema plus key constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub schema: Schema,
    /// Primary-key column ordinals (empty = no PK).
    pub primary_key: Vec<usize>,
    /// Additional unique constraints (each a set of column ordinals).
    pub uniques: Vec<Vec<usize>>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// All unique column sets: the PK (if any) plus declared uniques.
    pub fn unique_sets(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        if !self.primary_key.is_empty() {
            out.push(self.primary_key.clone());
        }
        out.extend(self.uniques.iter().cloned());
        out
    }

    /// True if `cols` is a superset of some unique set, i.e. at most one row
    /// can share a value combination over `cols`.
    pub fn cols_unique(&self, cols: &[usize]) -> bool {
        self.unique_sets().iter().any(|u| u.iter().all(|c| cols.contains(c)))
    }
}

/// Fluent builder for [`TableDef`]; validates names and ordinals.
///
/// ```
/// use vdm_catalog::TableBuilder;
/// use vdm_types::SqlType;
/// let t = TableBuilder::new("orders")
///     .column("o_orderkey", SqlType::Int, false)
///     .column("o_custkey", SqlType::Int, false)
///     .primary_key(&["o_orderkey"])
///     .build()
///     .unwrap();
/// assert!(t.cols_unique(&[0]));
/// assert!(!t.cols_unique(&[1]));
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    fields: Vec<Field>,
    primary_key: Vec<String>,
    uniques: Vec<Vec<String>>,
    foreign_keys: Vec<(Vec<String>, String, Vec<String>)>,
}

impl TableBuilder {
    /// Starts a builder for table `name`.
    pub fn new(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            fields: Vec::new(),
            primary_key: Vec::new(),
            uniques: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Appends a column.
    pub fn column(mut self, name: impl Into<String>, ty: SqlType, nullable: bool) -> Self {
        self.fields.push(Field::new(name, ty, nullable));
        self
    }

    /// Declares the primary key by column names.
    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declares an additional unique constraint by column names.
    pub fn unique(mut self, cols: &[&str]) -> Self {
        self.uniques.push(cols.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Declares a foreign key by column names. `ref_columns` ordinals are
    /// resolved against the referenced table lazily at plan time, so the
    /// builder only records names here and `build` stores name-resolved
    /// local ordinals plus the referenced names.
    pub fn foreign_key(mut self, cols: &[&str], ref_table: &str, ref_cols: &[&str]) -> Self {
        self.foreign_keys.push((
            cols.iter().map(|s| s.to_string()).collect(),
            ref_table.to_string(),
            ref_cols.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Validates and builds the [`TableDef`].
    ///
    /// Foreign-key *referenced* ordinals are resolved positionally by the
    /// caller when the referenced table is known; here we record them as
    /// ordinals into the referenced table's column list only if the caller
    /// passes names that we cannot check — so `build` stores them by the
    /// name order given and the planner re-validates against the catalog.
    pub fn build(self) -> Result<TableDef> {
        if self.fields.is_empty() {
            return Err(VdmError::Catalog(format!("table {:?} has no columns", self.name)));
        }
        let schema = Schema::new(self.fields);
        {
            let mut seen = std::collections::HashSet::new();
            for f in schema.fields() {
                if !seen.insert(f.name.to_ascii_lowercase()) {
                    return Err(VdmError::Catalog(format!(
                        "table {:?} has duplicate column {:?}",
                        self.name, f.name
                    )));
                }
            }
        }
        let resolve = |names: &[String]| -> Result<Vec<usize>> {
            names
                .iter()
                .map(|n| {
                    schema.index_of(n).ok_or_else(|| {
                        VdmError::Catalog(format!("table {:?}: unknown column {n:?}", self.name))
                    })
                })
                .collect()
        };
        let primary_key = resolve(&self.primary_key)?;
        let uniques = self.uniques.iter().map(|u| resolve(u)).collect::<Result<Vec<_>>>()?;
        let mut foreign_keys = Vec::new();
        for (cols, ref_table, ref_cols) in &self.foreign_keys {
            if cols.len() != ref_cols.len() {
                return Err(VdmError::Catalog(format!(
                    "table {:?}: foreign key arity mismatch",
                    self.name
                )));
            }
            foreign_keys.push(ForeignKey {
                columns: resolve(cols)?,
                ref_table: ref_table.clone(),
                ref_columns: ref_cols.clone(),
            });
        }
        Ok(TableDef { name: self.name, schema, primary_key, uniques, foreign_keys })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_constraints() {
        let t = TableBuilder::new("t")
            .column("a", SqlType::Int, false)
            .column("b", SqlType::Text, true)
            .column("c", SqlType::Int, false)
            .primary_key(&["a"])
            .unique(&["b", "c"])
            .build()
            .unwrap();
        assert_eq!(t.primary_key, vec![0]);
        assert_eq!(t.uniques, vec![vec![1, 2]]);
        assert!(t.cols_unique(&[0]));
        assert!(t.cols_unique(&[0, 1]));
        assert!(t.cols_unique(&[1, 2]));
        assert!(!t.cols_unique(&[1]));
    }

    #[test]
    fn builder_rejects_bad_input() {
        assert!(TableBuilder::new("t").build().is_err());
        assert!(TableBuilder::new("t")
            .column("a", SqlType::Int, false)
            .column("A", SqlType::Int, false)
            .build()
            .is_err());
        assert!(TableBuilder::new("t")
            .column("a", SqlType::Int, false)
            .primary_key(&["zzz"])
            .build()
            .is_err());
        assert!(TableBuilder::new("t")
            .column("a", SqlType::Int, false)
            .foreign_key(&["a"], "u", &["x", "y"])
            .build()
            .is_err());
    }

    #[test]
    fn unique_sets_combines_pk_and_uniques() {
        let t = TableBuilder::new("t")
            .column("a", SqlType::Int, false)
            .column("b", SqlType::Int, false)
            .primary_key(&["a"])
            .unique(&["b"])
            .build()
            .unwrap();
        assert_eq!(t.unique_sets(), vec![vec![0], vec![1]]);
    }
}
