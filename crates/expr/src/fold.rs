//! Constant folding.
//!
//! Besides shrinking expressions, folding is what makes AJ 2b (a left-outer
//! join against an *empty* relation) detectable: an always-false filter like
//! `1 = 0` folds to `FALSE`, and the plan layer then knows the augmenter is
//! empty.

use crate::expr::{BinOp, Expr};
use vdm_types::Value;

/// Folds constant subtrees bottom-up. Evaluation errors (overflow, division
/// by zero) leave the node unfolded so the error surfaces at runtime with
/// proper context instead of at plan time.
pub fn fold(expr: &Expr) -> Expr {
    let folded = match expr {
        Expr::Col(_) | Expr::Lit(_) => expr.clone(),
        Expr::Binary { op, left, right } => {
            let l = fold(left);
            let r = fold(right);
            // Boolean identity simplifications that don't need full
            // constant operands.
            match (op, &l, &r) {
                (BinOp::And, Expr::Lit(Value::Bool(true)), other)
                | (BinOp::And, other, Expr::Lit(Value::Bool(true))) => return other.clone(),
                (BinOp::And, Expr::Lit(Value::Bool(false)), _)
                | (BinOp::And, _, Expr::Lit(Value::Bool(false))) => return Expr::boolean(false),
                (BinOp::Or, Expr::Lit(Value::Bool(false)), other)
                | (BinOp::Or, other, Expr::Lit(Value::Bool(false))) => return other.clone(),
                (BinOp::Or, Expr::Lit(Value::Bool(true)), _)
                | (BinOp::Or, _, Expr::Lit(Value::Bool(true))) => return Expr::boolean(true),
                _ => {}
            }
            Expr::Binary { op: *op, left: Box::new(l), right: Box::new(r) }
        }
        Expr::Not(e) => {
            let inner = fold(e);
            if let Expr::Not(grand) = &inner {
                return (**grand).clone();
            }
            Expr::Not(Box::new(inner))
        }
        Expr::IsNull(e) => Expr::IsNull(Box::new(fold(e))),
        Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(fold(e))),
        Expr::Case { branches, else_expr } => Expr::Case {
            branches: branches.iter().map(|(c, v)| (fold(c), fold(v))).collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(fold(e))),
        },
        Expr::Func { func, args } => {
            Expr::Func { func: *func, args: args.iter().map(fold).collect() }
        }
        Expr::Cast { expr, ty } => Expr::Cast { expr: Box::new(fold(expr)), ty: *ty },
        // Unknown until execute time; `is_constant` below treats it as
        // non-constant so the subtree is never evaluated at plan time.
        Expr::Param { .. } => expr.clone(),
    };
    if folded.is_constant() && !matches!(folded, Expr::Lit(_)) {
        if let Ok(v) = folded.eval_row(&[]) {
            return Expr::Lit(v);
        }
    }
    folded
}

/// True when the predicate is statically known to reject every row
/// (a folded `FALSE` or NULL literal — SQL filters drop non-TRUE rows).
pub fn is_always_false(pred: &Expr) -> bool {
    matches!(fold(pred), Expr::Lit(Value::Bool(false)) | Expr::Lit(Value::Null))
}

/// True when the predicate is statically known to keep every row.
pub fn is_always_true(pred: &Expr) -> bool {
    matches!(fold(pred), Expr::Lit(Value::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_arithmetic() {
        let e = Expr::int(2).binary(BinOp::Add, Expr::int(3));
        assert_eq!(fold(&e), Expr::int(5));
    }

    #[test]
    fn folds_one_equals_zero_to_false() {
        let e = Expr::int(1).eq(Expr::int(0));
        assert_eq!(fold(&e), Expr::boolean(false));
        assert!(is_always_false(&e));
        assert!(!is_always_false(&Expr::col(0).eq(Expr::int(0))));
    }

    #[test]
    fn boolean_identities() {
        let p = Expr::col(0).eq(Expr::int(1));
        assert_eq!(fold(&p.clone().and(Expr::boolean(true))), p);
        assert_eq!(fold(&p.clone().and(Expr::boolean(false))), Expr::boolean(false));
        assert_eq!(fold(&p.clone().or(Expr::boolean(false))), p);
        assert_eq!(fold(&p.clone().or(Expr::boolean(true))), Expr::boolean(true));
        assert!(is_always_true(&Expr::int(1).eq(Expr::int(1))));
    }

    #[test]
    fn double_negation_removed() {
        let p = Expr::col(0).eq(Expr::int(1));
        let nn = Expr::Not(Box::new(Expr::Not(Box::new(p.clone()))));
        assert_eq!(fold(&nn), p);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = Expr::int(1).binary(BinOp::Div, Expr::int(0));
        // Stays unfolded — must error at runtime, not silently disappear.
        assert!(matches!(fold(&e), Expr::Binary { .. }));
    }

    #[test]
    fn folds_inside_functions() {
        let e = Expr::Func {
            func: crate::expr::ScalarFunc::Round,
            args: vec![Expr::Lit(Value::Dec("3.7".parse().unwrap())), Expr::int(0)],
        };
        assert_eq!(fold(&e), Expr::Lit(Value::Dec("4".parse().unwrap())));
    }
}
