//! Expression macros (§7.2).
//!
//! A macro names a *calculation formula over aggregates* — e.g. the paper's
//! `margin = 1 - sum(ps_supplycost) / sum(l_extendedprice*(1-l_discount))` —
//! defined once on a view and reusable under any `GROUP BY`. A macro is a
//! scalar [`Expr`] whose column ordinals refer to the results of its
//! embedded [`AggExpr`]s, *not* to view columns: ordinal `i` in `body` is
//! the value of `aggs[i]`. The aggregate arguments themselves reference the
//! view's columns. Expansion (done by the binder) hoists `aggs` into the
//! query's `Aggregate` node and splices `body` into a post-projection.

use crate::agg::AggExpr;
use crate::expr::Expr;
use vdm_types::{Result, VdmError};

/// A named, reusable formula over aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroDef {
    /// Macro name (case-insensitive lookup).
    pub name: String,
    /// Scalar formula; `Col(i)` refers to `aggs[i]`'s result.
    pub body: Expr,
    /// The embedded aggregates, with arguments over the defining view's
    /// columns.
    pub aggs: Vec<AggExpr>,
}

impl MacroDef {
    /// Validates internal consistency: every column the body references
    /// must name an aggregate slot.
    pub fn validate(&self) -> Result<()> {
        let mut cols = std::collections::BTreeSet::new();
        self.body.referenced_columns(&mut cols);
        for c in cols {
            if c >= self.aggs.len() {
                return Err(VdmError::Bind(format!(
                    "macro {:?}: body references aggregate slot {c} but only {} aggregates defined",
                    self.name,
                    self.aggs.len()
                )));
            }
        }
        if self.aggs.is_empty() {
            return Err(VdmError::Bind(format!(
                "macro {:?} defines no aggregates; use a plain view column instead",
                self.name
            )));
        }
        Ok(())
    }

    /// Expands the macro for a query whose aggregate node already has
    /// `existing_aggs` entries: appends this macro's aggregates and returns
    /// the body rewritten to reference their slots.
    ///
    /// Identical aggregates already present are shared rather than
    /// duplicated.
    pub fn expand(&self, existing_aggs: &mut Vec<AggExpr>) -> Expr {
        let mut slot_of = Vec::with_capacity(self.aggs.len());
        for agg in &self.aggs {
            let slot = match existing_aggs.iter().position(|a| a == agg) {
                Some(i) => i,
                None => {
                    existing_aggs.push(agg.clone());
                    existing_aggs.len() - 1
                }
            };
            slot_of.push(slot);
        }
        self.body.remap_columns(&|i| slot_of[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::expr::BinOp;

    /// The paper's margin macro:
    /// `1 - sum(supplycost) / sum(extendedprice * (1 - discount))`.
    fn margin() -> MacroDef {
        let sum_cost = AggExpr::new(AggFunc::Sum, Expr::col(0));
        let revenue_arg =
            Expr::col(1).binary(BinOp::Mul, Expr::int(1).binary(BinOp::Sub, Expr::col(2)));
        let sum_rev = AggExpr::new(AggFunc::Sum, revenue_arg);
        MacroDef {
            name: "margin".into(),
            body: Expr::int(1).binary(BinOp::Sub, Expr::col(0).binary(BinOp::Div, Expr::col(1))),
            aggs: vec![sum_cost, sum_rev],
        }
    }

    #[test]
    fn validate_checks_slots() {
        assert!(margin().validate().is_ok());
        let bad =
            MacroDef { name: "m".into(), body: Expr::col(5), aggs: vec![AggExpr::count_star()] };
        assert!(bad.validate().is_err());
        let empty = MacroDef { name: "m".into(), body: Expr::int(1), aggs: vec![] };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn expand_appends_aggs_and_rewires_body() {
        let m = margin();
        let mut aggs = vec![AggExpr::count_star()];
        let body = m.expand(&mut aggs);
        assert_eq!(aggs.len(), 3);
        let mut cols = std::collections::BTreeSet::new();
        body.referenced_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn expand_shares_identical_aggregates() {
        let m = margin();
        let mut aggs = vec![m.aggs[0].clone()];
        let body = m.expand(&mut aggs);
        // sum_cost was shared, only sum_rev appended.
        assert_eq!(aggs.len(), 2);
        let mut cols = std::collections::BTreeSet::new();
        body.referenced_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn margin_weighting_matches_paper_example() {
        // Day 1: 10% margin on $100 revenue → cost 90. Day 2: 20% on $900 → cost 720.
        // Correct overall margin = 1 - 810/1000 = 19%, not avg(10%, 20%) = 15%.
        let m = margin();
        // Evaluate body against the aggregate results.
        let row = vec![
            vdm_types::Value::Dec("810".parse().unwrap()),
            vdm_types::Value::Dec("1000".parse().unwrap()),
        ];
        let v = m.body.eval_row(&row).unwrap();
        match v {
            vdm_types::Value::Dec(d) => {
                assert_eq!(d.round_to(2).to_string(), "0.19");
            }
            other => panic!("unexpected {other}"),
        }
    }
}
