//! Row-at-a-time expression evaluation with SQL NULL semantics.

use crate::expr::{BinOp, Expr, ScalarFunc};
use vdm_types::{Decimal, Result, Value, VdmError};

impl Expr {
    /// Evaluates the expression against one input row.
    ///
    /// Three-valued logic: comparisons over NULL yield NULL; `AND`/`OR`
    /// short-circuit per Kleene logic (`FALSE AND NULL = FALSE`,
    /// `TRUE OR NULL = TRUE`).
    pub fn eval_row(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => {
                row.get(*i).cloned().ok_or_else(|| VdmError::Exec(format!("row has no column {i}")))
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    return eval_logical(*op, left, right, row);
                }
                let l = left.eval_row(row)?;
                let r = right.eval_row(row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Not(e) => match e.eval_row(row)?.as_bool()? {
                None => Ok(Value::Null),
                Some(b) => Ok(Value::Bool(!b)),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval_row(row)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Bool(!e.eval_row(row)?.is_null())),
            Expr::Case { branches, else_expr } => {
                for (cond, val) in branches {
                    if cond.eval_row(row)?.as_bool()? == Some(true) {
                        return val.eval_row(row);
                    }
                }
                match else_expr {
                    Some(e) => e.eval_row(row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Func { func, args } => eval_func(*func, args, row),
            Expr::Cast { expr, ty } => cast(expr.eval_row(row)?, ty),
            // Parameters must be substituted (`Expr::bind_params`) before a
            // plan reaches the executor.
            Expr::Param { idx, .. } => {
                Err(VdmError::Exec(format!("unbound parameter ${}", idx + 1)))
            }
        }
    }
}

fn eval_logical(op: BinOp, left: &Expr, right: &Expr, row: &[Value]) -> Result<Value> {
    let l = left.eval_row(row)?.as_bool()?;
    match (op, l) {
        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = right.eval_row(row)?.as_bool()?;
    let out = match op {
        BinOp::And => match (l, r) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (l, r) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logical called with non-logical op"),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

/// Evaluates a non-logical binary operator over two values.
pub fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if op.is_comparison() {
        let cmp = match l.sql_cmp(r) {
            None => return Ok(Value::Null),
            Some(c) => c,
        };
        use std::cmp::Ordering::*;
        let b = match op {
            BinOp::Eq => cmp == Equal,
            BinOp::NotEq => cmp != Equal,
            BinOp::Lt => cmp == Less,
            BinOp::LtEq => cmp != Greater,
            BinOp::Gt => cmp == Greater,
            BinOp::GtEq => cmp != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    // Arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) if op != BinOp::Div => {
            let out = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| VdmError::Overflow(format!("integer {} overflow", op.symbol())))
        }
        _ => {
            let a = l.as_dec()?;
            let b = r.as_dec()?;
            let out = match op {
                BinOp::Add => a.checked_add(&b)?,
                BinOp::Sub => a.checked_sub(&b)?,
                BinOp::Mul => a.checked_mul(&b)?,
                BinOp::Div => {
                    let scale =
                        (a.scale().max(b.scale()) + 4).clamp(6, vdm_types::decimal::MAX_SCALE);
                    a.checked_div(&b, scale)?
                }
                _ => unreachable!(),
            };
            Ok(Value::Dec(out))
        }
    }
}

fn eval_func(func: ScalarFunc, args: &[Expr], row: &[Value]) -> Result<Value> {
    match func {
        ScalarFunc::Round => {
            let v = args[0].eval_row(row)?;
            let s = args[1].eval_row(row)?;
            if v.is_null() || s.is_null() {
                return Ok(Value::Null);
            }
            let scale = s.as_int()?;
            if !(0..=vdm_types::decimal::MAX_SCALE as i64).contains(&scale) {
                return Err(VdmError::Exec(format!("ROUND scale {scale} out of range")));
            }
            match v {
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Dec(d) => Ok(Value::Dec(d.round_to(scale as u8))),
                other => Err(VdmError::Type(format!("ROUND requires numeric, got {other}"))),
            }
        }
        ScalarFunc::Coalesce => {
            for a in args {
                let v = a.eval_row(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        ScalarFunc::Abs => {
            let v = args[0].eval_row(row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => i
                    .checked_abs()
                    .map(Value::Int)
                    .ok_or_else(|| VdmError::Overflow("ABS overflow".into())),
                Value::Dec(d) => Ok(Value::Dec(if d.units() < 0 { d.negate() } else { d })),
                other => Err(VdmError::Type(format!("ABS requires numeric, got {other}"))),
            }
        }
        ScalarFunc::Upper | ScalarFunc::Lower => {
            let v = args[0].eval_row(row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::str(if func == ScalarFunc::Upper {
                    s.to_ascii_uppercase()
                } else {
                    s.to_ascii_lowercase()
                })),
                other => Err(VdmError::Type(format!("{} requires TEXT, got {other}", func.name()))),
            }
        }
        ScalarFunc::Length => {
            let v = args[0].eval_row(row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(VdmError::Type(format!("LENGTH requires TEXT, got {other}"))),
            }
        }
        ScalarFunc::Like => {
            let v = args[0].eval_row(row)?;
            let p = args[1].eval_row(row)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(like_match(v.as_str()?, p.as_str()?)))
        }
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                let v = a.eval_row(row)?;
                match v {
                    Value::Null => return Ok(Value::Null),
                    Value::Str(s) => out.push_str(&s),
                    other => {
                        return Err(VdmError::Type(format!("CONCAT requires TEXT, got {other}")))
                    }
                }
            }
            Ok(Value::str(out))
        }
    }
}

/// SQL LIKE matching: `%` matches any run (including empty), `_` exactly
/// one character. Iterative two-pointer algorithm with backtracking to the
/// most recent `%` — linear in practice, no pathological recursion.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, matched s idx)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn cast(v: Value, ty: &vdm_types::SqlType) -> Result<Value> {
    use vdm_types::SqlType;
    if v.is_null() {
        return Ok(Value::Null);
    }
    match (ty, &v) {
        (SqlType::Int, Value::Int(_)) | (SqlType::Text, Value::Str(_)) => Ok(v),
        (SqlType::Bool, Value::Bool(_)) | (SqlType::Date, Value::Date(_)) => Ok(v),
        (SqlType::Decimal { scale }, Value::Dec(d)) => Ok(Value::Dec(d.round_to(*scale))),
        // Days since the Unix epoch.
        (SqlType::Date, Value::Int(i)) => i32::try_from(*i)
            .map(Value::Date)
            .map_err(|_| VdmError::Overflow("day number does not fit DATE".into())),
        (SqlType::Decimal { scale }, Value::Int(i)) => {
            Ok(Value::Dec(Decimal::from_int(*i).rescale(*scale)?))
        }
        (SqlType::Int, Value::Dec(d)) => {
            let r = d.round_to(0);
            i64::try_from(r.units())
                .map(Value::Int)
                .map_err(|_| VdmError::Overflow("decimal does not fit BIGINT".into()))
        }
        (SqlType::Text, other) => Ok(Value::str(other.to_string())),
        (SqlType::Int, Value::Str(s)) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| VdmError::Exec(format!("cannot cast {s:?} to BIGINT"))),
        (SqlType::Decimal { scale }, Value::Str(s)) => {
            let d: Decimal = s.trim().parse()?;
            Ok(Value::Dec(d.round_to(*scale)))
        }
        (t, v) => Err(VdmError::Type(format!("cannot cast {v} to {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Value {
        Value::Dec(s.parse().unwrap())
    }

    #[test]
    fn arithmetic_and_nulls() {
        let row = vec![Value::Int(10), Value::Null, dec("2.50")];
        let e = Expr::col(0).binary(BinOp::Add, Expr::int(5));
        assert_eq!(e.eval_row(&row).unwrap(), Value::Int(15));
        let e = Expr::col(0).binary(BinOp::Add, Expr::col(1));
        assert_eq!(e.eval_row(&row).unwrap(), Value::Null);
        let e = Expr::col(0).binary(BinOp::Mul, Expr::col(2));
        assert_eq!(e.eval_row(&row).unwrap(), dec("25.00"));
    }

    #[test]
    fn division_produces_decimal() {
        let row = vec![Value::Int(1)];
        let e = Expr::col(0).binary(BinOp::Div, Expr::int(3));
        match e.eval_row(&row).unwrap() {
            Value::Dec(d) => assert_eq!(d.to_string(), "0.333333"),
            other => panic!("expected decimal, got {other}"),
        }
        let e = Expr::int(1).binary(BinOp::Div, Expr::int(0));
        assert!(e.eval_row(&row).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let row = vec![Value::Null];
        let null_b =
            Expr::Cast { expr: Box::new(Expr::Lit(Value::Null)), ty: vdm_types::SqlType::Bool };
        // FALSE AND NULL = FALSE
        let e = Expr::boolean(false).and(null_b.clone());
        assert_eq!(e.eval_row(&row).unwrap(), Value::Bool(false));
        // TRUE OR NULL = TRUE
        let e = Expr::boolean(true).or(null_b.clone());
        assert_eq!(e.eval_row(&row).unwrap(), Value::Bool(true));
        // TRUE AND NULL = NULL
        let e = Expr::boolean(true).and(null_b.clone());
        assert_eq!(e.eval_row(&row).unwrap(), Value::Null);
        // NOT NULL = NULL
        let e = Expr::Not(Box::new(null_b));
        assert_eq!(e.eval_row(&row).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons_with_null_yield_null() {
        let row = vec![Value::Null, Value::Int(3)];
        let e = Expr::col(0).eq(Expr::col(1));
        assert_eq!(e.eval_row(&row).unwrap(), Value::Null);
        let e = Expr::IsNull(Box::new(Expr::col(0)));
        assert_eq!(e.eval_row(&row).unwrap(), Value::Bool(true));
    }

    #[test]
    fn round_function_commercial() {
        let row = vec![dec("13.1945")];
        let e = Expr::Func { func: ScalarFunc::Round, args: vec![Expr::col(0), Expr::int(2)] };
        assert_eq!(e.eval_row(&row).unwrap(), dec("13.19"));
        let row = vec![dec("2.45")];
        let e = Expr::Func { func: ScalarFunc::Round, args: vec![Expr::col(0), Expr::int(1)] };
        assert_eq!(e.eval_row(&row).unwrap(), dec("2.5"));
    }

    #[test]
    fn case_and_coalesce() {
        let row = vec![Value::Int(2), Value::Null];
        let e = Expr::Case {
            branches: vec![
                (Expr::col(0).eq(Expr::int(1)), Expr::str("one")),
                (Expr::col(0).eq(Expr::int(2)), Expr::str("two")),
            ],
            else_expr: Some(Box::new(Expr::str("many"))),
        };
        assert_eq!(e.eval_row(&row).unwrap(), Value::str("two"));
        let e = Expr::Func { func: ScalarFunc::Coalesce, args: vec![Expr::col(1), Expr::int(42)] };
        assert_eq!(e.eval_row(&row).unwrap(), Value::Int(42));
    }

    #[test]
    fn string_functions() {
        let row = vec![Value::str("Acme")];
        let up = Expr::Func { func: ScalarFunc::Upper, args: vec![Expr::col(0)] };
        assert_eq!(up.eval_row(&row).unwrap(), Value::str("ACME"));
        let len = Expr::Func { func: ScalarFunc::Length, args: vec![Expr::col(0)] };
        assert_eq!(len.eval_row(&row).unwrap(), Value::Int(4));
        let cat = Expr::Func {
            func: ScalarFunc::Concat,
            args: vec![Expr::col(0), Expr::str("!"), Expr::Lit(Value::Null)],
        };
        assert_eq!(cat.eval_row(&row).unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        use super::like_match;
        assert!(like_match("Customer 42", "Customer%"));
        assert!(like_match("Customer 42", "%42"));
        assert!(like_match("Customer 42", "%tome%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(!like_match("xyz", "xy"));
        assert!(like_match("aaab", "%aab"));
        // NULL propagation through the expression.
        let row = vec![Value::Null];
        let e = Expr::Func { func: ScalarFunc::Like, args: vec![Expr::col(0), Expr::str("%")] };
        assert_eq!(e.eval_row(&row).unwrap(), Value::Null);
    }

    #[test]
    fn casts() {
        use vdm_types::SqlType;
        let row: Vec<Value> = vec![];
        let c = Expr::Cast { expr: Box::new(Expr::str(" 42 ")), ty: SqlType::Int };
        assert_eq!(c.eval_row(&row).unwrap(), Value::Int(42));
        let c = Expr::Cast { expr: Box::new(Expr::int(7)), ty: SqlType::Decimal { scale: 2 } };
        assert_eq!(c.eval_row(&row).unwrap(), dec("7.00"));
        let c = Expr::Cast { expr: Box::new(Expr::Lit(dec("2.6"))), ty: SqlType::Int };
        assert_eq!(c.eval_row(&row).unwrap(), Value::Int(3));
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let row: Vec<Value> = vec![];
        let e = Expr::int(i64::MAX).binary(BinOp::Add, Expr::int(1));
        assert!(e.eval_row(&row).is_err());
    }
}
