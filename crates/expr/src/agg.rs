//! Aggregate functions and accumulators.

use crate::expr::Expr;
use std::collections::HashSet;
use std::fmt;
use vdm_types::{Decimal, Result, Schema, SqlType, Value, VdmError};

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate expression in an `Aggregate` plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// Argument; `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
    /// `COUNT(DISTINCT x)` / `SUM(DISTINCT x)`.
    pub distinct: bool,
    /// §7.1: the user opted into `allow_precision_loss(...)`, permitting the
    /// optimizer to interchange decimal rounding and addition inside this
    /// aggregate.
    pub allow_precision_loss: bool,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count_star() -> AggExpr {
        AggExpr {
            func: AggFunc::CountStar,
            arg: None,
            distinct: false,
            allow_precision_loss: false,
        }
    }

    /// A plain aggregate over `arg`.
    pub fn new(func: AggFunc, arg: Expr) -> AggExpr {
        AggExpr { func, arg: Some(arg), distinct: false, allow_precision_loss: false }
    }

    /// Marks the aggregate as `allow_precision_loss`.
    pub fn with_precision_loss(mut self) -> AggExpr {
        self.allow_precision_loss = true;
        self
    }

    /// Result type and nullability against the aggregate input schema.
    pub fn data_type(&self, input: &Schema) -> Result<(SqlType, bool)> {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => Ok((SqlType::Int, false)),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::Avg => {
                let arg = self.arg.as_ref().ok_or_else(|| {
                    VdmError::Type(format!("{} requires an argument", self.func.name()))
                })?;
                let (t, _) = arg.data_type(input)?;
                let ty = match (self.func, t) {
                    (AggFunc::Avg, SqlType::Int) => SqlType::Decimal { scale: 6 },
                    (AggFunc::Avg, SqlType::Decimal { scale }) => {
                        SqlType::Decimal { scale: (scale + 4).min(vdm_types::decimal::MAX_SCALE) }
                    }
                    (AggFunc::Sum, t) | (AggFunc::Min, t) | (AggFunc::Max, t) => {
                        if matches!(self.func, AggFunc::Sum)
                            && !matches!(t, SqlType::Int | SqlType::Decimal { .. })
                        {
                            return Err(VdmError::Type(format!("SUM requires numeric, got {t}")));
                        }
                        t
                    }
                    (_, t) => t,
                };
                // Aggregates over empty groups yield NULL.
                Ok((ty, true))
            }
        }
    }

    /// Collects columns referenced by the argument.
    pub fn referenced_columns(&self, out: &mut std::collections::BTreeSet<usize>) {
        if let Some(a) = &self.arg {
            a.referenced_columns(out);
        }
    }

    /// Remaps argument column ordinals.
    pub fn remap_columns(&self, f: &impl Fn(usize) -> usize) -> AggExpr {
        AggExpr {
            func: self.func,
            arg: self.arg.as_ref().map(|a| a.remap_columns(f)),
            distinct: self.distinct,
            allow_precision_loss: self.allow_precision_loss,
        }
    }

    /// Creates the runtime accumulator for this aggregate.
    pub fn accumulator(&self) -> Accumulator {
        Accumulator::new(self.func, self.distinct)
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.allow_precision_loss {
            write!(f, "ALLOW_PRECISION_LOSS(")?;
        }
        match (&self.func, &self.arg) {
            (AggFunc::CountStar, _) => write!(f, "COUNT(*)")?,
            (func, Some(a)) => {
                write!(f, "{}({}{a})", func.name(), if self.distinct { "DISTINCT " } else { "" })?
            }
            (func, None) => write!(f, "{}()", func.name())?,
        }
        if self.allow_precision_loss {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// What [`Accumulator::retract`] achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retraction {
    /// State subtracted exactly; `finish` reflects the removal.
    Exact,
    /// The removal invalidates the folded state (MIN/MAX lost its extreme,
    /// or DISTINCT): the caller must rebuild this accumulator from the
    /// surviving input rows.
    Recompute,
}

/// Incremental aggregate state.
///
/// `SUM`/`AVG` keep exact integer/decimal state; integer sums overflow into
/// an error rather than wrapping, matching the engine's exact-arithmetic
/// contract.
#[derive(Debug)]
pub struct Accumulator {
    func: AggFunc,
    distinct: Option<HashSet<Value>>,
    count: i64,
    int_sum: Option<i128>,
    dec_sum: Option<Decimal>,
    extreme: Option<Value>,
}

impl Accumulator {
    /// Fresh state for `func`.
    pub fn new(func: AggFunc, distinct: bool) -> Accumulator {
        Accumulator {
            func,
            distinct: if distinct { Some(HashSet::new()) } else { None },
            count: 0,
            int_sum: None,
            dec_sum: None,
            extreme: None,
        }
    }

    /// Feeds one value (the evaluated argument; ignored content for
    /// `COUNT(*)`, which must be fed exactly once per row with any value).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if self.func == AggFunc::CountStar {
            self.count += 1;
            return Ok(());
        }
        if v.is_null() {
            return Ok(());
        }
        if let Some(seen) = &mut self.distinct {
            if !seen.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    let cur = self.int_sum.unwrap_or(0);
                    self.int_sum = Some(
                        cur.checked_add(*i as i128)
                            .ok_or_else(|| VdmError::Overflow("SUM overflow".into()))?,
                    );
                }
                Value::Dec(d) => {
                    let cur = self.dec_sum.unwrap_or_else(|| Decimal::zero(d.scale()));
                    self.dec_sum = Some(cur.checked_add(d)?);
                }
                other => {
                    return Err(VdmError::Type(format!(
                        "{} requires numeric, got {other}",
                        self.func.name()
                    )))
                }
            },
            AggFunc::Min => {
                let replace = match &self.extreme {
                    None => true,
                    Some(cur) => v.total_cmp_non_null(cur) == std::cmp::Ordering::Less,
                };
                if replace {
                    self.extreme = Some(v.clone());
                }
            }
            AggFunc::Max => {
                let replace = match &self.extreme {
                    None => true,
                    Some(cur) => v.total_cmp_non_null(cur) == std::cmp::Ordering::Greater,
                };
                if replace {
                    self.extreme = Some(v.clone());
                }
            }
            AggFunc::CountStar => unreachable!(),
        }
        Ok(())
    }

    /// Folds another accumulator of the same aggregate into this one — the
    /// combine step of parallel aggregation, where each worker accumulates
    /// a partial state per morsel and the partials merge pairwise. For any
    /// input split, `merge` of the partials finishes to the same value the
    /// serial accumulator produces over the whole input.
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        debug_assert_eq!(self.func, other.func);
        if self.func == AggFunc::CountStar {
            self.count += other.count;
            return Ok(());
        }
        if self.distinct.is_some() {
            // DISTINCT partials dedup against the merged set: replaying the
            // other side's distinct values through `update` re-applies the
            // count/sum/extreme logic only for values not yet seen here.
            let other_seen =
                other.distinct.as_ref().expect("merging DISTINCT with non-DISTINCT accumulator");
            for v in other_seen {
                self.update(v)?;
            }
            return Ok(());
        }
        self.count += other.count;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                if let Some(i) = other.int_sum {
                    let cur = self.int_sum.unwrap_or(0);
                    self.int_sum = Some(
                        cur.checked_add(i)
                            .ok_or_else(|| VdmError::Overflow("SUM overflow".into()))?,
                    );
                }
                if let Some(d) = &other.dec_sum {
                    let cur = self.dec_sum.unwrap_or_else(|| Decimal::zero(d.scale()));
                    self.dec_sum = Some(cur.checked_add(d)?);
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if let Some(v) = &other.extreme {
                    let replace = match &self.extreme {
                        None => true,
                        Some(cur) => {
                            let want = if self.func == AggFunc::Min {
                                std::cmp::Ordering::Less
                            } else {
                                std::cmp::Ordering::Greater
                            };
                            v.total_cmp_non_null(cur) == want
                        }
                    };
                    if replace {
                        self.extreme = Some(v.clone());
                    }
                }
            }
            AggFunc::CountStar => unreachable!(),
        }
        Ok(())
    }

    /// Removes one previously-`update`d value — the retraction step of
    /// incremental view maintenance over deletes. COUNT/SUM/AVG retract
    /// exactly (subtraction); MIN/MAX retract exactly only when the removed
    /// value is *not* the current extreme — removing the extreme returns
    /// [`Retraction::Recompute`], telling the maintainer this group's state
    /// must be rebuilt from its remaining rows. DISTINCT aggregates never
    /// retract (the seen-set carries no multiplicities).
    pub fn retract(&mut self, v: &Value) -> Result<Retraction> {
        if self.distinct.is_some() {
            return Ok(Retraction::Recompute);
        }
        if self.func == AggFunc::CountStar {
            self.count -= 1;
            return Ok(Retraction::Exact);
        }
        if v.is_null() {
            return Ok(Retraction::Exact); // NULLs were never accumulated.
        }
        match self.func {
            AggFunc::Count => self.count -= 1,
            AggFunc::Sum | AggFunc::Avg => {
                match v {
                    Value::Int(i) => {
                        let cur = self.int_sum.unwrap_or(0);
                        self.int_sum = Some(
                            cur.checked_sub(*i as i128)
                                .ok_or_else(|| VdmError::Overflow("SUM overflow".into()))?,
                        );
                    }
                    Value::Dec(d) => {
                        let cur = self.dec_sum.unwrap_or_else(|| Decimal::zero(d.scale()));
                        self.dec_sum = Some(cur.checked_sub(d)?);
                    }
                    other => {
                        return Err(VdmError::Type(format!(
                            "{} requires numeric, got {other}",
                            self.func.name()
                        )))
                    }
                }
                self.count -= 1;
                if self.count == 0 {
                    // Match a fresh accumulator exactly: SUM over zero
                    // accumulated values is NULL, not 0.
                    self.int_sum = None;
                    self.dec_sum = None;
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if let Some(cur) = &self.extreme {
                    if v.total_cmp_non_null(cur) == std::cmp::Ordering::Equal {
                        return Ok(Retraction::Recompute);
                    }
                }
                self.count -= 1;
            }
            AggFunc::CountStar => unreachable!(),
        }
        Ok(Retraction::Exact)
    }

    /// Produces the final aggregate value.
    pub fn finish(&self) -> Result<Value> {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => Ok(Value::Int(self.count)),
            AggFunc::Sum => self.sum_value(),
            AggFunc::Min | AggFunc::Max => Ok(self.extreme.clone().unwrap_or(Value::Null)),
            AggFunc::Avg => {
                if self.count == 0 {
                    return Ok(Value::Null);
                }
                let sum = match self.sum_value()? {
                    Value::Null => return Ok(Value::Null),
                    v => v.as_dec()?,
                };
                let scale = (sum.scale() + 4).clamp(6, vdm_types::decimal::MAX_SCALE);
                Ok(Value::Dec(sum.checked_div(&Decimal::from_int(self.count), scale)?))
            }
        }
    }

    fn sum_value(&self) -> Result<Value> {
        match (self.int_sum, self.dec_sum) {
            (None, None) => Ok(Value::Null),
            (Some(i), None) => i64::try_from(i)
                .map(Value::Int)
                .map_err(|_| VdmError::Overflow("SUM does not fit BIGINT".into())),
            (None, Some(d)) => Ok(Value::Dec(d)),
            (Some(i), Some(d)) => {
                // Mixed int/decimal input: widen the int part.
                Ok(Value::Dec(Decimal::from_units(i, 0).checked_add(&d)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Value {
        Value::Dec(s.parse().unwrap())
    }

    #[test]
    fn count_star_counts_every_row_including_nulls() {
        let mut acc = AggExpr::count_star().accumulator();
        acc.update(&Value::Null).unwrap();
        acc.update(&Value::Int(1)).unwrap();
        assert_eq!(acc.finish().unwrap(), Value::Int(2));
    }

    #[test]
    fn count_ignores_nulls() {
        let mut acc = Accumulator::new(AggFunc::Count, false);
        acc.update(&Value::Null).unwrap();
        acc.update(&Value::Int(1)).unwrap();
        acc.update(&Value::Int(1)).unwrap();
        assert_eq!(acc.finish().unwrap(), Value::Int(2));
    }

    #[test]
    fn count_distinct() {
        let mut acc = Accumulator::new(AggFunc::Count, true);
        for v in [Value::Int(1), Value::Int(1), Value::Int(2), Value::Null] {
            acc.update(&v).unwrap();
        }
        assert_eq!(acc.finish().unwrap(), Value::Int(2));
    }

    #[test]
    fn sum_int_and_decimal() {
        let mut acc = Accumulator::new(AggFunc::Sum, false);
        acc.update(&Value::Int(5)).unwrap();
        acc.update(&Value::Int(7)).unwrap();
        assert_eq!(acc.finish().unwrap(), Value::Int(12));

        let mut acc = Accumulator::new(AggFunc::Sum, false);
        acc.update(&dec("1.25")).unwrap();
        acc.update(&dec("2.50")).unwrap();
        assert_eq!(acc.finish().unwrap(), dec("3.75"));
    }

    #[test]
    fn sum_of_empty_is_null() {
        let acc = Accumulator::new(AggFunc::Sum, false);
        assert_eq!(acc.finish().unwrap(), Value::Null);
    }

    #[test]
    fn min_max() {
        let mut mn = Accumulator::new(AggFunc::Min, false);
        let mut mx = Accumulator::new(AggFunc::Max, false);
        for v in [Value::Int(3), Value::Null, Value::Int(1), Value::Int(2)] {
            mn.update(&v).unwrap();
            mx.update(&v).unwrap();
        }
        assert_eq!(mn.finish().unwrap(), Value::Int(1));
        assert_eq!(mx.finish().unwrap(), Value::Int(3));
    }

    #[test]
    fn avg_weighting() {
        // The paper's margin example: averages of ratios are wrong, sums are
        // right — here we just check AVG itself is exact.
        let mut acc = Accumulator::new(AggFunc::Avg, false);
        acc.update(&Value::Int(10)).unwrap();
        acc.update(&Value::Int(20)).unwrap();
        acc.update(&Value::Int(40)).unwrap();
        match acc.finish().unwrap() {
            Value::Dec(d) => assert_eq!(d.to_string(), "23.333333"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn sum_overflow_detected() {
        let mut acc = Accumulator::new(AggFunc::Sum, false);
        acc.update(&Value::Int(i64::MAX)).unwrap();
        acc.update(&Value::Int(i64::MAX)).unwrap();
        assert!(acc.finish().is_err());
    }

    #[test]
    fn merge_matches_serial_accumulation() {
        let vals: Vec<Value> = vec![
            Value::Int(3),
            Value::Null,
            dec("1.25"),
            Value::Int(3),
            dec("-0.75"),
            Value::Int(7),
        ];
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            for distinct in [false, true] {
                if func == AggFunc::CountStar && distinct {
                    continue;
                }
                // Sum/Avg over mixed int+decimal is exercised on purpose.
                let mut serial = Accumulator::new(func, distinct);
                for v in &vals {
                    serial.update(v).unwrap();
                }
                for split in 0..=vals.len() {
                    let mut a = Accumulator::new(func, distinct);
                    let mut b = Accumulator::new(func, distinct);
                    for v in &vals[..split] {
                        a.update(v).unwrap();
                    }
                    for v in &vals[split..] {
                        b.update(v).unwrap();
                    }
                    a.merge(&b).unwrap();
                    assert_eq!(
                        a.finish().unwrap(),
                        serial.finish().unwrap(),
                        "{func:?} distinct={distinct} split={split}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_with_empty_partial_is_identity() {
        let mut acc = Accumulator::new(AggFunc::Sum, false);
        acc.update(&Value::Int(5)).unwrap();
        acc.merge(&Accumulator::new(AggFunc::Sum, false)).unwrap();
        assert_eq!(acc.finish().unwrap(), Value::Int(5));
        let mut empty = Accumulator::new(AggFunc::Min, false);
        empty.merge(&Accumulator::new(AggFunc::Min, false)).unwrap();
        assert_eq!(empty.finish().unwrap(), Value::Null);
    }

    #[test]
    fn retract_inverts_update() {
        let vals =
            [Value::Int(3), Value::Null, dec("1.25"), Value::Int(7), dec("-0.75"), Value::Int(5)];
        for func in [AggFunc::CountStar, AggFunc::Count, AggFunc::Sum, AggFunc::Avg] {
            // Feed everything, retract the last half: must equal feeding
            // only the first half.
            for split in 0..=vals.len() {
                let mut acc = Accumulator::new(func, false);
                for v in &vals {
                    acc.update(v).unwrap();
                }
                for v in &vals[split..] {
                    assert_eq!(acc.retract(v).unwrap(), Retraction::Exact, "{func:?}");
                }
                let mut reference = Accumulator::new(func, false);
                for v in &vals[..split] {
                    reference.update(v).unwrap();
                }
                assert_eq!(
                    acc.finish().unwrap(),
                    reference.finish().unwrap(),
                    "{func:?} split={split}"
                );
            }
        }
    }

    #[test]
    fn minmax_retract_flags_extreme_loss() {
        let mut mn = Accumulator::new(AggFunc::Min, false);
        for v in [Value::Int(3), Value::Int(1), Value::Int(2)] {
            mn.update(&v).unwrap();
        }
        assert_eq!(mn.retract(&Value::Int(2)).unwrap(), Retraction::Exact);
        assert_eq!(mn.finish().unwrap(), Value::Int(1));
        assert_eq!(mn.retract(&Value::Int(1)).unwrap(), Retraction::Recompute);
        // NULLs retract as no-ops.
        assert_eq!(mn.retract(&Value::Null).unwrap(), Retraction::Exact);
    }

    #[test]
    fn distinct_never_retracts() {
        let mut acc = Accumulator::new(AggFunc::Count, true);
        acc.update(&Value::Int(1)).unwrap();
        assert_eq!(acc.retract(&Value::Int(1)).unwrap(), Retraction::Recompute);
    }

    #[test]
    fn sum_retracted_to_empty_is_null() {
        let mut acc = Accumulator::new(AggFunc::Sum, false);
        acc.update(&Value::Int(5)).unwrap();
        acc.update(&Value::Null).unwrap();
        acc.retract(&Value::Int(5)).unwrap();
        assert_eq!(acc.finish().unwrap(), Value::Null, "SUM of no values is NULL, not 0");
    }

    #[test]
    fn agg_type_inference() {
        let s = Schema::new(vec![
            vdm_types::Field::new("q", SqlType::Int, false),
            vdm_types::Field::new("p", SqlType::Decimal { scale: 2 }, false),
        ]);
        assert_eq!(AggExpr::count_star().data_type(&s).unwrap(), (SqlType::Int, false));
        assert_eq!(
            AggExpr::new(AggFunc::Sum, Expr::col(1)).data_type(&s).unwrap(),
            (SqlType::Decimal { scale: 2 }, true)
        );
        assert_eq!(
            AggExpr::new(AggFunc::Avg, Expr::col(0)).data_type(&s).unwrap().0,
            SqlType::Decimal { scale: 6 }
        );
        assert!(AggExpr::new(AggFunc::Sum, Expr::str("x")).data_type(&s).is_err());
    }

    #[test]
    fn display_shows_precision_loss_wrapper() {
        let a = AggExpr::new(AggFunc::Sum, Expr::col(0)).with_precision_loss();
        assert_eq!(a.to_string(), "ALLOW_PRECISION_LOSS(SUM($0))");
    }
}
