//! The scalar expression tree.

use std::fmt;
use vdm_types::{Result, Schema, SqlType, Value, VdmError};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// True for `= <> < <= > >=`.
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
    }

    /// True for `+ - * /`.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => *other,
        }
    }

    /// SQL spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// `ROUND(x, s)` — commercial rounding to `s` decimal digits. The
    /// function at the heart of §7.1.
    Round,
    /// `COALESCE(a, b, ...)` — first non-NULL argument.
    Coalesce,
    /// `ABS(x)`.
    Abs,
    /// `UPPER(s)`.
    Upper,
    /// `LOWER(s)`.
    Lower,
    /// `LENGTH(s)`.
    Length,
    /// `CONCAT(a, b, ...)` — NULL-propagating string concatenation.
    Concat,
    /// `LIKE(s, pattern)` — SQL pattern match (`%` any run, `_` one char).
    Like,
}

impl ScalarFunc {
    /// SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarFunc::Round => "ROUND",
            ScalarFunc::Coalesce => "COALESCE",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Concat => "CONCAT",
            ScalarFunc::Like => "LIKE",
        }
    }

    /// Looks a function up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ScalarFunc> {
        let n = name.to_ascii_uppercase();
        Some(match n.as_str() {
            "ROUND" => ScalarFunc::Round,
            "COALESCE" | "IFNULL" => ScalarFunc::Coalesce,
            "ABS" => ScalarFunc::Abs,
            "UPPER" => ScalarFunc::Upper,
            "LOWER" => ScalarFunc::Lower,
            "LENGTH" => ScalarFunc::Length,
            "CONCAT" => ScalarFunc::Concat,
            "LIKE" => ScalarFunc::Like,
            _ => return None,
        })
    }
}

/// A scalar expression over the ordinals of one input schema.
///
/// Column references are positional ([`Expr::Col`]); the binder resolves
/// names to ordinals, and every plan rewrite that changes child column
/// layout remaps ordinals via [`Expr::remap_columns`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by ordinal.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Binary { op: BinOp, left: Box<Expr>, right: Box<Expr> },
    /// Logical negation.
    Not(Box<Expr>),
    /// `x IS NULL`.
    IsNull(Box<Expr>),
    /// `x IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// Searched CASE: `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case { branches: Vec<(Expr, Expr)>, else_expr: Option<Box<Expr>> },
    /// Scalar function call.
    Func { func: ScalarFunc, args: Vec<Expr> },
    /// Explicit cast.
    Cast { expr: Box<Expr>, ty: SqlType },
    /// Prepared-statement placeholder (`?` / `$1`), 0-indexed. Carries the
    /// type of the value it will be bound to so cached plans keep a stable
    /// schema; it survives optimization and is replaced by a literal via
    /// [`Expr::bind_params`] just before execution.
    Param { idx: usize, ty: SqlType },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Shorthand for a string literal.
    pub fn str(s: &str) -> Expr {
        Expr::Lit(Value::str(s))
    }

    /// Shorthand for a boolean literal.
    pub fn boolean(b: bool) -> Expr {
        Expr::Lit(Value::Bool(b))
    }

    /// Shorthand for a placeholder.
    pub fn param(idx: usize, ty: SqlType) -> Expr {
        Expr::Param { idx, ty }
    }

    /// Builds `self op other`.
    pub fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(self), right: Box::new(other) }
    }

    /// Builds `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }

    /// Builds `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }

    /// Builds `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinOp::Or, other)
    }

    /// Conjunction of a non-empty list (TRUE when empty).
    pub fn conjunction(mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::boolean(true),
            1 => parts.pop().expect("len checked"),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, p| acc.and(p))
            }
        }
    }

    /// Static result type and nullability against `input`.
    pub fn data_type(&self, input: &Schema) -> Result<(SqlType, bool)> {
        match self {
            Expr::Col(i) => {
                if *i >= input.len() {
                    return Err(VdmError::Plan(format!(
                        "column ordinal {i} out of range for schema of {} fields",
                        input.len()
                    )));
                }
                let f = input.field(*i);
                Ok((f.ty, f.nullable))
            }
            Expr::Lit(v) => match v.sql_type() {
                Some(t) => Ok((t, false)),
                // NULL literal: typeless; default to Int for schema purposes.
                None => Ok((SqlType::Int, true)),
            },
            Expr::Binary { op, left, right } => {
                let (lt, ln) = left.data_type(input)?;
                let (rt, rn) = right.data_type(input)?;
                if op.is_arithmetic() {
                    let ty = lt.unify(&rt).ok_or_else(|| {
                        VdmError::Type(format!("cannot apply {} to {lt} and {rt}", op.symbol()))
                    })?;
                    if !matches!(ty, SqlType::Int | SqlType::Decimal { .. }) {
                        return Err(VdmError::Type(format!(
                            "arithmetic requires numeric operands, got {ty}"
                        )));
                    }
                    let ty = match (op, ty) {
                        // Division always produces a decimal with headroom.
                        (BinOp::Div, SqlType::Int) => SqlType::Decimal { scale: 6 },
                        (BinOp::Div, SqlType::Decimal { scale }) => SqlType::Decimal {
                            scale: (scale + 4).min(vdm_types::decimal::MAX_SCALE),
                        },
                        (BinOp::Mul, SqlType::Decimal { scale }) => {
                            // Scales add at runtime; report a conservative bound.
                            SqlType::Decimal {
                                scale: (scale * 2).min(vdm_types::decimal::MAX_SCALE),
                            }
                        }
                        (_, t) => t,
                    };
                    Ok((ty, ln || rn))
                } else if op.is_comparison() {
                    if lt.unify(&rt).is_none() {
                        return Err(VdmError::Type(format!("cannot compare {lt} with {rt}")));
                    }
                    Ok((SqlType::Bool, ln || rn))
                } else {
                    // AND / OR
                    if lt != SqlType::Bool || rt != SqlType::Bool {
                        return Err(VdmError::Type(format!(
                            "{} requires boolean operands, got {lt} and {rt}",
                            op.symbol()
                        )));
                    }
                    Ok((SqlType::Bool, ln || rn))
                }
            }
            Expr::Not(e) => {
                let (t, n) = e.data_type(input)?;
                if t != SqlType::Bool {
                    return Err(VdmError::Type(format!("NOT requires boolean, got {t}")));
                }
                Ok((SqlType::Bool, n))
            }
            Expr::IsNull(e) | Expr::IsNotNull(e) => {
                e.data_type(input)?;
                Ok((SqlType::Bool, false))
            }
            Expr::Case { branches, else_expr } => {
                let mut ty: Option<SqlType> = None;
                let mut nullable = else_expr.is_none();
                for (cond, val) in branches {
                    let (ct, _) = cond.data_type(input)?;
                    if ct != SqlType::Bool {
                        return Err(VdmError::Type("CASE condition must be boolean".into()));
                    }
                    let (vt, vn) = val.data_type(input)?;
                    nullable |= vn;
                    ty = Some(match ty {
                        None => vt,
                        Some(prev) => prev.unify(&vt).ok_or_else(|| {
                            VdmError::Type(format!("CASE branches disagree: {prev} vs {vt}"))
                        })?,
                    });
                }
                if let Some(e) = else_expr {
                    let (et, en) = e.data_type(input)?;
                    nullable |= en;
                    ty = Some(match ty {
                        None => et,
                        Some(prev) => prev.unify(&et).ok_or_else(|| {
                            VdmError::Type(format!("CASE branches disagree: {prev} vs {et}"))
                        })?,
                    });
                }
                let ty = ty.ok_or_else(|| VdmError::Type("CASE without branches".into()))?;
                Ok((ty, nullable))
            }
            Expr::Func { func, args } => func_type(*func, args, input),
            Expr::Cast { expr, ty } => {
                let (_, n) = expr.data_type(input)?;
                Ok((*ty, n))
            }
            // A parameter may be bound to NULL at execute time.
            Expr::Param { ty, .. } => Ok((*ty, true)),
        }
    }

    /// Visits every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Col(_) | Expr::Lit(_) | Expr::Param { .. } => {}
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.visit(f),
            Expr::Case { branches, else_expr } => {
                for (c, v) in branches {
                    c.visit(f);
                    v.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Cast { expr, .. } => expr.visit(f),
        }
    }

    /// Collects all referenced column ordinals.
    pub fn referenced_columns(&self, out: &mut std::collections::BTreeSet<usize>) {
        self.visit(&mut |e| {
            if let Expr::Col(i) = e {
                out.insert(*i);
            }
        });
    }

    /// True if the expression references no columns at all. Placeholders
    /// count as non-constant: their value is unknown until execute time, so
    /// constant folding must leave them alone.
    pub fn is_constant(&self) -> bool {
        let mut any = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Col(_) | Expr::Param { .. }) {
                any = true;
            }
        });
        !any
    }

    /// True if the expression contains any [`Expr::Param`] placeholder.
    pub fn contains_param(&self) -> bool {
        let mut any = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Param { .. }) {
                any = true;
            }
        });
        any
    }

    /// Replaces every placeholder with the literal from `values` at its
    /// index. Errors when an index is out of range (arity mismatch).
    pub fn bind_params(&self, values: &[Value]) -> Result<Expr> {
        let mut missing = None;
        let bound = self.transform(&|e| match e {
            Expr::Param { idx, .. } => match values.get(*idx) {
                Some(v) => Some(Expr::Lit(v.clone())),
                None => Some(Expr::Param { idx: *idx, ty: SqlType::Int }),
            },
            _ => None,
        });
        bound.visit(&mut |e| {
            if let Expr::Param { idx, .. } = e {
                missing.get_or_insert(*idx);
            }
        });
        match missing {
            Some(idx) => Err(VdmError::Plan(format!(
                "statement expects parameter ${} but only {} value(s) were supplied",
                idx + 1,
                values.len()
            ))),
            None => Ok(bound),
        }
    }

    /// Rebuilds the expression with every column ordinal passed through `f`.
    pub fn remap_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        self.transform(&|e| match e {
            Expr::Col(i) => Some(Expr::Col(f(*i))),
            _ => None,
        })
    }

    /// Rebuilds the expression, substituting every column reference with the
    /// expression returned by `f` (used to inline projections).
    pub fn substitute_columns(&self, f: &impl Fn(usize) -> Expr) -> Expr {
        self.transform(&|e| match e {
            Expr::Col(i) => Some(f(*i)),
            _ => None,
        })
    }

    /// Bottom-up rebuild where `f` may replace a node (applied to the node
    /// *before* children are rebuilt; if `f` returns a replacement, that
    /// replacement is used as-is and not descended into).
    pub fn transform(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        if let Some(replaced) = f(self) {
            return replaced;
        }
        match self {
            Expr::Col(_) | Expr::Lit(_) | Expr::Param { .. } => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.transform(f))),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.transform(f))),
            Expr::Case { branches, else_expr } => Expr::Case {
                branches: branches.iter().map(|(c, v)| (c.transform(f), v.transform(f))).collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.transform(f))),
            },
            Expr::Func { func, args } => {
                Expr::Func { func: *func, args: args.iter().map(|a| a.transform(f)).collect() }
            }
            Expr::Cast { expr, ty } => Expr::Cast { expr: Box::new(expr.transform(f)), ty: *ty },
        }
    }
}

fn func_type(func: ScalarFunc, args: &[Expr], input: &Schema) -> Result<(SqlType, bool)> {
    let arg_types: Vec<(SqlType, bool)> =
        args.iter().map(|a| a.data_type(input)).collect::<Result<_>>()?;
    match func {
        ScalarFunc::Round => {
            if args.len() != 2 {
                return Err(VdmError::Type("ROUND takes (value, scale)".into()));
            }
            let (t, n) = arg_types[0];
            match t {
                SqlType::Int => Ok((SqlType::Int, n)),
                SqlType::Decimal { .. } => {
                    // Result scale is the literal second argument when known.
                    let scale = match &args[1] {
                        Expr::Lit(Value::Int(s)) if *s >= 0 => *s as u8,
                        _ => 0,
                    };
                    Ok((SqlType::Decimal { scale }, n))
                }
                other => Err(VdmError::Type(format!("ROUND requires numeric, got {other}"))),
            }
        }
        ScalarFunc::Coalesce => {
            if args.is_empty() {
                return Err(VdmError::Type("COALESCE needs at least one argument".into()));
            }
            let mut ty = arg_types[0].0;
            for (t, _) in &arg_types[1..] {
                ty = ty.unify(t).ok_or_else(|| {
                    VdmError::Type(format!("COALESCE arguments disagree: {ty} vs {t}"))
                })?;
            }
            let nullable = arg_types.iter().all(|(_, n)| *n);
            Ok((ty, nullable))
        }
        ScalarFunc::Abs => {
            if args.len() != 1 {
                return Err(VdmError::Type("ABS takes one argument".into()));
            }
            let (t, n) = arg_types[0];
            if !matches!(t, SqlType::Int | SqlType::Decimal { .. }) {
                return Err(VdmError::Type(format!("ABS requires numeric, got {t}")));
            }
            Ok((t, n))
        }
        ScalarFunc::Upper | ScalarFunc::Lower => {
            if args.len() != 1 {
                return Err(VdmError::Type(format!("{} takes one argument", func.name())));
            }
            let (t, n) = arg_types[0];
            if t != SqlType::Text {
                return Err(VdmError::Type(format!("{} requires TEXT, got {t}", func.name())));
            }
            Ok((SqlType::Text, n))
        }
        ScalarFunc::Length => {
            if args.len() != 1 {
                return Err(VdmError::Type("LENGTH takes one argument".into()));
            }
            let (t, n) = arg_types[0];
            if t != SqlType::Text {
                return Err(VdmError::Type(format!("LENGTH requires TEXT, got {t}")));
            }
            Ok((SqlType::Int, n))
        }
        ScalarFunc::Concat => {
            if args.is_empty() {
                return Err(VdmError::Type("CONCAT needs at least one argument".into()));
            }
            for (t, _) in &arg_types {
                if *t != SqlType::Text {
                    return Err(VdmError::Type(format!("CONCAT requires TEXT, got {t}")));
                }
            }
            Ok((SqlType::Text, arg_types.iter().any(|(_, n)| *n)))
        }
        ScalarFunc::Like => {
            if args.len() != 2 {
                return Err(VdmError::Type("LIKE takes (value, pattern)".into()));
            }
            for (t, _) in &arg_types {
                if *t != SqlType::Text {
                    return Err(VdmError::Type(format!("LIKE requires TEXT, got {t}")));
                }
            }
            Ok((SqlType::Bool, arg_types.iter().any(|(_, n)| *n)))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "${i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Expr::Case { branches, else_expr } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
            Expr::Param { idx, .. } => write!(f, "?{}", idx + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", SqlType::Int, false),
            Field::new("b", SqlType::Decimal { scale: 2 }, true),
            Field::new("s", SqlType::Text, false),
        ])
    }

    #[test]
    fn type_inference_arithmetic() {
        let s = schema();
        let e = Expr::col(0).binary(BinOp::Add, Expr::int(1));
        assert_eq!(e.data_type(&s).unwrap(), (SqlType::Int, false));
        let e = Expr::col(0).binary(BinOp::Add, Expr::col(1));
        assert_eq!(e.data_type(&s).unwrap(), (SqlType::Decimal { scale: 2 }, true));
        let e = Expr::col(0).binary(BinOp::Div, Expr::int(3));
        assert_eq!(e.data_type(&s).unwrap().0, SqlType::Decimal { scale: 6 });
    }

    #[test]
    fn type_errors_are_caught() {
        let s = schema();
        assert!(Expr::col(2).binary(BinOp::Add, Expr::int(1)).data_type(&s).is_err());
        assert!(Expr::col(0).and(Expr::col(1)).data_type(&s).is_err());
        assert!(Expr::Not(Box::new(Expr::col(0))).data_type(&s).is_err());
        assert!(Expr::col(9).data_type(&s).is_err());
    }

    #[test]
    fn comparison_nullability() {
        let s = schema();
        let cmp = Expr::col(0).binary(BinOp::Lt, Expr::col(1));
        assert_eq!(cmp.data_type(&s).unwrap(), (SqlType::Bool, true));
        let isnull = Expr::IsNull(Box::new(Expr::col(1)));
        assert_eq!(isnull.data_type(&s).unwrap(), (SqlType::Bool, false));
    }

    #[test]
    fn referenced_columns_and_remap() {
        let e = Expr::col(0).eq(Expr::col(2)).and(Expr::col(2).eq(Expr::int(5)));
        let mut cols = std::collections::BTreeSet::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![0, 2]);
        let remapped = e.remap_columns(&|i| i + 10);
        let mut cols = std::collections::BTreeSet::new();
        remapped.referenced_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![10, 12]);
    }

    #[test]
    fn substitute_columns_inlines() {
        let e = Expr::col(0).binary(BinOp::Add, Expr::int(1));
        let sub = e.substitute_columns(&|_| Expr::int(41));
        assert_eq!(sub, Expr::int(41).binary(BinOp::Add, Expr::int(1)));
    }

    #[test]
    fn conjunction_builder() {
        assert_eq!(Expr::conjunction(vec![]), Expr::boolean(true));
        let one = Expr::col(0).eq(Expr::int(1));
        assert_eq!(Expr::conjunction(vec![one.clone()]), one);
    }

    #[test]
    fn round_result_scale_comes_from_literal() {
        let s = schema();
        let e = Expr::Func { func: ScalarFunc::Round, args: vec![Expr::col(1), Expr::int(1)] };
        assert_eq!(e.data_type(&s).unwrap().0, SqlType::Decimal { scale: 1 });
    }

    #[test]
    fn params_are_not_constant_and_bind_to_literals() {
        let e = Expr::col(0).eq(Expr::param(0, SqlType::Int));
        assert!(!e.is_constant());
        assert!(e.contains_param());
        let p = Expr::param(0, SqlType::Int).binary(BinOp::Add, Expr::int(1));
        assert!(!p.is_constant());
        let bound = e.bind_params(&[Value::Int(7)]).unwrap();
        assert_eq!(bound, Expr::col(0).eq(Expr::int(7)));
        assert!(!bound.contains_param());
        let err = e.bind_params(&[]).unwrap_err().to_string();
        assert!(err.contains("parameter $1"), "{err}");
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col(0).eq(Expr::int(5));
        assert_eq!(e.to_string(), "($0 = 5)");
    }
}
