//! Predicate analysis: conjunctions, implication, disjointness, and
//! constant bindings.
//!
//! Three paper-critical judgements live here:
//!
//! * **Subsumption** ([`implies`]) — Fig. 10(c): an ASJ with a filtered
//!   augmenter may only be removed when the augmenter predicate *subsumes*
//!   the anchor predicate (every row the anchor keeps would also be kept by
//!   the augmenter filter).
//! * **Disjointness** ([`disjoint`]) — Fig. 12(a): a UNION ALL of provably
//!   disjoint subsets of the same relation preserves key uniqueness.
//! * **Constant bindings** ([`constant_bindings`]) — AJ 2a-3: a filter
//!   `y = 1` pins `y`, so a composite unique key `(x, y)` shrinks to `x`.
//!
//! All judgements are conservative: `false` answers are always safe.

use crate::expr::{BinOp, Expr};
use vdm_types::Value;

/// Splits a predicate into its top-level conjuncts.
pub fn split_conjunction(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary { op: BinOp::And, left, right } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

/// An atomic range constraint `col ⟨op⟩ literal` extracted from a conjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    pub col: usize,
    pub op: BinOp,
    pub value: Value,
}

/// Extracts an [`Atom`] from a conjunct of the form `col ⟨cmp⟩ lit` or
/// `lit ⟨cmp⟩ col` (flipping the comparison).
pub fn as_atom(e: &Expr) -> Option<Atom> {
    if let Expr::Binary { op, left, right } = e {
        if !op.is_comparison() {
            return None;
        }
        match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) if !v.is_null() => {
                Some(Atom { col: *c, op: *op, value: v.clone() })
            }
            (Expr::Lit(v), Expr::Col(c)) if !v.is_null() => {
                Some(Atom { col: *c, op: op.flip(), value: v.clone() })
            }
            _ => None,
        }
    } else {
        None
    }
}

/// Does atom `p` imply atom `q`? (Both must constrain the same column.)
fn atom_implies(p: &Atom, q: &Atom) -> bool {
    if p.col != q.col {
        return false;
    }
    let (pv, qv) = (&p.value, &q.value);
    let cmp = match pv.sql_cmp(qv) {
        Some(c) => c,
        None => return false,
    };
    use std::cmp::Ordering::*;
    match (p.op, q.op) {
        // x = a  ⇒  x ⟨op⟩ b when a ⟨op⟩ b holds.
        (BinOp::Eq, BinOp::Eq) => cmp == Equal,
        (BinOp::Eq, BinOp::NotEq) => cmp != Equal,
        (BinOp::Eq, BinOp::Lt) => cmp == Less,
        (BinOp::Eq, BinOp::LtEq) => cmp != Greater,
        (BinOp::Eq, BinOp::Gt) => cmp == Greater,
        (BinOp::Eq, BinOp::GtEq) => cmp != Less,
        // Range-to-range implications.
        (BinOp::Lt, BinOp::Lt) => cmp != Greater, // x < a ⇒ x < b if a <= b
        (BinOp::Lt, BinOp::LtEq) => cmp != Greater,
        (BinOp::LtEq, BinOp::LtEq) => cmp != Greater,
        (BinOp::LtEq, BinOp::Lt) => cmp == Less, // x <= a ⇒ x < b if a < b
        (BinOp::Gt, BinOp::Gt) => cmp != Less,
        (BinOp::Gt, BinOp::GtEq) => cmp != Less,
        (BinOp::GtEq, BinOp::GtEq) => cmp != Less,
        (BinOp::GtEq, BinOp::Gt) => cmp == Greater,
        // x < a ⇒ x <> b if b >= a; x > a ⇒ x <> b if b <= a.
        (BinOp::Lt, BinOp::NotEq) => cmp != Greater,
        (BinOp::Gt, BinOp::NotEq) => cmp != Less,
        (BinOp::NotEq, BinOp::NotEq) => cmp == Equal,
        _ => false,
    }
}

/// Conservative implication check: `p ⇒ q`.
///
/// True when every conjunct of `q` is either syntactically present in `p`
/// or implied by some atomic conjunct of `p`. Column ordinals must refer to
/// the *same* relation layout on both sides — callers remap before asking.
pub fn implies(p: &Expr, q: &Expr) -> bool {
    if crate::fold::is_always_true(q) {
        return true;
    }
    let p_parts = split_conjunction(p);
    let q_parts = split_conjunction(q);
    let p_atoms: Vec<Option<Atom>> = p_parts.iter().map(|e| as_atom(e)).collect();
    q_parts.iter().all(|qc| {
        // Syntactic match.
        if p_parts.iter().any(|pc| pc == qc) {
            return true;
        }
        // Atomic range implication.
        if let Some(qa) = as_atom(qc) {
            return p_atoms.iter().flatten().any(|pa| atom_implies(pa, &qa));
        }
        false
    })
}

/// Conservative disjointness check: no row can satisfy both `p` and `q`.
///
/// Detected when both predicates contain atoms over the same column whose
/// ranges cannot intersect (`x = 1` vs `x = 2`, `x = 1` vs `x <> 1`,
/// `x < 5` vs `x >= 5`, ...).
pub fn disjoint(p: &Expr, q: &Expr) -> bool {
    let pa: Vec<Atom> = split_conjunction(p).iter().filter_map(|e| as_atom(e)).collect();
    let qa: Vec<Atom> = split_conjunction(q).iter().filter_map(|e| as_atom(e)).collect();
    for a in &pa {
        for b in &qa {
            if a.col != b.col {
                continue;
            }
            let cmp = match a.value.sql_cmp(&b.value) {
                Some(c) => c,
                None => continue,
            };
            use std::cmp::Ordering::*;
            let clash = match (a.op, b.op) {
                (BinOp::Eq, BinOp::Eq) => cmp != Equal,
                (BinOp::Eq, BinOp::NotEq) | (BinOp::NotEq, BinOp::Eq) => cmp == Equal,
                (BinOp::Eq, BinOp::Lt) => cmp != Less,
                (BinOp::Eq, BinOp::LtEq) => cmp == Greater,
                (BinOp::Eq, BinOp::Gt) => cmp != Greater,
                (BinOp::Eq, BinOp::GtEq) => cmp == Less,
                (BinOp::Lt, BinOp::Eq) => cmp != Greater,
                (BinOp::LtEq, BinOp::Eq) => cmp == Less,
                (BinOp::Gt, BinOp::Eq) => cmp != Less,
                (BinOp::GtEq, BinOp::Eq) => cmp == Greater,
                // x < a disjoint x > b when a <= b (no integer-gap reasoning);
                // similarly for the other range pairings.
                (BinOp::Lt, BinOp::Gt) | (BinOp::Lt, BinOp::GtEq) => cmp != Greater,
                (BinOp::LtEq, BinOp::Gt) => cmp != Greater,
                (BinOp::LtEq, BinOp::GtEq) => cmp == Less,
                (BinOp::Gt, BinOp::Lt) | (BinOp::GtEq, BinOp::Lt) => cmp != Less,
                (BinOp::Gt, BinOp::LtEq) => cmp != Less,
                (BinOp::GtEq, BinOp::LtEq) => cmp == Greater,
                _ => false,
            };
            if clash {
                return true;
            }
        }
    }
    false
}

/// Extracts `(column, constant)` pairs pinned by equality conjuncts
/// (`col = lit`). Used by AJ 2a-3 key shrinking.
pub fn constant_bindings(pred: &Expr) -> Vec<(usize, Value)> {
    split_conjunction(pred)
        .iter()
        .filter_map(|e| as_atom(e))
        .filter(|a| a.op == BinOp::Eq)
        .map(|a| (a.col, a.value))
        .collect()
}

/// Extracts the columns pinned to constants.
pub fn constant_bound_columns(pred: &Expr) -> std::collections::BTreeSet<usize> {
    constant_bindings(pred).into_iter().map(|(c, _)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> Expr {
        Expr::col(i)
    }

    #[test]
    fn split_flattens_nested_ands() {
        let p = c(0).eq(Expr::int(1)).and(c(1).eq(Expr::int(2)).and(c(2).eq(Expr::int(3))));
        assert_eq!(split_conjunction(&p).len(), 3);
    }

    #[test]
    fn atom_extraction_flips_literal_side() {
        let a = as_atom(&Expr::int(5).binary(BinOp::Lt, c(3))).unwrap();
        assert_eq!(a.col, 3);
        assert_eq!(a.op, BinOp::Gt);
        assert!(as_atom(&c(0).eq(c(1))).is_none());
    }

    #[test]
    fn implication_syntactic_and_range() {
        let p = c(0).eq(Expr::int(5)).and(c(1).eq(Expr::str("x")));
        let q = c(0).eq(Expr::int(5));
        assert!(implies(&p, &q));
        assert!(!implies(&q, &p));
        // x = 5 implies x > 3
        assert!(implies(&c(0).eq(Expr::int(5)), &c(0).binary(BinOp::Gt, Expr::int(3))));
        // x > 5 implies x > 3
        assert!(implies(
            &c(0).binary(BinOp::Gt, Expr::int(5)),
            &c(0).binary(BinOp::Gt, Expr::int(3))
        ));
        // x > 3 does NOT imply x > 5
        assert!(!implies(
            &c(0).binary(BinOp::Gt, Expr::int(3)),
            &c(0).binary(BinOp::Gt, Expr::int(5))
        ));
        // x = 5 implies x <> 7
        assert!(implies(&c(0).eq(Expr::int(5)), &c(0).binary(BinOp::NotEq, Expr::int(7))));
        // Anything implies TRUE.
        assert!(implies(&c(0).eq(Expr::int(1)), &Expr::boolean(true)));
    }

    #[test]
    fn implication_is_conservative_on_unknown_shapes() {
        // x + 1 = 2 should not be claimed to imply anything non-syntactic.
        let p = c(0).binary(BinOp::Add, Expr::int(1)).eq(Expr::int(2));
        let q = c(0).eq(Expr::int(1));
        assert!(!implies(&p, &q));
        // But syntactic identity still works for complex conjuncts.
        assert!(implies(&p, &p));
    }

    #[test]
    fn disjointness_on_equality_and_ranges() {
        assert!(disjoint(&c(0).eq(Expr::int(1)), &c(0).eq(Expr::int(2))));
        assert!(!disjoint(&c(0).eq(Expr::int(1)), &c(0).eq(Expr::int(1))));
        assert!(disjoint(&c(0).eq(Expr::int(1)), &c(0).binary(BinOp::NotEq, Expr::int(1))));
        assert!(disjoint(
            &c(0).binary(BinOp::Lt, Expr::int(5)),
            &c(0).binary(BinOp::GtEq, Expr::int(5))
        ));
        assert!(!disjoint(
            &c(0).binary(BinOp::Lt, Expr::int(5)),
            &c(0).binary(BinOp::Gt, Expr::int(3))
        ));
        // Different columns: never disjoint by this analysis.
        assert!(!disjoint(&c(0).eq(Expr::int(1)), &c(1).eq(Expr::int(2))));
    }

    #[test]
    fn draft_pattern_disjointness() {
        // Fig. 11(a): active vs draft split by a status column.
        let active = c(2).eq(Expr::str("A"));
        let draft = c(2).eq(Expr::str("D"));
        assert!(disjoint(&active, &draft));
    }

    #[test]
    fn constant_bindings_extraction() {
        let p = c(1).eq(Expr::int(1)).and(c(3).binary(BinOp::Gt, Expr::int(0)));
        let binds = constant_bindings(&p);
        assert_eq!(binds, vec![(1, Value::Int(1))]);
        assert_eq!(constant_bound_columns(&p).into_iter().collect::<Vec<_>>(), vec![1]);
    }
}
