//! Scalar and aggregate expressions.
//!
//! Everything the optimizer reasons about symbolically lives here:
//!
//! * [`Expr`] — scalar expression trees over input-column ordinals, with
//!   static type inference and row-at-a-time evaluation;
//! * [`AggExpr`] / [`Accumulator`] — aggregate functions with the
//!   `allow_precision_loss` flag from §7.1 of the paper;
//! * [`fold()`](fold::fold) — constant folding (turns `1 = 0` into `FALSE`, which is how
//!   AJ 2b "left-outer join with an empty relation" becomes detectable);
//! * [`predicate`] — conjunction splitting, implication (the *subsumption*
//!   check of Fig. 10c), disjointness (the Fig. 12a UNION ALL uniqueness
//!   pattern), and constant-binding extraction (AJ 2a-3);
//! * [`MacroDef`] — expression macros (§7.2): reusable calculation formulas
//!   over aggregates.

pub mod agg;
pub mod eval;
pub mod expr;
pub mod fold;
pub mod macros;
pub mod predicate;

pub use agg::{Accumulator, AggExpr, AggFunc, Retraction};
pub use expr::{BinOp, Expr, ScalarFunc};
pub use fold::fold;
pub use macros::MacroDef;
