//! Cached (materialized) views — the SCV/DCV feature the paper notes in
//! §3: "SAP HANA provides static cached views (SCV) and dynamic cached
//! views (DCV). They are primarily materialized in memory … SCV is
//! refreshed periodically, providing a delayed snapshot of a view. DCV is
//! incrementally maintained, providing the up-to-date snapshot."
//!
//! * **SCV**: serves the materialization as of its last refresh; reads are
//!   O(1) but may be stale. [`CachedView::refresh`] re-materializes,
//!   [`ViewCache::refresh_all_static`] is the periodic tick.
//! * **DCV**: every read is up to date. When the base tables only saw
//!   inserts since the materialization *and* the view plan is
//!   **distributive** (scans, filters, projections, UNION ALL — no joins,
//!   aggregates, DISTINCT, sorts or limits), maintenance is incremental:
//!   the plan runs over just the inserted rows and the results append to
//!   the materialization. Anything else falls back to full recomputation.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::{Mutex, RwLock};
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_storage::{Batch, Snapshot, StorageEngine};
use vdm_types::{Result, Value, VdmError};

/// Refresh discipline of a cached view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Static cached view: serves the last refresh, however old.
    Static,
    /// Dynamic cached view: transparently maintained on read.
    Dynamic,
}

/// Maintenance counters (observability for tests and benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: usize,
    pub full_refreshes: usize,
    pub incremental_refreshes: usize,
}

struct CacheState {
    /// The materialization, shared with readers. Refresh and maintenance
    /// build a replacement *outside* the state lock and swap the `Arc` in,
    /// so readers are only ever blocked for the pointer swap.
    data: Arc<Batch>,
    as_of: Snapshot,
    stats: CacheStats,
}

/// One materialized view.
pub struct CachedView {
    name: String,
    plan: PlanRef,
    mode: CacheMode,
    /// Base tables the plan scans (maintenance dependencies).
    dependencies: Vec<String>,
    state: Mutex<CacheState>,
    /// Serializes refresh/maintenance (which compute outside the state
    /// lock) so concurrent maintainers don't duplicate or reorder work.
    /// Readers never take this lock.
    maintenance: Mutex<()>,
}

impl CachedView {
    fn new(
        name: &str,
        plan: PlanRef,
        mode: CacheMode,
        engine: &StorageEngine,
    ) -> Result<CachedView> {
        let snapshot = engine.snapshot();
        let batch = vdm_exec::execute_at(&plan, engine, snapshot)?.0;
        let mut dependencies = Vec::new();
        collect_scans(&plan, &mut dependencies);
        dependencies.sort();
        dependencies.dedup();
        Ok(CachedView {
            name: name.to_string(),
            plan,
            mode,
            dependencies,
            state: Mutex::new(CacheState {
                data: Arc::new(batch),
                as_of: snapshot,
                stats: CacheStats { full_refreshes: 1, ..CacheStats::default() },
            }),
            maintenance: Mutex::new(()),
        })
    }

    /// The cached view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Base tables this view depends on.
    pub fn dependencies(&self) -> &[String] {
        &self.dependencies
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().unwrap().stats
    }

    /// Snapshot the current materialization was computed at.
    pub fn as_of(&self) -> Snapshot {
        self.state.lock().unwrap().as_of
    }

    /// How far the materialization lags the engine clock (SCV staleness).
    pub fn staleness(&self, engine: &StorageEngine) -> u64 {
        engine.snapshot().0.saturating_sub(self.state.lock().unwrap().as_of.0)
    }

    /// Reads the view. SCV: the stored snapshot. DCV: maintained first.
    /// Readers share the materialization by `Arc`, so a concurrent refresh
    /// only blocks them for the duration of the pointer swap.
    pub fn read(&self, engine: &StorageEngine) -> Result<Arc<Batch>> {
        if self.mode == CacheMode::Dynamic {
            self.maintain(engine)?;
        }
        let mut state = self.state.lock().unwrap();
        state.stats.hits += 1;
        Ok(Arc::clone(&state.data))
    }

    /// Forces a full re-materialization (the SCV periodic refresh). The new
    /// materialization is computed without holding the state lock.
    pub fn refresh(&self, engine: &StorageEngine) -> Result<()> {
        let _serialize = self.maintenance.lock().unwrap();
        self.refresh_serialized(engine)
    }

    /// Full recompute; caller holds the maintenance lock.
    fn refresh_serialized(&self, engine: &StorageEngine) -> Result<()> {
        let snapshot = engine.snapshot();
        let batch = vdm_exec::execute_at(&self.plan, engine, snapshot)?.0;
        let mut state = self.state.lock().unwrap();
        state.data = Arc::new(batch);
        state.as_of = snapshot;
        state.stats.full_refreshes += 1;
        Ok(())
    }

    /// Brings a DCV up to date: no-op when the dependencies are unchanged,
    /// incremental append when possible, full recompute otherwise.
    fn maintain(&self, engine: &StorageEngine) -> Result<()> {
        let _serialize = self.maintenance.lock().unwrap();
        let now = engine.snapshot();
        let (as_of, current) = {
            let state = self.state.lock().unwrap();
            (state.as_of, Arc::clone(&state.data))
        };
        let mut changed = false;
        let mut any_delete = false;
        for dep in &self.dependencies {
            if engine.table_version(dep)? > as_of.0 {
                changed = true;
            }
            if engine.deleted_since(dep, as_of)? {
                any_delete = true;
            }
        }
        if !changed {
            return Ok(());
        }
        if !any_delete && is_distributive(&self.plan) {
            // Incremental: run the plan over only the inserted rows and
            // append — all computed off-lock, then swapped in.
            let delta_rows = eval_distributive_delta(&self.plan, engine, as_of, now)?;
            let delta = Batch::from_rows(self.plan.schema(), &delta_rows)?;
            let merged = Batch::concat(self.plan.schema(), &[(*current).clone(), delta])?;
            let mut state = self.state.lock().unwrap();
            state.data = Arc::new(merged);
            state.as_of = now;
            state.stats.incremental_refreshes += 1;
            return Ok(());
        }
        self.refresh_serialized(engine)
    }
}

/// The registry of cached views. Internally synchronized: registration,
/// lookup, and refresh all take `&self`, so a serving layer can share one
/// `ViewCache` across sessions without an outer lock.
#[derive(Default)]
pub struct ViewCache {
    views: RwLock<HashMap<String, Arc<CachedView>>>,
}

impl ViewCache {
    /// Empty cache.
    pub fn new() -> ViewCache {
        ViewCache::default()
    }

    /// Registers and immediately materializes a cached view.
    pub fn register(
        &self,
        name: &str,
        plan: PlanRef,
        mode: CacheMode,
        engine: &StorageEngine,
    ) -> Result<Arc<CachedView>> {
        let key = name.to_ascii_lowercase();
        // Materialize outside the registry lock; losing a registration race
        // surfaces as the duplicate error below.
        let view = Arc::new(CachedView::new(name, plan, mode, engine)?);
        let mut views = self.views.write().unwrap();
        if views.contains_key(&key) {
            return Err(VdmError::Catalog(format!("cached view {name:?} already exists")));
        }
        views.insert(key, Arc::clone(&view));
        Ok(view)
    }

    /// Looks up a cached view.
    pub fn get(&self, name: &str) -> Option<Arc<CachedView>> {
        self.views.read().unwrap().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Drops a cached view's materialization.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        self.views
            .write()
            .unwrap()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))
    }

    /// Refreshes every static view (the "periodic" refresh tick). The
    /// registry lock is released before any view recomputes, so lookups and
    /// reads proceed while refreshes run.
    pub fn refresh_all_static(&self, engine: &StorageEngine) -> Result<usize> {
        let statics: Vec<Arc<CachedView>> = self
            .views
            .read()
            .unwrap()
            .values()
            .filter(|v| v.mode() == CacheMode::Static)
            .cloned()
            .collect();
        for v in &statics {
            v.refresh(engine)?;
        }
        Ok(statics.len())
    }
}

fn collect_scans(plan: &PlanRef, out: &mut Vec<String>) {
    if let LogicalPlan::Scan { table, .. } = plan.as_ref() {
        out.push(table.name.to_ascii_lowercase());
    }
    for c in plan.children() {
        collect_scans(c, out);
    }
}

/// True when the plan distributes over row insertion: evaluating it on the
/// inserted rows alone yields exactly the rows added to the view.
fn is_distributive(plan: &PlanRef) -> bool {
    match plan.as_ref() {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            is_distributive(input)
        }
        LogicalPlan::UnionAll { inputs, .. } => inputs.iter().all(is_distributive),
        _ => false,
    }
}

/// Evaluates a distributive plan over the rows inserted in `(as_of, now]`.
fn eval_distributive_delta(
    plan: &PlanRef,
    engine: &StorageEngine,
    as_of: Snapshot,
    now: Snapshot,
) -> Result<Vec<Vec<Value>>> {
    let batch = match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => {
            let b = engine.inserted_between(&table.name, as_of, now)?;
            Batch::new(Arc::clone(schema), b.columns)?
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = eval_distributive_delta(input, engine, as_of, now)?;
            let mut out = Vec::new();
            for row in rows {
                if predicate.eval_row(&row)?.as_bool()? == Some(true) {
                    out.push(row);
                }
            }
            return Ok(out);
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = eval_distributive_delta(input, engine, as_of, now)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    projected.push(e.eval_row(&row)?);
                }
                out.push(projected);
            }
            return Ok(out);
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            let mut out = Vec::new();
            for c in inputs {
                out.extend(eval_distributive_delta(c, engine, as_of, now)?);
            }
            return Ok(out);
        }
        other => {
            return Err(VdmError::Plan(format!(
                "plan operator {} is not distributive",
                other.op_name()
            )))
        }
    };
    Ok(batch.to_rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_expr::{AggExpr, BinOp, Expr};
    use vdm_types::SqlType;

    fn setup() -> (StorageEngine, PlanRef, PlanRef) {
        let engine = StorageEngine::new();
        let t = Arc::new(
            TableBuilder::new("sales")
                .column("id", SqlType::Int, false)
                .column("amount", SqlType::Int, false)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        );
        engine.create_table(Arc::clone(&t)).unwrap();
        engine
            .insert("sales", (0..10).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect())
            .unwrap();
        // Distributive plan: filter + project.
        let filtered = LogicalPlan::filter(
            LogicalPlan::scan(Arc::clone(&t)),
            Expr::col(1).binary(BinOp::GtEq, Expr::int(50)),
        )
        .unwrap();
        let distributive =
            LogicalPlan::project(filtered, vec![(Expr::col(0), "id".into())]).unwrap();
        // Non-distributive plan: aggregate.
        let agg = LogicalPlan::aggregate(
            LogicalPlan::scan(t),
            vec![],
            vec![(AggExpr::count_star(), "n".into())],
        )
        .unwrap();
        (engine, distributive, agg)
    }

    #[test]
    fn scv_serves_stale_until_refresh() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        let scv = cache.register("big_sales", plan, CacheMode::Static, &engine).unwrap();
        assert_eq!(scv.read(&engine).unwrap().num_rows(), 5);
        engine.insert("sales", vec![vec![Value::Int(100), Value::Int(999)]]).unwrap();
        // Still the old snapshot...
        assert_eq!(scv.read(&engine).unwrap().num_rows(), 5);
        assert!(scv.staleness(&engine) > 0);
        // ...until the periodic refresh.
        cache.refresh_all_static(&engine).unwrap();
        assert_eq!(scv.read(&engine).unwrap().num_rows(), 6);
        assert_eq!(scv.stats().full_refreshes, 2);
    }

    #[test]
    fn dcv_incremental_on_insert_only() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        let dcv = cache.register("big_sales", plan, CacheMode::Dynamic, &engine).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 5);
        engine
            .insert(
                "sales",
                vec![
                    vec![Value::Int(100), Value::Int(999)],
                    vec![Value::Int(101), Value::Int(1)], // filtered out
                ],
            )
            .unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 6, "up to date without refresh");
        let stats = dcv.stats();
        assert_eq!(stats.incremental_refreshes, 1, "maintained incrementally");
        assert_eq!(stats.full_refreshes, 1, "only the initial materialization");
        // An unchanged dependency costs nothing.
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 6);
        assert_eq!(dcv.stats().incremental_refreshes, 1);
    }

    #[test]
    fn dcv_falls_back_to_full_on_delete() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        let dcv = cache.register("v", plan, CacheMode::Dynamic, &engine).unwrap();
        engine.delete_where("sales", &|r| r[0] == Value::Int(9)).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 4);
        assert_eq!(dcv.stats().full_refreshes, 2, "delete forces recompute");
    }

    #[test]
    fn dcv_full_recompute_for_non_distributive_plans() {
        let (engine, _, agg) = setup();
        let cache = ViewCache::new();
        let dcv = cache.register("cnt", agg, CacheMode::Dynamic, &engine).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(10));
        engine.insert("sales", vec![vec![Value::Int(50), Value::Int(5)]]).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(11));
        assert_eq!(dcv.stats().full_refreshes, 2);
        assert_eq!(dcv.stats().incremental_refreshes, 0);
    }

    #[test]
    fn registry_semantics() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        cache.register("v", plan.clone(), CacheMode::Static, &engine).unwrap();
        assert!(cache.register("V", plan, CacheMode::Static, &engine).is_err());
        assert!(cache.get("v").is_some());
        let deps = cache.get("v").unwrap().dependencies().to_vec();
        assert_eq!(deps, vec!["sales".to_string()]);
        cache.drop_view("v").unwrap();
        assert!(cache.get("v").is_none());
        assert!(cache.drop_view("v").is_err());
    }
}
