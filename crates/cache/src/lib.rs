//! Cached (materialized) views — the SCV/DCV feature the paper notes in
//! §3: "SAP HANA provides static cached views (SCV) and dynamic cached
//! views (DCV). They are primarily materialized in memory … SCV is
//! refreshed periodically, providing a delayed snapshot of a view. DCV is
//! incrementally maintained, providing the up-to-date snapshot."
//!
//! * **SCV**: serves the materialization as of its last refresh; reads are
//!   O(1) but may be stale. [`CachedView::refresh`] re-materializes,
//!   [`ViewCache::refresh_all_static`] is the periodic tick.
//! * **DCV**: every read is up to date, at cost proportional to the
//!   *delta* since the last maintenance. A [`DeltaPlan`] derived once at
//!   registration classifies the view:
//!   - delta-capable shapes (scans, filters, projections, UNION ALL, and
//!     FK-style joins) run `vdm-exec`'s signed-delta evaluator and patch
//!     the materialization: retracted rows are multiset-subtracted,
//!     inserted rows appended;
//!   - a root `Aggregate` over a delta-capable input **folds**: live
//!     per-group accumulators absorb the input delta and the output is
//!     re-rendered from group state. Deletes retract exactly except when
//!     a group loses its MIN/MAX extreme, which rebuilds that group from
//!     a key-filtered scan (or the whole view when the key is not
//!     expressible as a literal filter);
//!   - everything else — and any change to a *frozen* table (the
//!     snapshot-probed side of a join) — recomputes from scratch.
//!
//! Incremental maintenance cannot reproduce full-recompute output
//! *order* bit-for-bit (hash joins and revived groups land elsewhere),
//! so equivalence is asserted as multiset equality via
//! [`multiset_digest`]; `set_verify(true)` (the default in debug builds)
//! checks every incremental step against a full recompute.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use vdm_exec::kernels::hash_values;
use vdm_expr::{AggExpr, BinOp, Expr, Retraction};
use vdm_obs::registry::{self, MetricsRegistry};
use vdm_obs::{names, trace as qtrace};
use vdm_plan::{
    derive_delta_plan, plan_digest_canonical, scan_tables, DeltaClass, DeltaPlan, LogicalPlan,
    PlanRef,
};
use vdm_storage::{Batch, Snapshot, StorageEngine};
use vdm_types::{Result, Schema, Value, VdmError};

/// Refresh discipline of a cached view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Static cached view: serves the last refresh, however old.
    Static,
    /// Dynamic cached view: transparently maintained on read.
    Dynamic,
}

/// Maintenance counters (observability for tests and benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: usize,
    pub full_refreshes: usize,
    pub incremental_refreshes: usize,
    /// Maintenance passes that found the dependencies unchanged.
    pub noop_refreshes: usize,
    /// Signed delta rows (both signs) folded into the materialization.
    pub delta_rows: usize,
    /// Groups rebuilt from a key-filtered scan after losing their
    /// MIN/MAX extreme to a retraction.
    pub group_recomputes: usize,
    /// Whole-view recomputes forced by a MIN/MAX retraction whose group
    /// could not be rebuilt in isolation.
    pub minmax_full_refreshes: usize,
}

/// What a maintenance pass did — surfaced in `EXPLAIN ANALYZE`'s
/// `[view cache: ...]` header and the `vdm_view_refresh_total` metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainOutcome {
    /// Dependencies unchanged (or SCV read): served as-is.
    Fresh,
    /// Patched from the signed delta; `delta_rows` counts both signs.
    Incremental { delta_rows: usize },
    /// Recomputed from scratch.
    Full,
}

impl MaintainOutcome {
    /// Render for the `[view cache: ...]` EXPLAIN header.
    pub fn describe(&self) -> String {
        match self {
            MaintainOutcome::Fresh => "fresh".to_string(),
            MaintainOutcome::Incremental { delta_rows } => {
                format!("incremental(+{delta_rows} rows)")
            }
            MaintainOutcome::Full => "full refresh".to_string(),
        }
    }
}

/// Order-insensitive multiset digest of a batch: commutative sum of
/// per-row hashes, tied to the row count. Incremental maintenance is
/// asserted digest-equal to full recomputation under this (output *order*
/// is not reproducible — see the module docs).
pub fn multiset_digest(batch: &Batch) -> u64 {
    let mut acc = 0u64;
    for i in 0..batch.num_rows() {
        acc = acc.wrapping_add(hash_values(&batch.row(i)));
    }
    acc ^ (batch.num_rows() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Live accumulator state for a folded root aggregate: one slot per
/// group in first-seen order (matching `ops::aggregate`), with a hidden
/// per-group live-row count so deletes can tombstone emptied groups.
struct GroupState {
    index: HashMap<Vec<Value>, usize>,
    order: Vec<Vec<Value>>,
    accs: Vec<Vec<vdm_expr::Accumulator>>,
    /// Input rows currently contributing to the slot; 0 = dead (skipped
    /// when rendering, revived in place if the key reappears).
    live: Vec<i64>,
    /// Ungrouped aggregate: the single slot renders even when empty.
    global: bool,
}

enum RetractOutcome {
    Clean,
    /// The slot lost a MIN/MAX extreme and must be rebuilt.
    Dirty(usize),
    /// The retracted row's group does not exist — the state is
    /// inconsistent with the delta feed; fall back to full recompute.
    Missing,
}

impl GroupState {
    fn build(
        input: &Batch,
        group_by: &[(Expr, String)],
        aggs: &[(AggExpr, String)],
    ) -> Result<GroupState> {
        let mut gs = GroupState {
            index: HashMap::new(),
            order: Vec::new(),
            accs: Vec::new(),
            live: Vec::new(),
            global: group_by.is_empty(),
        };
        if gs.global {
            gs.push_group(Vec::new(), aggs);
        }
        for i in 0..input.num_rows() {
            gs.insert(&input.row(i), group_by, aggs)?;
        }
        Ok(gs)
    }

    fn push_group(&mut self, key: Vec<Value>, aggs: &[(AggExpr, String)]) -> usize {
        let slot = self.order.len();
        self.index.insert(key.clone(), slot);
        self.order.push(key);
        self.accs.push(aggs.iter().map(|(a, _)| a.accumulator()).collect());
        self.live.push(0);
        slot
    }

    fn key_of(row: &[Value], group_by: &[(Expr, String)]) -> Result<Vec<Value>> {
        let mut key = Vec::with_capacity(group_by.len());
        for (e, _) in group_by {
            key.push(e.eval_row(row)?);
        }
        Ok(key)
    }

    fn insert(
        &mut self,
        row: &[Value],
        group_by: &[(Expr, String)],
        aggs: &[(AggExpr, String)],
    ) -> Result<()> {
        let key = Self::key_of(row, group_by)?;
        let slot = match self.index.get(&key) {
            Some(&s) => s,
            None => self.push_group(key, aggs),
        };
        self.live[slot] += 1;
        for (j, (agg, _)) in aggs.iter().enumerate() {
            let v = match &agg.arg {
                Some(a) => a.eval_row(row)?,
                None => Value::Int(1), // COUNT(*) placeholder
            };
            self.accs[slot][j].update(&v)?;
        }
        Ok(())
    }

    fn retract(
        &mut self,
        row: &[Value],
        group_by: &[(Expr, String)],
        aggs: &[(AggExpr, String)],
    ) -> Result<RetractOutcome> {
        let key = Self::key_of(row, group_by)?;
        let Some(&slot) = self.index.get(&key) else {
            return Ok(RetractOutcome::Missing);
        };
        if self.live[slot] == 0 {
            return Ok(RetractOutcome::Missing);
        }
        self.live[slot] -= 1;
        let mut dirty = false;
        for (j, (agg, _)) in aggs.iter().enumerate() {
            let v = match &agg.arg {
                Some(a) => a.eval_row(row)?,
                None => Value::Int(1),
            };
            if self.accs[slot][j].retract(&v)? == Retraction::Recompute {
                dirty = true;
            }
        }
        Ok(if dirty { RetractOutcome::Dirty(slot) } else { RetractOutcome::Clean })
    }

    /// Rebuilds the dirty slots from a key-filtered scan of the input at
    /// `now`. Returns `false` when the rebuild cannot be expressed or
    /// the filtered rows don't map back cleanly — the caller falls back
    /// to a whole-view recompute.
    fn recompute_groups(
        &mut self,
        input: &PlanRef,
        group_by: &[(Expr, String)],
        aggs: &[(AggExpr, String)],
        engine: &StorageEngine,
        now: Snapshot,
        dirty: &BTreeSet<usize>,
    ) -> Result<bool> {
        // An ungrouped aggregate's rebuild *is* a whole-view recompute.
        if group_by.is_empty() {
            return Ok(false);
        }
        let mut pred: Option<Expr> = None;
        for &slot in dirty {
            let mut conj: Option<Expr> = None;
            for ((ge, _), kv) in group_by.iter().zip(&self.order[slot]) {
                if kv.is_null() {
                    // `expr = NULL` is never true; the group is not
                    // reachable by an equality filter.
                    return Ok(false);
                }
                let eq = ge.clone().binary(BinOp::Eq, Expr::Lit(kv.clone()));
                conj = Some(match conj {
                    Some(c) => c.and(eq),
                    None => eq,
                });
            }
            let conj = conj.expect("grouped view has group keys");
            pred = Some(match pred {
                Some(p) => p.or(conj),
                None => conj,
            });
        }
        let filtered = LogicalPlan::filter(Arc::clone(input), pred.expect("dirty set non-empty"))?;
        let rows = vdm_exec::execute_at(&filtered, engine, now)?.0;
        for &slot in dirty {
            self.accs[slot] = aggs.iter().map(|(a, _)| a.accumulator()).collect();
            self.live[slot] = 0;
        }
        for i in 0..rows.num_rows() {
            let row = rows.row(i);
            let key = Self::key_of(&row, group_by)?;
            let Some(&slot) = self.index.get(&key) else {
                return Ok(false);
            };
            if !dirty.contains(&slot) {
                // The equality filter matched a clean group (e.g. values
                // equal under SQL `=` but distinct as map keys).
                return Ok(false);
            }
            self.live[slot] += 1;
            for (j, (agg, _)) in aggs.iter().enumerate() {
                let v = match &agg.arg {
                    Some(a) => a.eval_row(&row)?,
                    None => Value::Int(1),
                };
                self.accs[slot][j].update(&v)?;
            }
        }
        Ok(true)
    }

    /// Renders the live groups in first-seen order.
    fn render(&self, schema: Arc<Schema>) -> Result<Batch> {
        let mut rows = Vec::with_capacity(self.order.len());
        for slot in 0..self.order.len() {
            if self.live[slot] == 0 && !self.global {
                continue;
            }
            let mut row = self.order[slot].clone();
            for acc in &self.accs[slot] {
                row.push(acc.finish()?);
            }
            rows.push(row);
        }
        Batch::from_rows(schema, &rows)
    }
}

struct CacheState {
    /// The materialization, shared with readers. Refresh and maintenance
    /// build a replacement *outside* the state lock and swap the `Arc` in,
    /// so readers are only ever blocked for the pointer swap.
    data: Arc<Batch>,
    as_of: Snapshot,
    /// Live accumulator state for folded aggregates. Taken out (not
    /// cloned) for the duration of a fold so maintenance stays O(delta);
    /// `None` after a fold error or for non-folding views — the next
    /// full refresh rebuilds it.
    groups: Option<GroupState>,
    stats: CacheStats,
}

/// One materialized view.
pub struct CachedView {
    name: String,
    plan: PlanRef,
    mode: CacheMode,
    /// Maintenance classification, derived once at registration.
    delta_plan: DeltaPlan,
    /// Base tables the plan scans (maintenance dependencies).
    dependencies: Vec<String>,
    state: Mutex<CacheState>,
    /// Serializes refresh/maintenance (which compute outside the state
    /// lock) so concurrent maintainers don't duplicate or reorder work.
    /// Readers never take this lock.
    maintenance: Mutex<()>,
    /// Check every incremental step against a full recompute
    /// (multiset-digest equality). Defaults on in debug builds.
    verify: AtomicBool,
}

/// The pieces of a folded root aggregate — the `Aggregate` node itself
/// (possibly under the binder's renaming `Project`, which
/// [`render_folded`] re-applies): (input, group_by, aggs, schema).
type FoldParts<'a> = (&'a PlanRef, &'a [(Expr, String)], &'a [(AggExpr, String)], &'a Arc<Schema>);

fn fold_parts(plan: &PlanRef) -> Option<FoldParts<'_>> {
    let agg = vdm_plan::folded_aggregate(plan)?;
    let LogicalPlan::Aggregate { input, group_by, aggs, schema } = agg.as_ref() else {
        return None;
    };
    Some((input, group_by, aggs, schema))
}

/// Renders the view output from live group state: the aggregate rows in
/// first-seen order, then the root projection (if any) on top.
fn render_folded(plan: &PlanRef, gs: &GroupState, agg_schema: &Arc<Schema>) -> Result<Batch> {
    let out = gs.render(Arc::clone(agg_schema))?;
    if let LogicalPlan::Project { exprs, schema, .. } = plan.as_ref() {
        return vdm_exec::delta::project_batch(&out, exprs, Arc::clone(schema));
    }
    Ok(out)
}

/// Materializes `plan` at `snapshot`; folded aggregates build group
/// state and render from it (same first-seen order as the executor).
fn materialize(
    plan: &PlanRef,
    folds_aggregate: bool,
    engine: &StorageEngine,
    snapshot: Snapshot,
) -> Result<(Batch, Option<GroupState>)> {
    if folds_aggregate {
        if let Some((input, group_by, aggs, agg_schema)) = fold_parts(plan) {
            let in_batch = vdm_exec::execute_at(input, engine, snapshot)?.0;
            let gs = GroupState::build(&in_batch, group_by, aggs)?;
            let out = render_folded(plan, &gs, agg_schema)?;
            return Ok((out, Some(gs)));
        }
    }
    Ok((vdm_exec::execute_at(plan, engine, snapshot)?.0, None))
}

fn record_refresh(kind: &'static str, seconds: f64, delta_rows: usize) {
    let m = MetricsRegistry::global();
    m.inc(&registry::label(names::VIEW_REFRESH_TOTAL, "kind", kind), 1);
    m.observe(names::VIEW_REFRESH_SECONDS, seconds);
    if delta_rows > 0 {
        m.inc(names::VIEW_DELTA_ROWS_TOTAL, delta_rows as u64);
    }
}

impl CachedView {
    fn new(
        name: &str,
        plan: PlanRef,
        mode: CacheMode,
        engine: &StorageEngine,
    ) -> Result<CachedView> {
        let started = Instant::now();
        let delta_plan = derive_delta_plan(&plan);
        let snapshot = engine.snapshot();
        let (batch, groups) = materialize(&plan, delta_plan.folds_aggregate, engine, snapshot)?;
        let mut dependencies = scan_tables(&plan);
        dependencies.sort();
        dependencies.dedup();
        record_refresh("full", started.elapsed().as_secs_f64(), 0);
        Ok(CachedView {
            name: name.to_string(),
            plan,
            mode,
            delta_plan,
            dependencies,
            state: Mutex::new(CacheState {
                data: Arc::new(batch),
                as_of: snapshot,
                groups,
                stats: CacheStats { full_refreshes: 1, ..CacheStats::default() },
            }),
            maintenance: Mutex::new(()),
            verify: AtomicBool::new(cfg!(debug_assertions)),
        })
    }

    /// The cached view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The view's definition plan.
    pub fn plan(&self) -> &PlanRef {
        &self.plan
    }

    /// The maintenance classification derived at registration.
    pub fn delta_plan(&self) -> &DeltaPlan {
        &self.delta_plan
    }

    /// Base tables this view depends on.
    pub fn dependencies(&self) -> &[String] {
        &self.dependencies
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().unwrap().stats
    }

    /// Snapshot the current materialization was computed at.
    pub fn as_of(&self) -> Snapshot {
        self.state.lock().unwrap().as_of
    }

    /// How far the materialization lags the engine clock (SCV staleness).
    pub fn staleness(&self, engine: &StorageEngine) -> u64 {
        engine.snapshot().0.saturating_sub(self.state.lock().unwrap().as_of.0)
    }

    /// Toggles per-step verification of incremental maintenance against
    /// a full recompute (multiset-digest equality).
    pub fn set_verify(&self, on: bool) {
        self.verify.store(on, Ordering::Relaxed);
    }

    /// Reads the view. SCV: the stored snapshot. DCV: maintained first.
    /// Readers share the materialization by `Arc`, so a concurrent refresh
    /// only blocks them for the duration of the pointer swap.
    pub fn read(&self, engine: &StorageEngine) -> Result<Arc<Batch>> {
        Ok(self.read_with_outcome(engine)?.0)
    }

    /// [`read`](CachedView::read), also reporting what maintenance did —
    /// the source of `EXPLAIN ANALYZE`'s `[view cache: ...]` header.
    pub fn read_with_outcome(
        &self,
        engine: &StorageEngine,
    ) -> Result<(Arc<Batch>, MaintainOutcome)> {
        let outcome = if self.mode == CacheMode::Dynamic {
            self.maintain(engine)?
        } else {
            MaintainOutcome::Fresh
        };
        let mut state = self.state.lock().unwrap();
        state.stats.hits += 1;
        Ok((Arc::clone(&state.data), outcome))
    }

    /// Forces a full re-materialization (the SCV periodic refresh). The new
    /// materialization is computed without holding the state lock.
    pub fn refresh(&self, engine: &StorageEngine) -> Result<()> {
        let _serialize = self.maintenance.lock().unwrap();
        self.refresh_serialized(engine)
    }

    /// Full recompute; caller holds the maintenance lock.
    fn refresh_serialized(&self, engine: &StorageEngine) -> Result<()> {
        let _span = qtrace::span("view.refresh");
        qtrace::attr("view", &self.name);
        let started = Instant::now();
        let snapshot = engine.snapshot();
        let (batch, groups) =
            materialize(&self.plan, self.delta_plan.folds_aggregate, engine, snapshot)?;
        let mut state = self.state.lock().unwrap();
        state.data = Arc::new(batch);
        state.as_of = snapshot;
        state.groups = groups;
        state.stats.full_refreshes += 1;
        drop(state);
        record_refresh("full", started.elapsed().as_secs_f64(), 0);
        Ok(())
    }

    /// Brings a DCV up to date, dispatching on the precomputed
    /// [`DeltaPlan`]: no-op when the dependencies are unchanged,
    /// signed-delta patch or aggregate fold when the class allows it,
    /// full recompute otherwise.
    pub fn maintain(&self, engine: &StorageEngine) -> Result<MaintainOutcome> {
        let _serialize = self.maintenance.lock().unwrap();
        let _span = qtrace::span("view.maintain");
        qtrace::attr("view", &self.name);
        let started = Instant::now();
        let now = engine.snapshot();
        let (as_of, current) = {
            let state = self.state.lock().unwrap();
            (state.as_of, Arc::clone(&state.data))
        };
        let mut changed = false;
        let mut frozen_changed = false;
        let mut any_delete = false;
        for dep in &self.dependencies {
            if engine.table_version(dep)? > as_of.0 {
                changed = true;
                if self.delta_plan.frozen_tables.binary_search(dep).is_ok() {
                    frozen_changed = true;
                }
                if engine.deleted_since(dep, as_of)? {
                    any_delete = true;
                }
            }
        }
        if !changed {
            self.state.lock().unwrap().stats.noop_refreshes += 1;
            record_refresh("noop", started.elapsed().as_secs_f64(), 0);
            qtrace::attr("outcome", "noop");
            return Ok(MaintainOutcome::Fresh);
        }
        let incremental_ok = !frozen_changed
            && match self.delta_plan.class {
                DeltaClass::FullOnly => false,
                // DISTINCT seen-sets carry no multiplicity: inserts fold,
                // deletes recompute.
                DeltaClass::IncrementalInsert => !any_delete,
                DeltaClass::IncrementalRetract => true,
            };
        if incremental_ok {
            let applied = if self.delta_plan.folds_aggregate {
                self.fold_aggregate_delta(engine, as_of, now)?
            } else {
                self.apply_signed_delta(engine, as_of, now, &current)?
            };
            if let Some(delta_rows) = applied {
                if self.verify.load(Ordering::Relaxed) {
                    self.verify_against_full(engine, now)?;
                }
                record_refresh("incremental", started.elapsed().as_secs_f64(), delta_rows);
                qtrace::attr("outcome", "incremental");
                qtrace::attr("delta_rows", delta_rows);
                return Ok(MaintainOutcome::Incremental { delta_rows });
            }
            // Fell through: retraction not representable incrementally.
        }
        self.refresh_serialized(engine)?;
        qtrace::attr("outcome", "full");
        Ok(MaintainOutcome::Full)
    }

    /// Patches a plain (non-folding) view from its signed delta:
    /// multiset-subtract the retractions, append the insertions.
    /// `None` = a retracted row is missing from the materialization
    /// (inconsistent state) — fall back to full recompute.
    fn apply_signed_delta(
        &self,
        engine: &StorageEngine,
        as_of: Snapshot,
        now: Snapshot,
        current: &Arc<Batch>,
    ) -> Result<Option<usize>> {
        let d = vdm_exec::eval_signed_delta(&self.plan, engine, as_of, now)?;
        let delta_rows = d.rows();
        let merged = if delta_rows == 0 {
            None // dependencies moved but the view's output did not
        } else {
            let base = if d.minus.num_rows() == 0 {
                (**current).clone()
            } else {
                match multiset_subtract(current, &d.minus) {
                    Some(b) => b,
                    None => return Ok(None),
                }
            };
            Some(Batch::concat(self.plan.schema(), &[base, d.plus])?)
        };
        let mut state = self.state.lock().unwrap();
        if let Some(b) = merged {
            state.data = Arc::new(b);
        }
        state.as_of = now;
        state.stats.incremental_refreshes += 1;
        state.stats.delta_rows += delta_rows;
        Ok(Some(delta_rows))
    }

    /// Folds the input's signed delta into live group state and
    /// re-renders. `None` = fall back to full recompute (missing group
    /// state, unmatched retraction, or a MIN/MAX rebuild that cannot be
    /// scoped to its group).
    fn fold_aggregate_delta(
        &self,
        engine: &StorageEngine,
        as_of: Snapshot,
        now: Snapshot,
    ) -> Result<Option<usize>> {
        let Some((input, group_by, aggs, agg_schema)) = fold_parts(&self.plan) else {
            return Ok(None);
        };
        let d = vdm_exec::eval_signed_delta(input, engine, as_of, now)?;
        let delta_rows = d.rows();
        if delta_rows == 0 {
            let mut state = self.state.lock().unwrap();
            state.as_of = now;
            state.stats.incremental_refreshes += 1;
            return Ok(Some(0));
        }
        // Take the state out (no clone): on any error it stays `None`
        // and the next full refresh rebuilds it.
        let Some(mut gs) = self.state.lock().unwrap().groups.take() else {
            return Ok(None);
        };
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for i in 0..d.plus.num_rows() {
            gs.insert(&d.plus.row(i), group_by, aggs)?;
        }
        for i in 0..d.minus.num_rows() {
            match gs.retract(&d.minus.row(i), group_by, aggs)? {
                RetractOutcome::Clean => {}
                RetractOutcome::Dirty(slot) => {
                    dirty.insert(slot);
                }
                RetractOutcome::Missing => return Ok(None),
            }
        }
        let recomputed = dirty.len();
        if !dirty.is_empty() && !gs.recompute_groups(input, group_by, aggs, engine, now, &dirty)? {
            self.state.lock().unwrap().stats.minmax_full_refreshes += 1;
            return Ok(None);
        }
        let rendered = render_folded(&self.plan, &gs, agg_schema)?;
        let mut state = self.state.lock().unwrap();
        state.data = Arc::new(rendered);
        state.as_of = now;
        state.groups = Some(gs);
        state.stats.incremental_refreshes += 1;
        state.stats.delta_rows += delta_rows;
        state.stats.group_recomputes += recomputed;
        Ok(Some(delta_rows))
    }

    fn verify_against_full(&self, engine: &StorageEngine, now: Snapshot) -> Result<()> {
        let full = vdm_exec::execute_at(&self.plan, engine, now)?.0;
        let got = Arc::clone(&self.state.lock().unwrap().data);
        if multiset_digest(&got) != multiset_digest(&full) {
            return Err(VdmError::Exec(format!(
                "cached view {:?}: incremental maintenance diverged from full recompute \
                 ({} rows vs {} rows)",
                self.name,
                got.num_rows(),
                full.num_rows()
            )));
        }
        Ok(())
    }
}

/// Multiset subtraction preserving `stored`'s order: removes one
/// occurrence per `minus` row. `None` when a `minus` row has no match —
/// the materialization disagrees with the delta feed.
fn multiset_subtract(stored: &Batch, minus: &Batch) -> Option<Batch> {
    let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
    for i in 0..minus.num_rows() {
        *counts.entry(minus.row(i)).or_insert(0) += 1;
    }
    let mut remaining = minus.num_rows();
    let mut keep = Vec::with_capacity(stored.num_rows().saturating_sub(remaining));
    for i in 0..stored.num_rows() {
        if remaining > 0 {
            if let Some(c) = counts.get_mut(&stored.row(i)) {
                if *c > 0 {
                    *c -= 1;
                    remaining -= 1;
                    continue;
                }
            }
        }
        keep.push(i);
    }
    if remaining > 0 {
        return None;
    }
    Some(stored.take(&keep))
}

/// The registry of cached views. Internally synchronized: registration,
/// lookup, and refresh all take `&self`, so a serving layer can share one
/// `ViewCache` across sessions without an outer lock.
#[derive(Default)]
pub struct ViewCache {
    views: RwLock<HashMap<String, Arc<CachedView>>>,
    /// Names reserved by in-flight registrations, so the duplicate check
    /// happens *before* the (possibly expensive) materialization and two
    /// racing `register` calls can't both materialize.
    reserved: Mutex<HashSet<String>>,
}

impl ViewCache {
    /// Empty cache.
    pub fn new() -> ViewCache {
        ViewCache::default()
    }

    /// Registers and immediately materializes a cached view. The name is
    /// check-and-reserved under the registry lock first, so a duplicate
    /// fails fast without materializing and concurrent registrations of
    /// the same name see exactly one winner.
    pub fn register(
        &self,
        name: &str,
        plan: PlanRef,
        mode: CacheMode,
        engine: &StorageEngine,
    ) -> Result<Arc<CachedView>> {
        let key = name.to_ascii_lowercase();
        {
            let views = self.views.read().unwrap();
            let mut reserved = self.reserved.lock().unwrap();
            if views.contains_key(&key) || !reserved.insert(key.clone()) {
                return Err(VdmError::Catalog(format!("cached view {name:?} already exists")));
            }
        }
        // Materialize outside the registry locks; the reservation holds
        // the name either way.
        let built = CachedView::new(name, plan, mode, engine);
        let mut views = self.views.write().unwrap();
        self.reserved.lock().unwrap().remove(&key);
        let view = Arc::new(built?);
        views.insert(key, Arc::clone(&view));
        Ok(view)
    }

    /// Replaces a view's definition. When the new plan's canonical digest
    /// and mode match the existing registration, the current
    /// materialization and maintenance plan are kept as-is (re-running
    /// DDL or re-planning after a profile switch is free); otherwise the
    /// view is re-derived and re-materialized.
    pub fn reregister(
        &self,
        name: &str,
        plan: PlanRef,
        mode: CacheMode,
        engine: &StorageEngine,
    ) -> Result<Arc<CachedView>> {
        let key = name.to_ascii_lowercase();
        let existing = self
            .get(name)
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))?;
        if existing.mode() == mode && existing.delta_plan().digest == plan_digest_canonical(&plan) {
            return Ok(existing);
        }
        let view = Arc::new(CachedView::new(name, plan, mode, engine)?);
        self.views.write().unwrap().insert(key, Arc::clone(&view));
        Ok(view)
    }

    /// Looks up a cached view.
    pub fn get(&self, name: &str) -> Option<Arc<CachedView>> {
        self.views.read().unwrap().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Drops a cached view's materialization.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        self.views
            .write()
            .unwrap()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))
    }

    /// Refreshes every static view (the "periodic" refresh tick). The
    /// registry lock is released before any view recomputes, so lookups and
    /// reads proceed while refreshes run.
    pub fn refresh_all_static(&self, engine: &StorageEngine) -> Result<usize> {
        let statics: Vec<Arc<CachedView>> = self
            .views
            .read()
            .unwrap()
            .values()
            .filter(|v| v.mode() == CacheMode::Static)
            .cloned()
            .collect();
        for v in &statics {
            v.refresh(engine)?;
        }
        Ok(statics.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_expr::{AggExpr, AggFunc, BinOp, Expr};
    use vdm_types::SqlType;

    fn setup() -> (StorageEngine, PlanRef, PlanRef) {
        let engine = StorageEngine::new();
        let t = Arc::new(
            TableBuilder::new("sales")
                .column("id", SqlType::Int, false)
                .column("amount", SqlType::Int, false)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        );
        engine.create_table(Arc::clone(&t)).unwrap();
        engine
            .insert("sales", (0..10).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect())
            .unwrap();
        // Delta-capable plan: filter + project.
        let filtered = LogicalPlan::filter(
            LogicalPlan::scan(Arc::clone(&t)),
            Expr::col(1).binary(BinOp::GtEq, Expr::int(50)),
        )
        .unwrap();
        let capable = LogicalPlan::project(filtered, vec![(Expr::col(0), "id".into())]).unwrap();
        // Folding plan: root aggregate.
        let agg = LogicalPlan::aggregate(
            LogicalPlan::scan(t),
            vec![],
            vec![(AggExpr::count_star(), "n".into())],
        )
        .unwrap();
        (engine, capable, agg)
    }

    #[test]
    fn scv_serves_stale_until_refresh() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        let scv = cache.register("big_sales", plan, CacheMode::Static, &engine).unwrap();
        assert_eq!(scv.read(&engine).unwrap().num_rows(), 5);
        engine.insert("sales", vec![vec![Value::Int(100), Value::Int(999)]]).unwrap();
        // Still the old snapshot...
        assert_eq!(scv.read(&engine).unwrap().num_rows(), 5);
        assert!(scv.staleness(&engine) > 0);
        // ...until the periodic refresh.
        cache.refresh_all_static(&engine).unwrap();
        assert_eq!(scv.read(&engine).unwrap().num_rows(), 6);
        assert_eq!(scv.stats().full_refreshes, 2);
    }

    #[test]
    fn dcv_incremental_on_insert_only() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        let dcv = cache.register("big_sales", plan, CacheMode::Dynamic, &engine).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 5);
        engine
            .insert(
                "sales",
                vec![
                    vec![Value::Int(100), Value::Int(999)],
                    vec![Value::Int(101), Value::Int(1)], // filtered out
                ],
            )
            .unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 6, "up to date without refresh");
        let stats = dcv.stats();
        assert_eq!(stats.incremental_refreshes, 1, "maintained incrementally");
        assert_eq!(stats.full_refreshes, 1, "only the initial materialization");
        // An unchanged dependency costs nothing.
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 6);
        assert_eq!(dcv.stats().incremental_refreshes, 1);
        assert_eq!(dcv.stats().noop_refreshes, 2, "first read and the re-read were no-ops");
    }

    #[test]
    fn dcv_retracts_deletes_incrementally() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        let dcv = cache.register("v", plan, CacheMode::Dynamic, &engine).unwrap();
        engine.delete_where("sales", &|r| r[0] == Value::Int(9)).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 4);
        let stats = dcv.stats();
        assert_eq!(stats.full_refreshes, 1, "delete retracted, not recomputed");
        assert_eq!(stats.incremental_refreshes, 1);
        assert_eq!(stats.delta_rows, 1);
    }

    #[test]
    fn dcv_folds_root_aggregate() {
        let (engine, _, agg) = setup();
        let cache = ViewCache::new();
        let dcv = cache.register("cnt", agg, CacheMode::Dynamic, &engine).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(10));
        engine.insert("sales", vec![vec![Value::Int(50), Value::Int(5)]]).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(11));
        engine.delete_where("sales", &|r| r[0] == Value::Int(50)).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(10));
        let stats = dcv.stats();
        assert_eq!(stats.full_refreshes, 1, "only the initial materialization");
        assert_eq!(stats.incremental_refreshes, 2);
    }

    #[test]
    fn minmax_retraction_recomputes_the_group() {
        let engine = StorageEngine::new();
        let t = Arc::new(
            TableBuilder::new("m")
                .column("k", SqlType::Int, false)
                .column("v", SqlType::Int, false)
                .primary_key(&["k", "v"])
                .build()
                .unwrap(),
        );
        engine.create_table(Arc::clone(&t)).unwrap();
        engine
            .insert(
                "m",
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(1), Value::Int(20)],
                    vec![Value::Int(2), Value::Int(30)],
                ],
            )
            .unwrap();
        let agg = LogicalPlan::aggregate(
            LogicalPlan::scan(t),
            vec![(Expr::col(0), "k".into())],
            vec![(AggExpr::new(AggFunc::Max, Expr::col(1)), "mx".into())],
        )
        .unwrap();
        let cache = ViewCache::new();
        let dcv = cache.register("mx", agg, CacheMode::Dynamic, &engine).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 2);
        // Delete group 1's extreme: the group is rebuilt, not the view.
        engine.delete_where("m", &|r| r[1] == Value::Int(20)).unwrap();
        let data = dcv.read(&engine).unwrap();
        let rows = data.to_rows();
        assert!(rows.contains(&vec![Value::Int(1), Value::Int(10)]));
        assert!(rows.contains(&vec![Value::Int(2), Value::Int(30)]));
        let stats = dcv.stats();
        assert_eq!(stats.group_recomputes, 1);
        assert_eq!(stats.full_refreshes, 1);
        // Delete a non-extreme value: exact retraction, no rebuild.
        engine.delete_where("m", &|r| r[1] == Value::Int(10)).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().num_rows(), 1, "group 1 died");
        assert_eq!(dcv.stats().group_recomputes, 2, "10 was the remaining extreme");
    }

    #[test]
    fn distinct_aggregate_falls_back_to_full_on_delete() {
        let (engine, _, _) = setup();
        let mut distinct = AggExpr::new(AggFunc::Count, Expr::col(1));
        distinct.distinct = true;
        let t = Arc::new(
            TableBuilder::new("sales")
                .column("id", SqlType::Int, false)
                .column("amount", SqlType::Int, false)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        );
        let agg =
            LogicalPlan::aggregate(LogicalPlan::scan(t), vec![], vec![(distinct, "n".into())])
                .unwrap();
        let cache = ViewCache::new();
        let dcv = cache.register("d", agg, CacheMode::Dynamic, &engine).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(10));
        engine.insert("sales", vec![vec![Value::Int(50), Value::Int(90)]]).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(10), "90 already seen");
        assert_eq!(dcv.stats().incremental_refreshes, 1, "inserts fold");
        engine.delete_where("sales", &|r| r[0] == Value::Int(9)).unwrap();
        assert_eq!(dcv.read(&engine).unwrap().row(0)[0], Value::Int(10), "50 still has 90");
        assert_eq!(dcv.stats().full_refreshes, 2, "deletes recompute");
    }

    #[test]
    fn registry_semantics() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        cache.register("v", plan.clone(), CacheMode::Static, &engine).unwrap();
        assert!(cache.register("V", plan, CacheMode::Static, &engine).is_err());
        assert!(cache.get("v").is_some());
        let deps = cache.get("v").unwrap().dependencies().to_vec();
        assert_eq!(deps, vec!["sales".to_string()]);
        cache.drop_view("v").unwrap();
        assert!(cache.get("v").is_none());
        assert!(cache.drop_view("v").is_err());
    }

    #[test]
    fn racing_registrations_have_one_winner() {
        let (engine, plan, _) = setup();
        let cache = ViewCache::new();
        let oks: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let plan = plan.clone();
                    let cache = &cache;
                    let engine = &engine;
                    s.spawn(move || {
                        cache.register("raced", plan, CacheMode::Static, engine).is_ok() as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(oks, 1, "exactly one registration wins");
        assert!(cache.get("raced").is_some());
    }

    #[test]
    fn reregister_skips_rederivation_when_digest_unchanged() {
        let (engine, plan, agg) = setup();
        let cache = ViewCache::new();
        let v1 = cache.register("v", plan.clone(), CacheMode::Dynamic, &engine).unwrap();
        // Same canonical plan: the existing view (and its materialization)
        // is kept.
        let v2 = cache.reregister("v", plan, CacheMode::Dynamic, &engine).unwrap();
        assert!(Arc::ptr_eq(&v1, &v2));
        // Different plan: re-derived and re-materialized.
        let v3 = cache.reregister("v", agg, CacheMode::Dynamic, &engine).unwrap();
        assert!(!Arc::ptr_eq(&v1, &v3));
        assert!(v3.delta_plan().folds_aggregate);
        assert!(cache.reregister("nope", v3.plan().clone(), CacheMode::Static, &engine).is_err());
    }

    #[test]
    fn multiset_digest_is_order_insensitive() {
        let (engine, _, _) = setup();
        let snap = engine.snapshot();
        let a = engine.scan("sales", snap).unwrap();
        let rev: Vec<usize> = (0..a.num_rows()).rev().collect();
        let b = a.take(&rev);
        assert_eq!(multiset_digest(&a), multiset_digest(&b));
        // ...but not multiplicity-insensitive.
        let dup: Vec<usize> = (0..a.num_rows()).chain(0..1).collect();
        assert_ne!(multiset_digest(&a), multiset_digest(&a.take(&dup)));
    }
}
