//! A simulation of SAP HANA's *native storage extension* (NSE, §2.2 of the
//! paper): tables can be **page loadable** instead of fully
//! column loadable — "only accessed pages are loaded into an in-memory
//! page buffer and evicted as needed", and "switching between page-based
//! vs. column-based organization … is easy by changing the metadata of the
//! table and reloading".
//!
//! Everything here stays in memory; what the simulation models is the
//! *I/O accounting*: which scans would have touched disk, and how the
//! page buffer's hit rate responds to table layout and access patterns.
//! S/4HANA uses NSE for write-mostly data like change-document journals —
//! the integration tests mirror that scenario.

use std::collections::VecDeque;

/// How a table's columns are kept in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Whole columns resident (the default for hot data).
    ColumnLoadable,
    /// Page-wise residency through a bounded buffer.
    PageLoadable {
        /// Rows per page.
        page_rows: usize,
    },
}

/// Page-access counters of one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Pages faulted into the buffer (simulated disk reads).
    pub loads: u64,
    /// Pages served from the buffer.
    pub hits: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl PageStats {
    /// Buffer hit rate in `[0, 1]`; 1.0 when nothing was accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.loads + self.hits;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A FIFO page buffer (clock-like approximation of HANA's buffer cache).
#[derive(Debug)]
pub struct PageBuffer {
    capacity: usize,
    resident: VecDeque<usize>,
    stats: PageStats,
}

impl PageBuffer {
    /// Buffer holding at most `capacity` pages.
    pub fn new(capacity: usize) -> PageBuffer {
        PageBuffer {
            capacity: capacity.max(1),
            resident: VecDeque::new(),
            stats: PageStats::default(),
        }
    }

    /// Records an access to `page`, faulting and evicting as needed.
    pub fn touch(&mut self, page: usize) {
        if self.resident.contains(&page) {
            self.stats.hits += 1;
            return;
        }
        self.stats.loads += 1;
        if self.resident.len() >= self.capacity {
            self.resident.pop_front();
            self.stats.evictions += 1;
        }
        self.resident.push_back(page);
    }

    /// Records a scan touching rows `[0, rows)` at `page_rows` granularity.
    pub fn touch_range(&mut self, rows: usize, page_rows: usize) {
        let pages = rows.div_ceil(page_rows.max(1));
        for p in 0..pages {
            self.touch(p);
        }
    }

    /// Drops all resident pages (the "reload" after a metadata switch).
    pub fn clear(&mut self) {
        self.resident.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PageStats {
        self.stats
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_then_hits() {
        let mut b = PageBuffer::new(4);
        b.touch_range(100, 50); // pages 0, 1
        assert_eq!(b.stats(), PageStats { loads: 2, hits: 0, evictions: 0 });
        b.touch_range(100, 50); // both resident
        assert_eq!(b.stats(), PageStats { loads: 2, hits: 2, evictions: 0 });
        assert!(b.stats().hit_rate() > 0.49);
    }

    #[test]
    fn eviction_under_pressure() {
        let mut b = PageBuffer::new(2);
        for p in 0..4 {
            b.touch(p);
        }
        assert_eq!(b.stats().loads, 4);
        assert_eq!(b.stats().evictions, 2);
        assert_eq!(b.resident_pages(), 2);
        // Page 0 was evicted: touching it faults again.
        b.touch(0);
        assert_eq!(b.stats().loads, 5);
    }

    #[test]
    fn clear_models_reload() {
        let mut b = PageBuffer::new(8);
        b.touch_range(80, 10);
        b.clear();
        assert_eq!(b.resident_pages(), 0);
        b.touch(0);
        assert_eq!(b.stats().loads, 9, "post-reload access faults");
    }

    #[test]
    fn hit_rate_of_untouched_buffer_is_one() {
        assert_eq!(PageBuffer::new(4).stats().hit_rate(), 1.0);
    }
}
