//! The storage engine: named tables, monotone timestamps, snapshots.

use crate::column::Batch;
use crate::store::TableStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::RwLock;
use vdm_catalog::TableDef;
use vdm_types::{Result, Value, VdmError};

/// A read timestamp. Scans against one snapshot observe a consistent state
/// regardless of concurrent writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Snapshot(pub u64);

/// Thread-safe multi-table storage engine with auto-commit writes.
#[derive(Debug, Default)]
pub struct StorageEngine {
    tables: RwLock<HashMap<String, Arc<RwLock<TableStore>>>>,
    clock: AtomicU64,
}

impl StorageEngine {
    /// Fresh, empty engine.
    pub fn new() -> StorageEngine {
        StorageEngine::default()
    }

    /// Creates the backing store for a table definition.
    pub fn create_table(&self, def: Arc<TableDef>) -> Result<()> {
        let key = def.name.to_ascii_lowercase();
        let mut tables = self.tables.write().unwrap();
        if tables.contains_key(&key) {
            return Err(VdmError::Storage(format!("table {:?} already stored", def.name)));
        }
        tables.insert(key, Arc::new(RwLock::new(TableStore::new(def))));
        Ok(())
    }

    /// Drops a table's data.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .unwrap()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| VdmError::Storage(format!("unknown table {name:?}")))
    }

    fn table(&self, name: &str) -> Result<Arc<RwLock<TableStore>>> {
        self.tables
            .read()
            .unwrap()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| VdmError::Storage(format!("unknown table {name:?}")))
    }

    /// The current read snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.clock.load(Ordering::SeqCst))
    }

    fn next_ts(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Inserts rows (one auto-committed transaction). Returns rows written.
    ///
    /// The commit timestamp is allocated while holding the table's write
    /// lock: the clock must never advertise a timestamp whose rows are not
    /// yet in the store, or a snapshot pinned at that instant would see the
    /// rows appear between two reads.
    pub fn insert(&self, name: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let table = self.table(name)?;
        let mut store = table.write().unwrap();
        let ts = self.next_ts();
        store.insert(rows, ts)
    }

    /// Deletes rows matching `pred` (one auto-committed transaction).
    pub fn delete_where(&self, name: &str, pred: &dyn Fn(&[Value]) -> bool) -> Result<usize> {
        let table = self.table(name)?;
        let mut store = table.write().unwrap();
        let ts = self.next_ts();
        let n = store.delete_where(pred, ts);
        Ok(n)
    }

    /// Updates rows matching `pred` by applying `f` (delete + insert).
    pub fn update_where(
        &self,
        name: &str,
        pred: &dyn Fn(&[Value]) -> bool,
        f: &dyn Fn(&mut Vec<Value>),
    ) -> Result<usize> {
        let table = self.table(name)?;
        let mut store = table.write().unwrap();
        let ts = self.next_ts();
        let snapshot_rows = store.scan(ts - 1)?;
        let mut updated = Vec::new();
        for i in 0..snapshot_rows.num_rows() {
            let row = snapshot_rows.row(i);
            if pred(&row) {
                let mut new_row = row;
                f(&mut new_row);
                updated.push(new_row);
            }
        }
        if updated.is_empty() {
            return Ok(0);
        }
        store.delete_where(pred, ts);
        let n = updated.len();
        store.insert(updated, ts)?;
        Ok(n)
    }

    /// Scans a table at `snapshot`.
    pub fn scan(&self, name: &str, snapshot: Snapshot) -> Result<Batch> {
        self.table(name)?.read().unwrap().scan(snapshot.0)
    }

    /// Scans at most `max_rows` of a table at `snapshot`.
    pub fn scan_limited(&self, name: &str, snapshot: Snapshot, max_rows: usize) -> Result<Batch> {
        self.table(name)?.read().unwrap().scan_limited(snapshot.0, max_rows)
    }

    /// Timestamp of the table's most recent write (0 = never written).
    pub fn table_version(&self, name: &str) -> Result<u64> {
        Ok(self.table(name)?.read().unwrap().last_write_ts())
    }

    /// True when the table saw deletes after `since`.
    pub fn deleted_since(&self, name: &str, since: Snapshot) -> Result<bool> {
        Ok(self.table(name)?.read().unwrap().last_delete_ts() > since.0)
    }

    /// Rows inserted after `since` and still live at `now` (incremental
    /// view maintenance feed).
    pub fn inserted_between(&self, name: &str, since: Snapshot, now: Snapshot) -> Result<Batch> {
        self.table(name)?.read().unwrap().inserted_between(since.0, now.0)
    }

    /// Rows visible at `since` but tombstoned in `(since, now]` — the
    /// retraction feed paired with [`StorageEngine::inserted_between`].
    /// Rows both inserted and deleted inside the window appear in neither.
    pub fn deleted_between(&self, name: &str, since: Snapshot, now: Snapshot) -> Result<Batch> {
        self.table(name)?.read().unwrap().deleted_between(since.0, now.0)
    }

    /// Switches a table between column-loadable and page-loadable layouts
    /// (the NSE metadata change + reload of §2.2).
    pub fn set_load_mode(
        &self,
        name: &str,
        mode: crate::nse::LoadMode,
        buffer_pages: usize,
    ) -> Result<()> {
        let table = self.table(name)?;
        table.write().unwrap().set_load_mode(mode, buffer_pages);
        Ok(())
    }

    /// Page-buffer counters of a table.
    pub fn page_stats(&self, name: &str) -> Result<crate::nse::PageStats> {
        Ok(self.table(name)?.read().unwrap().page_stats())
    }

    /// Scans with zone-map pruning on `column` over `range` (a superset of
    /// the matching rows; callers re-apply their predicate).
    pub fn scan_pruned(
        &self,
        name: &str,
        snapshot: Snapshot,
        column: usize,
        range: &crate::zonemap::ScanRange,
    ) -> Result<Batch> {
        self.table(name)?.read().unwrap().scan_pruned(snapshot.0, column, range)
    }

    /// Number of fixed-size morsels a parallel scan of the table claims.
    pub fn morsel_count(&self, name: &str, morsel_rows: usize) -> Result<usize> {
        Ok(self.table(name)?.read().unwrap().morsel_count(morsel_rows))
    }

    /// Scans one morsel of a table at `snapshot`. Morsels concatenated in
    /// index order reproduce [`StorageEngine::scan`] exactly.
    pub fn scan_morsel(
        &self,
        name: &str,
        snapshot: Snapshot,
        morsel: usize,
        morsel_rows: usize,
    ) -> Result<Batch> {
        self.table(name)?.read().unwrap().scan_morsel(snapshot.0, morsel, morsel_rows)
    }

    /// Morsel scan with zone-map pruning (see [`TableStore::scan_morsel_pruned`]).
    pub fn scan_morsel_pruned(
        &self,
        name: &str,
        snapshot: Snapshot,
        morsel: usize,
        morsel_rows: usize,
        column: usize,
        range: &crate::zonemap::ScanRange,
    ) -> Result<Batch> {
        self.table(name)?.read().unwrap().scan_morsel_pruned(
            snapshot.0,
            morsel,
            morsel_rows,
            column,
            range,
        )
    }

    /// Main-fragment blocks skipped by zone-map pruning so far.
    pub fn blocks_skipped(&self, name: &str) -> Result<u64> {
        Ok(self.table(name)?.read().unwrap().blocks_skipped())
    }

    /// Live row count at `snapshot`.
    pub fn row_count(&self, name: &str, snapshot: Snapshot) -> Result<usize> {
        Ok(self.table(name)?.read().unwrap().row_count(snapshot.0))
    }

    /// Per-column `(min, max)` zone-map ranges over a table's main
    /// fragment (empty until the first delta merge builds the maps).
    pub fn column_ranges(&self, name: &str) -> Result<Vec<Option<(Value, Value)>>> {
        Ok(self.table(name)?.read().unwrap().column_ranges())
    }

    /// Merges a table's delta into its main fragment.
    pub fn merge_delta(&self, name: &str) -> Result<()> {
        let table = self.table(name)?;
        let ts = self.clock.load(Ordering::SeqCst);
        let result = table.write().unwrap().merge_delta(ts);
        result
    }

    /// Delta size diagnostics.
    pub fn fragment_sizes(&self, name: &str) -> Result<(usize, usize)> {
        let t = self.table(name)?;
        let t = t.read().unwrap();
        Ok((t.main_len(), t.delta_len()))
    }

    /// Stored table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn engine_with_table() -> StorageEngine {
        let e = StorageEngine::new();
        e.create_table(Arc::new(
            TableBuilder::new("t")
                .column("k", SqlType::Int, false)
                .column("v", SqlType::Int, false)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        ))
        .unwrap();
        e
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn snapshot_sees_consistent_state() {
        let e = engine_with_table();
        e.insert("t", vec![row(1, 10)]).unwrap();
        let snap = e.snapshot();
        e.insert("t", vec![row(2, 20)]).unwrap();
        assert_eq!(e.scan("t", snap).unwrap().num_rows(), 1);
        assert_eq!(e.scan("t", e.snapshot()).unwrap().num_rows(), 2);
    }

    #[test]
    fn delete_invisible_after_commit() {
        let e = engine_with_table();
        e.insert("t", vec![row(1, 10), row(2, 20)]).unwrap();
        let before = e.snapshot();
        let n = e.delete_where("t", &|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(e.scan("t", e.snapshot()).unwrap().num_rows(), 1);
        assert_eq!(e.scan("t", before).unwrap().num_rows(), 2, "old snapshot unaffected");
    }

    #[test]
    fn update_where_rewrites_rows() {
        let e = engine_with_table();
        e.insert("t", vec![row(1, 10), row(2, 20)]).unwrap();
        let n =
            e.update_where("t", &|r| r[0] == Value::Int(2), &|r| r[1] = Value::Int(99)).unwrap();
        assert_eq!(n, 1);
        let b = e.scan("t", e.snapshot()).unwrap();
        let mut rows = b.to_rows();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows[1], row(2, 99));
    }

    #[test]
    fn merge_keeps_visibility() {
        let e = engine_with_table();
        e.insert("t", vec![row(1, 10)]).unwrap();
        let old = e.snapshot();
        e.insert("t", vec![row(2, 20)]).unwrap();
        e.merge_delta("t").unwrap();
        let (main, delta) = e.fragment_sizes("t").unwrap();
        assert_eq!((main, delta), (2, 0));
        assert_eq!(e.scan("t", old).unwrap().num_rows(), 1, "merge preserves stamps");
        assert_eq!(e.scan("t", e.snapshot()).unwrap().num_rows(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let e = StorageEngine::new();
        assert!(e.scan("nope", e.snapshot()).is_err());
        assert!(e.insert("nope", vec![]).is_err());
        assert!(e.drop_table("nope").is_err());
    }

    #[test]
    fn concurrent_inserts_from_threads() {
        let e = Arc::new(engine_with_table());
        let mut handles = Vec::new();
        for t in 0..4 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    e.insert("t", vec![row(t * 1000 + i, i)]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.row_count("t", e.snapshot()).unwrap(), 200);
    }
}
