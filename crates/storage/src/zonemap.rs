//! Block zone maps: per-block min/max statistics over the main fragment.
//!
//! S/4HANA relies on range partitioning so "partition pruning can be
//! applied effectively" (§2.2). At this engine's scale the same effect
//! comes from zone maps: the main fragment is divided into fixed-size row
//! blocks, each carrying the min/max of every orderable column; a scan
//! with a range predicate skips blocks that provably contain no match.
//! Zone maps are rebuilt at delta merge — exactly when HANA's read-
//! optimized structures are, so freshly merged "hot" data is immediately
//! prunable while unmerged delta rows are always scanned.

use crate::column::{Column, ColumnData};
use vdm_types::Value;

/// Rows per zone-map block.
pub const ZONE_BLOCK_ROWS: usize = 1024;

/// A half-open-ended range over one column: `min ≤ v ≤ max`, either side
/// optional. Built from filter atoms (`v = k`, `v > k`, `v BETWEEN …`).
#[derive(Debug, Clone, Default)]
pub struct ScanRange {
    pub min: Option<Value>,
    pub max: Option<Value>,
}

impl ScanRange {
    /// The point range `v = k`.
    pub fn point(v: Value) -> ScanRange {
        ScanRange { min: Some(v.clone()), max: Some(v) }
    }

    /// `v >= lo`.
    pub fn at_least(lo: Value) -> ScanRange {
        ScanRange { min: Some(lo), max: None }
    }

    /// `v <= hi`.
    pub fn at_most(hi: Value) -> ScanRange {
        ScanRange { min: None, max: Some(hi) }
    }

    /// Could a value within `[block_min, block_max]` fall in this range?
    fn overlaps(&self, block_min: &Value, block_max: &Value) -> bool {
        if let Some(min) = &self.min {
            if block_max.total_cmp(min) == std::cmp::Ordering::Less {
                return false;
            }
        }
        if let Some(max) = &self.max {
            if block_min.total_cmp(max) == std::cmp::Ordering::Greater {
                return false;
            }
        }
        true
    }
}

/// One block's statistics for one column.
#[derive(Debug, Clone)]
struct BlockStats {
    min: Value,
    max: Value,
    /// Blocks containing NULLs can never be skipped by a range (NULL rows
    /// are invisible to comparisons but other predicates may keep them).
    has_null: bool,
}

/// Zone maps for a whole main fragment: `maps[column][block]`.
#[derive(Debug, Clone, Default)]
pub struct ZoneMaps {
    maps: Vec<Option<Vec<BlockStats>>>,
}

impl ZoneMaps {
    /// Builds zone maps for every orderable column of the fragment.
    pub fn build(columns: &[Column]) -> ZoneMaps {
        let maps = columns
            .iter()
            .map(|col| {
                // Strings are orderable too, but pruning value lies with
                // numeric/date keys; skip dictionary columns to keep maps
                // small.
                if matches!(col.data(), ColumnData::Str(_)) {
                    return None;
                }
                let rows = col.len();
                let n_blocks = rows.div_ceil(ZONE_BLOCK_ROWS);
                let mut stats = Vec::with_capacity(n_blocks);
                for b in 0..n_blocks {
                    let start = b * ZONE_BLOCK_ROWS;
                    let end = (start + ZONE_BLOCK_ROWS).min(rows);
                    let mut min: Option<Value> = None;
                    let mut max: Option<Value> = None;
                    let mut has_null = false;
                    for i in start..end {
                        let v = col.get(i);
                        if v.is_null() {
                            has_null = true;
                            continue;
                        }
                        match &min {
                            None => min = Some(v.clone()),
                            Some(m) if v.total_cmp_non_null(m) == std::cmp::Ordering::Less => {
                                min = Some(v.clone())
                            }
                            _ => {}
                        }
                        match &max {
                            None => max = Some(v.clone()),
                            Some(m) if v.total_cmp_non_null(m) == std::cmp::Ordering::Greater => {
                                max = Some(v)
                            }
                            _ => {}
                        }
                    }
                    stats.push(BlockStats {
                        min: min.unwrap_or(Value::Null),
                        max: max.unwrap_or(Value::Null),
                        has_null,
                    });
                }
                Some(stats)
            })
            .collect();
        ZoneMaps { maps }
    }

    /// May block `block` of `column` contain a row matching `range`?
    /// Conservative: unknown columns/blocks always "may match".
    pub fn block_may_match(&self, column: usize, block: usize, range: &ScanRange) -> bool {
        let Some(Some(stats)) = self.maps.get(column) else {
            return true;
        };
        let Some(s) = stats.get(block) else {
            return true;
        };
        if s.has_null || s.min.is_null() {
            // All-NULL or mixed blocks cannot be excluded by a range.
            return true;
        }
        range.overlaps(&s.min, &s.max)
    }

    /// Whole-fragment `(min, max)` over non-NULL values of `column`, folded
    /// across all blocks. `None` when the column has no zone maps (strings)
    /// or holds no non-NULL values.
    pub fn column_range(&self, column: usize) -> Option<(Value, Value)> {
        let stats = self.maps.get(column)?.as_ref()?;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for s in stats {
            if s.min.is_null() {
                continue;
            }
            match &min {
                None => min = Some(s.min.clone()),
                Some(m) if s.min.total_cmp_non_null(m) == std::cmp::Ordering::Less => {
                    min = Some(s.min.clone())
                }
                _ => {}
            }
            match &max {
                None => max = Some(s.max.clone()),
                Some(m) if s.max.total_cmp_non_null(m) == std::cmp::Ordering::Greater => {
                    max = Some(s.max.clone())
                }
                _ => {}
            }
        }
        Some((min?, max?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::SqlType;

    fn int_column(values: Vec<i64>) -> Column {
        let vals: Vec<Value> = values.into_iter().map(Value::Int).collect();
        Column::from_values(SqlType::Int, &vals).unwrap()
    }

    #[test]
    fn builds_per_block_min_max() {
        // Two blocks: [0..1024) ascending, [1024..2048) offset by 10_000.
        let mut v: Vec<i64> = (0..1024).collect();
        v.extend(10_000..11_024);
        let maps = ZoneMaps::build(&[int_column(v)]);
        assert!(maps.block_may_match(0, 0, &ScanRange::point(Value::Int(500))));
        assert!(!maps.block_may_match(0, 1, &ScanRange::point(Value::Int(500))));
        assert!(maps.block_may_match(0, 1, &ScanRange::at_least(Value::Int(10_500))));
        assert!(!maps.block_may_match(0, 0, &ScanRange::at_least(Value::Int(2_000))));
        assert!(maps.block_may_match(0, 0, &ScanRange::at_most(Value::Int(0))));
    }

    #[test]
    fn null_blocks_never_skipped() {
        let vals = vec![Value::Null, Value::Int(5)];
        let col = Column::from_values(SqlType::Int, &vals).unwrap();
        let maps = ZoneMaps::build(&[col]);
        assert!(maps.block_may_match(0, 0, &ScanRange::point(Value::Int(999))));
    }

    #[test]
    fn string_columns_and_unknown_blocks_are_conservative() {
        let col = Column::from_values(SqlType::Text, &[Value::str("x")]).unwrap();
        let maps = ZoneMaps::build(&[col]);
        assert!(maps.block_may_match(0, 0, &ScanRange::point(Value::Int(1))));
        assert!(maps.block_may_match(5, 0, &ScanRange::point(Value::Int(1))), "unknown column");
        assert!(maps.block_may_match(0, 99, &ScanRange::point(Value::Int(1))), "unknown block");
    }
}
