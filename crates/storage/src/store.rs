//! Per-table storage: delta + main fragments with row visibility stamps.

use crate::column::{Batch, Column};
use crate::nse::{LoadMode, PageBuffer, PageStats};
use crate::zonemap::{ScanRange, ZoneMaps, ZONE_BLOCK_ROWS};
use std::collections::HashSet;
use std::sync::Arc;
use std::sync::Mutex;
use vdm_catalog::TableDef;
use vdm_types::{Result, Schema, Value, VdmError};

/// Visibility stamps of one row version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowMeta {
    insert_ts: u64,
    /// `u64::MAX` = live.
    delete_ts: u64,
}

impl RowMeta {
    fn visible_at(&self, ts: u64) -> bool {
        self.insert_ts <= ts && ts < self.delete_ts
    }
}

/// One tombstoned row version, logged at delete time so incremental view
/// maintenance can retrieve retraction deltas even after a delta merge
/// compacted the fragment that held the row.
#[derive(Debug, Clone)]
struct Tombstone {
    insert_ts: u64,
    delete_ts: u64,
    row: Vec<Value>,
}

/// One table's data: a read-optimized columnar `main` fragment and a
/// write-optimized row-wise `delta`, each with per-row visibility stamps.
#[derive(Debug)]
pub struct TableStore {
    def: Arc<TableDef>,
    schema: Arc<Schema>,
    main: Vec<Column>,
    main_meta: Vec<RowMeta>,
    delta: Vec<Vec<Value>>,
    delta_meta: Vec<RowMeta>,
    /// Live key tuples per unique constraint (PK first), for enforcement.
    key_index: Vec<HashSet<Vec<Value>>>,
    /// Append-only tombstone log (delete-timestamp order). Authoritative
    /// source for [`TableStore::deleted_between`]: unlike the fragments, it
    /// survives `merge_delta` compaction, so a view whose `as_of` predates a
    /// merge still sees every retraction.
    tombstones: Vec<Tombstone>,
    merges: usize,
    /// Timestamp of the most recent write (insert or delete).
    last_write_ts: u64,
    /// Timestamp of the most recent delete.
    last_delete_ts: u64,
    /// Per-block min/max over the main fragment, rebuilt at delta merge —
    /// the scan-pruning analogue of S/4HANA's partition pruning (§2.2).
    zone_maps: ZoneMaps,
    /// Blocks skipped by zone-map pruning (diagnostics).
    blocks_skipped: Mutex<u64>,
    /// NSE simulation: how the main fragment is kept resident.
    load_mode: LoadMode,
    /// Page buffer for page-loadable tables (interior mutability: scans
    /// take a read lock but still account page traffic).
    page_buffer: Mutex<PageBuffer>,
}

impl TableStore {
    /// Empty store for a table definition.
    pub fn new(def: Arc<TableDef>) -> TableStore {
        let schema = Arc::new(def.schema.clone());
        let n_keys = def.unique_sets().len();
        TableStore {
            def,
            schema,
            main: Vec::new(),
            main_meta: Vec::new(),
            delta: Vec::new(),
            delta_meta: Vec::new(),
            key_index: vec![HashSet::new(); n_keys],
            tombstones: Vec::new(),
            merges: 0,
            last_write_ts: 0,
            last_delete_ts: 0,
            zone_maps: ZoneMaps::default(),
            blocks_skipped: Mutex::new(0),
            load_mode: LoadMode::ColumnLoadable,
            page_buffer: Mutex::new(PageBuffer::new(64)),
        }
    }

    /// The table's NSE load mode.
    pub fn load_mode(&self) -> LoadMode {
        self.load_mode
    }

    /// Switches the load mode — the paper's "changing the metadata of the
    /// table and reloading": the page buffer is dropped.
    pub fn set_load_mode(&mut self, mode: LoadMode, buffer_pages: usize) {
        self.load_mode = mode;
        *self.page_buffer.lock().unwrap() = PageBuffer::new(buffer_pages);
    }

    /// Page-buffer counters (all zero for column-loadable tables).
    pub fn page_stats(&self) -> PageStats {
        self.page_buffer.lock().unwrap().stats()
    }

    /// Accounts page traffic for a scan touching `rows` main-fragment rows.
    fn account_scan(&self, rows: usize) {
        if let LoadMode::PageLoadable { page_rows } = self.load_mode {
            self.page_buffer.lock().unwrap().touch_range(rows, page_rows);
        }
    }

    /// Timestamp of the most recent write (insert or delete); 0 = never.
    pub fn last_write_ts(&self) -> u64 {
        self.last_write_ts
    }

    /// Timestamp of the most recent delete; 0 = never.
    pub fn last_delete_ts(&self) -> u64 {
        self.last_delete_ts
    }

    /// Rows inserted after `ts` (exclusive) that are still live at `now` —
    /// the append-delta used by incremental view maintenance. Rows inserted
    /// *and* deleted inside the window cancel out: they appear in neither
    /// this feed nor [`TableStore::deleted_between`].
    ///
    /// Insert timestamps are non-decreasing within each fragment (the delta
    /// appends in commit order; merges preserve it), so the matching suffix
    /// is located by binary search instead of a full stamp sweep — the cost
    /// is O(log table + delta rows), not O(table).
    pub fn inserted_between(&self, ts: u64, now: u64) -> Result<Batch> {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let m_start = self.main_meta.partition_point(|m| m.insert_ts <= ts);
        for (i, meta) in self.main_meta.iter().enumerate().skip(m_start) {
            if meta.visible_at(now) {
                rows.push(self.main.iter().map(|c| c.get(i)).collect());
            }
        }
        let d_start = self.delta_meta.partition_point(|m| m.insert_ts <= ts);
        for (i, meta) in self.delta_meta.iter().enumerate().skip(d_start) {
            if meta.visible_at(now) {
                rows.push(self.delta[i].clone());
            }
        }
        Batch::from_rows(Arc::clone(&self.schema), &rows)
    }

    /// Rows that were visible at `ts` and tombstoned by `now` — the
    /// retraction-delta counterpart of [`TableStore::inserted_between`].
    /// Served from the tombstone log (delete-timestamp order, binary
    /// searched), so the cost is O(log deletes + matches) and the feed stays
    /// correct after `merge_delta` compacts the deleted rows away.
    pub fn deleted_between(&self, ts: u64, now: u64) -> Result<Batch> {
        let start = self.tombstones.partition_point(|t| t.delete_ts <= ts);
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for t in &self.tombstones[start..] {
            // `insert_ts <= ts` keeps rows born inside the window out: those
            // cancel against the insert feed rather than retracting.
            if t.delete_ts <= now && t.insert_ts <= ts {
                rows.push(t.row.clone());
            }
        }
        Batch::from_rows(Arc::clone(&self.schema), &rows)
    }

    /// The table definition.
    pub fn def(&self) -> &Arc<TableDef> {
        &self.def
    }

    /// Rows in the delta fragment (merge diagnostics).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Rows in the main fragment.
    pub fn main_len(&self) -> usize {
        self.main_meta.len()
    }

    /// Completed delta merges.
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// Validates and appends rows at `ts`. Enforces arity, types (values
    /// must coerce into the column type), NOT NULL, and key uniqueness.
    pub fn insert(&mut self, rows: Vec<Vec<Value>>, ts: u64) -> Result<usize> {
        let uniques = self.def.unique_sets();
        for row in &rows {
            if row.len() != self.schema.len() {
                return Err(VdmError::Storage(format!(
                    "insert into {:?}: row has {} values, table has {} columns",
                    self.def.name,
                    row.len(),
                    self.schema.len()
                )));
            }
            for (i, f) in self.schema.fields().iter().enumerate() {
                if row[i].is_null() {
                    if !f.nullable {
                        return Err(VdmError::Storage(format!(
                            "insert into {:?}: column {:?} is NOT NULL",
                            self.def.name, f.name
                        )));
                    }
                    continue;
                }
                if let Some(t) = row[i].sql_type() {
                    if !f.ty.accepts(&t) {
                        return Err(VdmError::Storage(format!(
                            "insert into {:?}: column {:?} expects {}, got {}",
                            self.def.name, f.name, f.ty, t
                        )));
                    }
                }
            }
            for (ki, key_cols) in uniques.iter().enumerate() {
                let key: Vec<Value> = key_cols.iter().map(|&c| row[c].clone()).collect();
                if key.iter().any(|v| v.is_null()) {
                    continue; // SQL unique constraints ignore NULL keys.
                }
                if !self.key_index[ki].insert(key) {
                    return Err(VdmError::Storage(format!(
                        "insert into {:?}: duplicate key for unique constraint {ki}",
                        self.def.name
                    )));
                }
            }
        }
        let n = rows.len();
        for row in rows {
            self.delta.push(row);
            self.delta_meta.push(RowMeta { insert_ts: ts, delete_ts: u64::MAX });
        }
        if n > 0 {
            self.last_write_ts = self.last_write_ts.max(ts);
        }
        Ok(n)
    }

    /// Marks rows matching `pred` (still live just before `ts`) as deleted:
    /// they become invisible to snapshots at `ts` and later. Returns the
    /// number of rows deleted.
    pub fn delete_where(&mut self, pred: &dyn Fn(&[Value]) -> bool, ts: u64) -> usize {
        let mut deleted = 0;
        let uniques = self.def.unique_sets();
        // Main fragment.
        for i in 0..self.main_meta.len() {
            if self.main_meta[i].visible_at(ts.saturating_sub(1)) {
                let row: Vec<Value> = self.main.iter().map(|c| c.get(i)).collect();
                if pred(&row) {
                    self.main_meta[i].delete_ts = ts;
                    remove_keys(&mut self.key_index, &uniques, &row);
                    self.tombstones.push(Tombstone {
                        insert_ts: self.main_meta[i].insert_ts,
                        delete_ts: ts,
                        row,
                    });
                    deleted += 1;
                }
            }
        }
        // Delta fragment.
        for i in 0..self.delta.len() {
            if self.delta_meta[i].visible_at(ts.saturating_sub(1)) && pred(&self.delta[i]) {
                self.delta_meta[i].delete_ts = ts;
                remove_keys(&mut self.key_index, &uniques, &self.delta[i]);
                self.tombstones.push(Tombstone {
                    insert_ts: self.delta_meta[i].insert_ts,
                    delete_ts: ts,
                    row: self.delta[i].clone(),
                });
                deleted += 1;
            }
        }
        if deleted > 0 {
            self.last_write_ts = self.last_write_ts.max(ts);
            self.last_delete_ts = self.last_delete_ts.max(ts);
        }
        deleted
    }

    /// Materializes all rows visible at `ts` as a columnar batch.
    pub fn scan(&self, ts: u64) -> Result<Batch> {
        self.scan_limited(ts, usize::MAX)
    }

    /// Materializes at most `max_rows` visible rows — the early-termination
    /// path that makes pushed-down LIMITs O(k) instead of O(table).
    pub fn scan_limited(&self, ts: u64, max_rows: usize) -> Result<Batch> {
        self.account_scan(self.main_meta.len().min(max_rows));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (i, meta) in self.main_meta.iter().enumerate() {
            if rows.len() >= max_rows {
                break;
            }
            if meta.visible_at(ts) {
                rows.push(self.main.iter().map(|c| c.get(i)).collect());
            }
        }
        for (i, meta) in self.delta_meta.iter().enumerate() {
            if rows.len() >= max_rows {
                break;
            }
            if meta.visible_at(ts) {
                rows.push(self.delta[i].clone());
            }
        }
        Batch::from_rows(Arc::clone(&self.schema), &rows)
    }

    /// Number of fixed-size morsels covering the table's physical rows
    /// (main then delta). A parallel scan claims indices `0..morsel_count`
    /// and concatenating the morsel batches in index order reproduces the
    /// serial scan exactly.
    pub fn morsel_count(&self, morsel_rows: usize) -> usize {
        let total = self.main_meta.len() + self.delta.len();
        total.div_ceil(morsel_rows.max(1))
    }

    /// Physical row range `[morsel * morsel_rows, ..)` of main++delta,
    /// split into the main part and the delta part.
    fn morsel_bounds(&self, morsel: usize, morsel_rows: usize) -> (usize, usize, usize, usize) {
        let morsel_rows = morsel_rows.max(1);
        let start = morsel * morsel_rows;
        let end = start + morsel_rows;
        let main_len = self.main_meta.len();
        let m_start = start.min(main_len);
        let m_end = end.min(main_len);
        let d_start = start.saturating_sub(main_len).min(self.delta.len());
        let d_end = end.saturating_sub(main_len).min(self.delta.len());
        (m_start, m_end, d_start, d_end)
    }

    /// Materializes the rows of one morsel visible at `ts`.
    pub fn scan_morsel(&self, ts: u64, morsel: usize, morsel_rows: usize) -> Result<Batch> {
        let (m_start, m_end, d_start, d_end) = self.morsel_bounds(morsel, morsel_rows);
        self.account_scan(m_end - m_start);
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for i in m_start..m_end {
            if self.main_meta[i].visible_at(ts) {
                rows.push(self.main.iter().map(|c| c.get(i)).collect());
            }
        }
        for i in d_start..d_end {
            if self.delta_meta[i].visible_at(ts) {
                rows.push(self.delta[i].clone());
            }
        }
        Batch::from_rows(Arc::clone(&self.schema), &rows)
    }

    /// Morsel scan with zone-map pruning on the main fragment. Callers must
    /// use a `morsel_rows` that is a multiple of [`ZONE_BLOCK_ROWS`] so each
    /// block falls entirely inside one morsel; the union over all morsels
    /// then matches [`TableStore::scan_pruned`] row for row, and skipped
    /// blocks are counted exactly once.
    pub fn scan_morsel_pruned(
        &self,
        ts: u64,
        morsel: usize,
        morsel_rows: usize,
        column: usize,
        range: &ScanRange,
    ) -> Result<Batch> {
        let (m_start, m_end, d_start, d_end) = self.morsel_bounds(morsel, morsel_rows);
        self.account_scan(m_end - m_start);
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut skipped = 0u64;
        if m_start < m_end {
            let first_block = m_start / ZONE_BLOCK_ROWS;
            let last_block = m_end.div_ceil(ZONE_BLOCK_ROWS);
            for block in first_block..last_block {
                let b_start = (block * ZONE_BLOCK_ROWS).max(m_start);
                let b_end = ((block + 1) * ZONE_BLOCK_ROWS).min(m_end);
                if !self.zone_maps.block_may_match(column, block, range) {
                    // Count a skip only from the morsel holding the block's
                    // head, so unaligned morsels never double-count.
                    if b_start == block * ZONE_BLOCK_ROWS {
                        skipped += 1;
                    }
                    continue;
                }
                for i in b_start..b_end {
                    if self.main_meta[i].visible_at(ts) {
                        rows.push(self.main.iter().map(|c| c.get(i)).collect());
                    }
                }
            }
        }
        // The delta is unindexed: its share of the morsel is always scanned.
        for i in d_start..d_end {
            if self.delta_meta[i].visible_at(ts) {
                rows.push(self.delta[i].clone());
            }
        }
        if skipped > 0 {
            *self.blocks_skipped.lock().unwrap() += skipped;
        }
        Batch::from_rows(Arc::clone(&self.schema), &rows)
    }

    /// Scans rows visible at `ts` whose `column` value may fall in `range`,
    /// skipping main-fragment blocks whose zone map excludes the range.
    /// Callers re-apply the full predicate — pruning is a superset filter.
    pub fn scan_pruned(&self, ts: u64, column: usize, range: &ScanRange) -> Result<Batch> {
        self.account_scan(self.main_meta.len());
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut skipped = 0u64;
        let n_blocks = self.main_meta.len().div_ceil(ZONE_BLOCK_ROWS);
        for block in 0..n_blocks {
            if !self.zone_maps.block_may_match(column, block, range) {
                skipped += 1;
                continue;
            }
            let start = block * ZONE_BLOCK_ROWS;
            let end = (start + ZONE_BLOCK_ROWS).min(self.main_meta.len());
            for i in start..end {
                if self.main_meta[i].visible_at(ts) {
                    rows.push(self.main.iter().map(|c| c.get(i)).collect());
                }
            }
        }
        // The delta is unindexed: always scanned.
        for (i, meta) in self.delta_meta.iter().enumerate() {
            if meta.visible_at(ts) {
                rows.push(self.delta[i].clone());
            }
        }
        *self.blocks_skipped.lock().unwrap() += skipped;
        Batch::from_rows(Arc::clone(&self.schema), &rows)
    }

    /// Total main-fragment blocks skipped by zone-map pruning so far.
    pub fn blocks_skipped(&self) -> u64 {
        *self.blocks_skipped.lock().unwrap()
    }

    /// Whole-main-fragment `(min, max)` of every column, from zone maps.
    /// Excludes unmerged delta rows — good enough for estimation, and the
    /// maps only exist after a delta merge anyway.
    pub fn column_ranges(&self) -> Vec<Option<(Value, Value)>> {
        (0..self.schema.len()).map(|c| self.zone_maps.column_range(c)).collect()
    }

    /// Total live rows at `ts`.
    pub fn row_count(&self, ts: u64) -> usize {
        self.main_meta.iter().filter(|m| m.visible_at(ts)).count()
            + self.delta_meta.iter().filter(|m| m.visible_at(ts)).count()
    }

    /// Folds the delta into the main fragment, dropping rows already
    /// deleted before every possible reader (compaction at `ts`: row
    /// versions with `delete_ts <= ts` vanish; others keep their stamps).
    pub fn merge_delta(&mut self, ts: u64) -> Result<()> {
        // Gather surviving (row, meta) pairs from both fragments.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut meta: Vec<RowMeta> = Vec::new();
        for (i, m) in self.main_meta.iter().enumerate() {
            if m.delete_ts > ts {
                rows.push(self.main.iter().map(|c| c.get(i)).collect());
                meta.push(*m);
            }
        }
        for (i, m) in self.delta_meta.iter().enumerate() {
            if m.delete_ts > ts {
                rows.push(std::mem::take(&mut self.delta[i]));
                meta.push(*m);
            }
        }
        // Rebuild main columns (re-encoding string dictionaries).
        let mut columns = Vec::with_capacity(self.schema.len());
        for (i, f) in self.schema.fields().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[i].clone()).collect();
            columns.push(Column::from_values(f.ty, &vals)?);
        }
        self.zone_maps = ZoneMaps::build(&columns);
        self.main = columns;
        self.main_meta = meta;
        self.delta.clear();
        self.delta_meta.clear();
        self.merges += 1;
        Ok(())
    }
}

fn remove_keys(index: &mut [HashSet<Vec<Value>>], uniques: &[Vec<usize>], row: &[Value]) {
    for (ki, key_cols) in uniques.iter().enumerate() {
        let key: Vec<Value> = key_cols.iter().map(|&c| row[c].clone()).collect();
        if !key.iter().any(|v| v.is_null()) {
            index[ki].remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn store() -> TableStore {
        TableStore::new(Arc::new(
            TableBuilder::new("t")
                .column("k", SqlType::Int, false)
                .column("v", SqlType::Text, true)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        ))
    }

    fn row(k: i64, v: &str) -> Vec<Value> {
        vec![Value::Int(k), Value::str(v)]
    }

    #[test]
    fn insert_scan_round_trip() {
        let mut s = store();
        s.insert(vec![row(1, "a"), row(2, "b")], 1).unwrap();
        let b = s.scan(1).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(0), row(1, "a"));
    }

    #[test]
    fn snapshot_isolation() {
        let mut s = store();
        s.insert(vec![row(1, "a")], 1).unwrap();
        s.insert(vec![row(2, "b")], 5).unwrap();
        assert_eq!(s.scan(1).unwrap().num_rows(), 1, "older snapshot misses later insert");
        assert_eq!(s.scan(5).unwrap().num_rows(), 2);
        assert_eq!(s.row_count(0), 0);
    }

    #[test]
    fn delete_respects_snapshots() {
        let mut s = store();
        s.insert(vec![row(1, "a"), row(2, "b")], 1).unwrap();
        let n = s.delete_where(&|r| r[0] == Value::Int(1), 3);
        assert_eq!(n, 1);
        assert_eq!(s.scan(3).unwrap().num_rows(), 1, "invisible from ts 3 onward");
        assert_eq!(s.scan(4).unwrap().num_rows(), 1);
        assert_eq!(s.scan(2).unwrap().num_rows(), 2, "old snapshot still sees the row");
    }

    #[test]
    fn constraints_enforced() {
        let mut s = store();
        s.insert(vec![row(1, "a")], 1).unwrap();
        assert!(s.insert(vec![row(1, "dup")], 2).is_err(), "duplicate PK");
        assert!(s.insert(vec![vec![Value::Null, Value::str("x")]], 2).is_err(), "NOT NULL");
        assert!(s.insert(vec![vec![Value::str("bad"), Value::Null]], 2).is_err(), "type");
        assert!(s.insert(vec![vec![Value::Int(3)]], 2).is_err(), "arity");
        // Deleting frees the key for re-insert.
        s.delete_where(&|r| r[0] == Value::Int(1), 3);
        s.insert(vec![row(1, "again")], 4).unwrap();
    }

    #[test]
    fn merge_delta_moves_rows_to_main() {
        let mut s = store();
        s.insert(vec![row(1, "a"), row(2, "b")], 1).unwrap();
        assert_eq!(s.delta_len(), 2);
        assert_eq!(s.main_len(), 0);
        s.merge_delta(1).unwrap();
        assert_eq!(s.delta_len(), 0);
        assert_eq!(s.main_len(), 2);
        assert_eq!(s.merge_count(), 1);
        let b = s.scan(1).unwrap();
        assert_eq!(b.num_rows(), 2);
        // Writes after a merge land in the delta again.
        s.insert(vec![row(3, "c")], 2).unwrap();
        assert_eq!(s.delta_len(), 1);
        assert_eq!(s.scan(2).unwrap().num_rows(), 3);
    }

    #[test]
    fn morsel_scan_union_equals_serial_scan() {
        let mut s = store();
        // 10 rows in main, 5 in delta, one deleted in each fragment.
        s.insert((0..10).map(|i| row(i, "m")).collect(), 1).unwrap();
        s.merge_delta(1).unwrap();
        s.insert((10..15).map(|i| row(i, "d")).collect(), 2).unwrap();
        s.delete_where(&|r| r[0] == Value::Int(3), 3);
        s.delete_where(&|r| r[0] == Value::Int(12), 3);
        for morsel_rows in [1, 3, 4, 7, 100] {
            let n = s.morsel_count(morsel_rows);
            assert_eq!(n, 15usize.div_ceil(morsel_rows));
            let mut rows = Vec::new();
            for m in 0..n {
                rows.extend(s.scan_morsel(3, m, morsel_rows).unwrap().to_rows());
            }
            assert_eq!(rows, s.scan(3).unwrap().to_rows(), "morsel_rows={morsel_rows}");
        }
        // Out-of-range morsels are empty, not errors.
        assert_eq!(s.scan_morsel(3, 99, 4).unwrap().num_rows(), 0);
    }

    #[test]
    fn morsel_pruned_scan_matches_serial_pruned_scan() {
        let mut s = TableStore::new(Arc::new(
            TableBuilder::new("t")
                .column("k", SqlType::Int, false)
                .column("v", SqlType::Int, true)
                .primary_key(&["k"])
                .build()
                .unwrap(),
        ));
        let n = 3 * ZONE_BLOCK_ROWS + 17;
        s.insert((0..n as i64).map(|i| vec![Value::Int(i), Value::Int(i % 7)]).collect(), 1)
            .unwrap();
        s.merge_delta(1).unwrap();
        s.insert((n as i64..n as i64 + 5).map(|i| vec![Value::Int(i), Value::Int(0)]).collect(), 2)
            .unwrap();
        let range = ScanRange::at_least(Value::Int(2 * ZONE_BLOCK_ROWS as i64));
        let serial = s.scan_pruned(2, 0, &range).unwrap().to_rows();
        let skipped_serial = s.blocks_skipped();
        assert!(skipped_serial > 0, "pruning must fire for the test to mean anything");
        let morsel_rows = 2 * ZONE_BLOCK_ROWS;
        let mut rows = Vec::new();
        for m in 0..s.morsel_count(morsel_rows) {
            rows.extend(s.scan_morsel_pruned(2, m, morsel_rows, 0, &range).unwrap().to_rows());
        }
        assert_eq!(rows, serial);
        assert_eq!(s.blocks_skipped(), 2 * skipped_serial, "same blocks skipped once each");
    }

    #[test]
    fn delta_feeds_pair_up() {
        let mut s = store();
        s.insert(vec![row(1, "a"), row(2, "b"), row(3, "c")], 1).unwrap();
        // Window (1, 4]: row 4 inserted, row 2 deleted, row 5 born+killed.
        s.insert(vec![row(4, "d")], 2).unwrap();
        s.delete_where(&|r| r[0] == Value::Int(2), 3);
        s.insert(vec![row(5, "e")], 3).unwrap();
        s.delete_where(&|r| r[0] == Value::Int(5), 4);
        let ins = s.inserted_between(1, 4).unwrap();
        assert_eq!(ins.to_rows(), vec![row(4, "d")], "intra-window birth+death cancels");
        let del = s.deleted_between(1, 4).unwrap();
        assert_eq!(del.to_rows(), vec![row(2, "b")]);
        // A window that predates the delete sees nothing retracted.
        assert_eq!(s.deleted_between(3, 3).unwrap().num_rows(), 0);
        // A window starting after the delete: the tombstone is out of range.
        assert_eq!(s.deleted_between(4, 4).unwrap().num_rows(), 0);
    }

    #[test]
    fn deleted_between_survives_merge_compaction() {
        let mut s = store();
        s.insert(vec![row(1, "a"), row(2, "b")], 1).unwrap();
        s.delete_where(&|r| r[0] == Value::Int(1), 2);
        // Compaction at ts 5 drops the deleted row version entirely...
        s.merge_delta(5).unwrap();
        assert_eq!(s.main_len(), 1);
        // ...but a maintainer whose snapshot predates the delete still gets
        // the retraction from the tombstone log.
        assert_eq!(s.deleted_between(1, 5).unwrap().to_rows(), vec![row(1, "a")]);
    }

    #[test]
    fn merge_drops_fully_deleted_rows() {
        let mut s = store();
        s.insert(vec![row(1, "a"), row(2, "b")], 1).unwrap();
        s.delete_where(&|r| r[0] == Value::Int(1), 2);
        s.merge_delta(5).unwrap();
        assert_eq!(s.main_len(), 1, "deleted row compacted away");
        assert_eq!(s.scan(5).unwrap().num_rows(), 1);
    }
}
