//! In-memory columnar storage engine.
//!
//! A deliberately HANA-shaped substrate (§2.2 of the paper):
//!
//! * every table has a **write-optimized delta** (row-wise append vector)
//!   and a **read-optimized main** (typed columns, dictionary-encoded
//!   strings);
//! * a **delta merge** folds the delta into the main fragment;
//! * rows carry `(insert_ts, delete_ts)` stamps; readers operate against a
//!   [`Snapshot`] so analytical scans see a consistent state while
//!   transactional writes continue (MVCC-lite — single-statement
//!   auto-commit transactions, which is all the workloads here need);
//! * primary-key and unique constraints are enforced on insert, because the
//!   optimizer's uniqueness derivations must be *true* of the data the
//!   benchmarks run on.

pub mod column;
pub mod engine;
pub mod nse;
pub mod store;
pub mod zonemap;

pub use column::{Batch, Column, ColumnData};
pub use engine::{Snapshot, StorageEngine};
pub use nse::{LoadMode, PageStats};
pub use store::TableStore;
pub use zonemap::ScanRange;
