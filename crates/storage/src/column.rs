//! Typed columns and batches — the unit of data exchange between storage
//! and the executor.

use std::sync::Arc;
use vdm_types::{Decimal, Result, Schema, SqlType, Value, VdmError};

/// Dictionary-encoded string column: `codes[i]` indexes into the
/// deduplicated `dict` (entries appear in first-seen order, not sorted —
/// see [`StrColumn::from_values`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StrColumn {
    pub dict: Vec<Arc<str>>,
    pub codes: Vec<u32>,
}

impl StrColumn {
    /// Builds from raw values (dictionary deduplicated in first-seen order;
    /// NULL slots receive code 0 and are masked by the column validity).
    pub fn from_values(values: &[Option<Arc<str>>]) -> StrColumn {
        let mut dict: Vec<Arc<str>> = Vec::new();
        let mut code_of: std::collections::HashMap<Arc<str>, u32> =
            std::collections::HashMap::new();
        let codes = values
            .iter()
            .map(|v| match v {
                Some(s) => match code_of.get(s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(Arc::clone(s));
                        code_of.insert(Arc::clone(s), c);
                        c
                    }
                },
                None => 0,
            })
            .collect();
        StrColumn { dict, codes }
    }

    /// Value at `i` (validity handled by the owning [`Column`]).
    pub fn get(&self, i: usize) -> Arc<str> {
        Arc::clone(&self.dict[self.codes[i] as usize])
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct values stored — compression diagnostics.
    pub fn dict_size(&self) -> usize {
        self.dict.len()
    }
}

/// Physical column payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    /// Fixed-point decimals normalized to one scale.
    Dec {
        units: Vec<i128>,
        scale: u8,
    },
    Bool(Vec<bool>),
    Date(Vec<i32>),
    Str(StrColumn),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Dec { units, .. } => units.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str(s) => s.len(),
        }
    }

    /// A zero-row payload of the same type (string columns get an empty
    /// dictionary rather than a clone of this one's).
    fn empty_like(&self) -> ColumnData {
        match self {
            ColumnData::Int(_) => ColumnData::Int(Vec::new()),
            ColumnData::Dec { scale, .. } => ColumnData::Dec { units: Vec::new(), scale: *scale },
            ColumnData::Bool(_) => ColumnData::Bool(Vec::new()),
            ColumnData::Date(_) => ColumnData::Date(Vec::new()),
            ColumnData::Str(_) => {
                ColumnData::Str(StrColumn { dict: Vec::new(), codes: Vec::new() })
            }
        }
    }
}

/// A typed column with an optional validity mask (absent = all valid).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Builds a column of `ty` from row values, normalizing decimal scales
    /// and validating types. NULLs are allowed regardless of schema
    /// nullability here — nullability enforcement is the store's job.
    pub fn from_values(ty: SqlType, values: &[Value]) -> Result<Column> {
        let mut validity: Vec<bool> = Vec::with_capacity(values.len());
        let mut any_null = false;
        for v in values {
            let valid = !v.is_null();
            any_null |= !valid;
            validity.push(valid);
        }
        let data = match ty {
            SqlType::Int => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => 0,
                        Value::Int(i) => *i,
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Int(out)
            }
            SqlType::Decimal { scale } => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => 0,
                        Value::Dec(d) => d.rescale(scale)?.units(),
                        Value::Int(i) => Decimal::from_int(*i).rescale(scale)?.units(),
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Dec { units: out, scale }
            }
            SqlType::Bool => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => false,
                        Value::Bool(b) => *b,
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Bool(out)
            }
            SqlType::Date => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => 0,
                        Value::Date(d) => *d,
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Date(out)
            }
            SqlType::Text => {
                let mut out: Vec<Option<Arc<str>>> = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Str(s) => Some(Arc::clone(s)),
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Str(StrColumn::from_values(&out))
            }
        };
        Ok(Column { data, validity: if any_null { Some(validity) } else { None } })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[i])
    }

    /// Value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Dec { units, scale } => Value::Dec(Decimal::from_units(units[i], *scale)),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Str(s) => Value::Str(s.get(i)),
        }
    }

    /// Concatenates columns of one type without a row-wise detour:
    /// fixed-width payloads append directly, string dictionaries merge
    /// with code remapping. Requires at least one part.
    pub fn concat(parts: &[&Column]) -> Result<Column> {
        let Some(first) = parts.first() else {
            return Err(VdmError::Exec("Column::concat needs at least one part".into()));
        };
        let total: usize = parts.iter().map(|c| c.len()).sum();
        let mut any_null = false;
        let mut validity: Vec<bool> = Vec::with_capacity(total);
        for p in parts {
            match &p.validity {
                Some(v) => {
                    any_null |= v.iter().any(|b| !b);
                    validity.extend_from_slice(v);
                }
                None => validity.extend(std::iter::repeat_n(true, p.len())),
            }
        }
        let mismatch = || VdmError::Exec("Column::concat parts disagree in type".into());
        let data = match &first.data {
            ColumnData::Int(_) => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    match &p.data {
                        ColumnData::Int(v) => out.extend_from_slice(v),
                        _ => return Err(mismatch()),
                    }
                }
                ColumnData::Int(out)
            }
            ColumnData::Dec { scale, .. } => {
                let scale = *scale;
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    match &p.data {
                        ColumnData::Dec { units, scale: s } if *s == scale => {
                            out.extend_from_slice(units);
                        }
                        _ => return Err(mismatch()),
                    }
                }
                ColumnData::Dec { units: out, scale }
            }
            ColumnData::Bool(_) => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    match &p.data {
                        ColumnData::Bool(v) => out.extend_from_slice(v),
                        _ => return Err(mismatch()),
                    }
                }
                ColumnData::Bool(out)
            }
            ColumnData::Date(_) => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    match &p.data {
                        ColumnData::Date(v) => out.extend_from_slice(v),
                        _ => return Err(mismatch()),
                    }
                }
                ColumnData::Date(out)
            }
            ColumnData::Str(_) => {
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut code_of: std::collections::HashMap<Arc<str>, u32> =
                    std::collections::HashMap::new();
                let mut codes: Vec<u32> = Vec::with_capacity(total);
                for p in parts {
                    let s = match &p.data {
                        ColumnData::Str(s) => s,
                        _ => return Err(mismatch()),
                    };
                    let remap: Vec<u32> = s
                        .dict
                        .iter()
                        .map(|d| {
                            *code_of.entry(Arc::clone(d)).or_insert_with(|| {
                                dict.push(Arc::clone(d));
                                (dict.len() - 1) as u32
                            })
                        })
                        .collect();
                    // NULL slots carry code 0 even over an empty dictionary;
                    // validity masks whatever the remap lands them on.
                    codes.extend(
                        s.codes.iter().map(|&c| remap.get(c as usize).copied().unwrap_or(0)),
                    );
                }
                ColumnData::Str(StrColumn { dict, codes })
            }
        };
        Ok(Column { data, validity: if any_null { Some(validity) } else { None } })
    }

    /// The column's storage type.
    pub fn sql_type(&self) -> SqlType {
        match &self.data {
            ColumnData::Int(_) => SqlType::Int,
            ColumnData::Dec { scale, .. } => SqlType::Decimal { scale: *scale },
            ColumnData::Bool(_) => SqlType::Bool,
            ColumnData::Date(_) => SqlType::Date,
            ColumnData::Str(_) => SqlType::Text,
        }
    }

    /// New column containing rows at `indices` in order.
    pub fn take(&self, indices: &[usize]) -> Column {
        let values: Vec<Value> = indices.iter().map(|&i| self.get(i)).collect();
        Column::from_values(self.sql_type(), &values).expect("take preserves types")
    }

    /// Payload-level gather: `out[j] = self[indices[j]]` without value
    /// materialization — fixed-width payloads copy directly and string
    /// dictionaries are shared, not re-interned.
    pub fn gather(&self, indices: &[usize]) -> Column {
        // All-false selection vectors are common under selective filters:
        // return a truly empty column instead of cloning the dictionary.
        if indices.is_empty() {
            return Column { data: self.data.empty_like(), validity: None };
        }
        let validity =
            self.validity.as_ref().map(|v| indices.iter().map(|&i| v[i]).collect::<Vec<bool>>());
        let any_null = validity.as_ref().is_some_and(|v| v.iter().any(|b| !b));
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Dec { units, scale } => ColumnData::Dec {
                units: indices.iter().map(|&i| units[i]).collect(),
                scale: *scale,
            },
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Date(v) => ColumnData::Date(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(s) => ColumnData::Str(StrColumn {
                dict: s.dict.clone(),
                codes: indices.iter().map(|&i| s.codes[i]).collect(),
            }),
        };
        Column { data, validity: if any_null { validity } else { None } }
    }

    /// Gather with NULL padding: `None` slots become NULL rows (the
    /// outer-join no-match case).
    pub fn gather_opt(&self, indices: &[Option<usize>]) -> Column {
        if indices.is_empty() {
            return Column { data: self.data.empty_like(), validity: None };
        }
        let mut any_null = false;
        let validity: Vec<bool> = indices
            .iter()
            .map(|ix| {
                let valid = ix.is_some_and(|i| !self.is_null(i));
                any_null |= !valid;
                valid
            })
            .collect();
        let data = match &self.data {
            ColumnData::Int(v) => {
                ColumnData::Int(indices.iter().map(|ix| ix.map_or(0, |i| v[i])).collect())
            }
            ColumnData::Dec { units, scale } => ColumnData::Dec {
                units: indices.iter().map(|ix| ix.map_or(0, |i| units[i])).collect(),
                scale: *scale,
            },
            ColumnData::Bool(v) => {
                ColumnData::Bool(indices.iter().map(|ix| ix.is_some_and(|i| v[i])).collect())
            }
            ColumnData::Date(v) => {
                ColumnData::Date(indices.iter().map(|ix| ix.map_or(0, |i| v[i])).collect())
            }
            ColumnData::Str(s) => ColumnData::Str(StrColumn {
                dict: s.dict.clone(),
                codes: indices.iter().map(|ix| ix.map_or(0, |i| s.codes[i])).collect(),
            }),
        };
        Column { data, validity: if any_null { Some(validity) } else { None } }
    }
}

fn type_err(ty: SqlType, v: &Value) -> VdmError {
    VdmError::Type(format!("column of type {ty} cannot store {v}"))
}

/// A set of equal-length columns plus the schema describing them.
#[derive(Debug, Clone)]
pub struct Batch {
    pub schema: Arc<Schema>,
    pub columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// Builds a batch, validating column count and lengths.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Batch> {
        if columns.len() != schema.len() {
            return Err(VdmError::Exec(format!(
                "batch has {} columns, schema {}",
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(VdmError::Exec("batch columns disagree in length".into()));
        }
        Ok(Batch { schema, columns, rows })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::from_values(f.ty, &[]).expect("empty column"))
            .collect();
        Batch { schema, columns, rows: 0 }
    }

    /// Builds a batch from row-major values.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Value>]) -> Result<Batch> {
        let mut cols = Vec::with_capacity(schema.len());
        for (i, f) in schema.fields().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[i].clone()).collect();
            cols.push(Column::from_values(f.ty, &vals)?);
        }
        Batch::new(schema, cols)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// All rows, row-major (tests and small results only).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Concatenates batches column-wise under `schema` — the UNION ALL and
    /// morsel-merge fast path (no row materialization for parts already in
    /// the schema's types). A part column stored under a narrower unified
    /// type (e.g. `INT` under a `DECIMAL` union field) is widened first.
    pub fn concat(schema: Arc<Schema>, parts: &[Batch]) -> Result<Batch> {
        if parts.is_empty() {
            return Ok(Batch::empty(schema));
        }
        if parts.iter().any(|b| b.columns.len() != schema.len()) {
            return Err(VdmError::Exec("Batch::concat parts disagree with schema".into()));
        }
        let mut columns = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            let ty = schema.field(i).ty;
            let widened: Vec<Option<Column>> = parts
                .iter()
                .map(|b| {
                    let c = &b.columns[i];
                    if c.sql_type() == ty {
                        return Ok(None);
                    }
                    let values: Vec<Value> = (0..c.len()).map(|r| c.get(r)).collect();
                    Column::from_values(ty, &values).map(Some)
                })
                .collect::<Result<_>>()?;
            let cols: Vec<&Column> = parts
                .iter()
                .zip(&widened)
                .map(|(b, w)| w.as_ref().unwrap_or(&b.columns[i]))
                .collect();
            columns.push(Column::concat(&cols)?);
        }
        Batch::new(schema, columns)
    }

    /// New batch containing rows at `indices` in order.
    pub fn take(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Row gather at the column-payload level (see [`Column::gather`]).
    pub fn gather(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            rows: indices.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::Field;

    #[test]
    fn int_column_round_trip() {
        let c = Column::from_values(SqlType::Int, &[Value::Int(1), Value::Null, Value::Int(3)])
            .unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.is_null(1));
        assert_eq!(c.get(2), Value::Int(3));
    }

    #[test]
    fn decimal_column_normalizes_scale() {
        let c = Column::from_values(
            SqlType::Decimal { scale: 2 },
            &[Value::Dec("1.5".parse().unwrap()), Value::Int(2)],
        )
        .unwrap();
        assert_eq!(c.get(0), Value::Dec("1.50".parse().unwrap()));
        assert_eq!(c.get(1), Value::Dec("2.00".parse().unwrap()));
    }

    #[test]
    fn string_dictionary_compresses() {
        let vals: Vec<Value> =
            (0..100).map(|i| Value::str(if i % 2 == 0 { "DE" } else { "FR" })).collect();
        let c = Column::from_values(SqlType::Text, &vals).unwrap();
        match c.data() {
            ColumnData::Str(s) => assert_eq!(s.dict_size(), 2),
            _ => panic!("expected string column"),
        }
        assert_eq!(c.get(0), Value::str("DE"));
        assert_eq!(c.get(1), Value::str("FR"));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(Column::from_values(SqlType::Int, &[Value::str("x")]).is_err());
        assert!(Column::from_values(SqlType::Text, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn batch_validation_and_rows() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", SqlType::Int, false),
            Field::new("name", SqlType::Text, true),
        ]));
        let rows = vec![vec![Value::Int(1), Value::str("a")], vec![Value::Int(2), Value::Null]];
        let b = Batch::from_rows(Arc::clone(&schema), &rows).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.to_rows(), rows);
        let taken = b.take(&[1]);
        assert_eq!(taken.num_rows(), 1);
        assert_eq!(taken.row(0), rows[1]);
        // Column count mismatch.
        assert!(Batch::new(schema, vec![]).is_err());
    }

    #[test]
    fn concat_merges_dictionaries_and_validity() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", SqlType::Int, false),
            Field::new("name", SqlType::Text, true),
            Field::new("amt", SqlType::Decimal { scale: 2 }, true),
        ]));
        let a = Batch::from_rows(
            Arc::clone(&schema),
            &[
                vec![Value::Int(1), Value::str("DE"), Value::Dec("1.50".parse().unwrap())],
                vec![Value::Int(2), Value::Null, Value::Null],
            ],
        )
        .unwrap();
        let b = Batch::from_rows(
            Arc::clone(&schema),
            &[vec![Value::Int(3), Value::str("FR"), Value::Dec("2.25".parse().unwrap())]],
        )
        .unwrap();
        let empty = Batch::empty(Arc::clone(&schema));
        let got = Batch::concat(Arc::clone(&schema), &[a.clone(), empty, b.clone()]).unwrap();
        assert_eq!(got.num_rows(), 3);
        let mut want = a.to_rows();
        want.extend(b.to_rows());
        assert_eq!(got.to_rows(), want);
        // Dictionary is merged, not duplicated per part.
        match got.columns[1].data() {
            ColumnData::Str(s) => assert_eq!(s.dict_size(), 2),
            _ => panic!("expected string column"),
        }
        // Zero parts yields an empty batch of the schema.
        assert_eq!(Batch::concat(schema, &[]).unwrap().num_rows(), 0);
    }

    #[test]
    fn concat_shared_dictionary_values_keep_one_code() {
        let vals = |names: &[&str]| names.iter().map(Value::str).collect::<Vec<_>>();
        let a = Column::from_values(SqlType::Text, &vals(&["x", "y"])).unwrap();
        let b = Column::from_values(SqlType::Text, &vals(&["y", "z", "x"])).unwrap();
        let c = Column::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 5);
        match c.data() {
            ColumnData::Str(s) => assert_eq!(s.dict_size(), 3),
            _ => panic!("expected string column"),
        }
        let got: Vec<Value> = (0..5).map(|i| c.get(i)).collect();
        assert_eq!(got, vals(&["x", "y", "y", "z", "x"]));
    }

    #[test]
    fn concat_widens_int_parts_to_decimal_schema() {
        let int_schema = Arc::new(Schema::new(vec![Field::new("v", SqlType::Int, false)]));
        let dec_schema =
            Arc::new(Schema::new(vec![Field::new("v", SqlType::Decimal { scale: 2 }, false)]));
        let ints = Batch::from_rows(int_schema, &[vec![Value::Int(7)]]).unwrap();
        let decs =
            Batch::from_rows(Arc::clone(&dec_schema), &[vec![Value::Dec("1.25".parse().unwrap())]])
                .unwrap();
        let got = Batch::concat(dec_schema, &[ints, decs]).unwrap();
        let vals: Vec<String> = got.to_rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(vals, vec!["7.00".to_string(), "1.25".to_string()]);
    }

    #[test]
    fn concat_rejects_type_mismatch() {
        let a = Column::from_values(SqlType::Int, &[Value::Int(1)]).unwrap();
        let b = Column::from_values(SqlType::Bool, &[Value::Bool(true)]).unwrap();
        assert!(Column::concat(&[&a, &b]).is_err());
        assert!(Column::concat(&[]).is_err());
    }

    #[test]
    fn gather_agrees_with_take() {
        for ty in [SqlType::Int, SqlType::Text, SqlType::Decimal { scale: 2 }] {
            let vals: Vec<Value> = (0..6)
                .map(|i| match (i % 3, ty) {
                    (2, _) => Value::Null,
                    (_, SqlType::Int) => Value::Int(i),
                    (_, SqlType::Text) => Value::str(format!("v{i}")),
                    _ => Value::Dec(Decimal::from_units(i as i128 * 10, 2)),
                })
                .collect();
            let c = Column::from_values(ty, &vals).unwrap();
            let idx = [5usize, 0, 2, 2, 4];
            let fast = c.gather(&idx);
            let slow = c.take(&idx);
            for j in 0..idx.len() {
                assert_eq!(fast.get(j), slow.get(j), "{ty} row {j}");
            }
        }
    }

    #[test]
    fn gather_opt_pads_none_with_nulls() {
        let c = Column::from_values(SqlType::Text, &[Value::str("a"), Value::Null]).unwrap();
        let g = c.gather_opt(&[Some(0), None, Some(1), Some(0)]);
        assert_eq!(g.get(0), Value::str("a"));
        assert_eq!(g.get(1), Value::Null);
        assert_eq!(g.get(2), Value::Null);
        assert_eq!(g.get(3), Value::str("a"));
        // All-valid gather over a null-free column drops the validity mask.
        let dense = Column::from_values(SqlType::Int, &[Value::Int(1), Value::Int(2)]).unwrap();
        let g = dense.gather_opt(&[Some(1), Some(0)]);
        assert!(!g.is_null(0) && !g.is_null(1));
        assert_eq!(g.get(0), Value::Int(2));
    }

    #[test]
    fn empty_gather_drops_the_dictionary() {
        // The all-false-selection case: no rows kept, so no dictionary
        // clone and no validity mask should survive.
        let c = Column::from_values(SqlType::Text, &[Value::str("a"), Value::Null]).unwrap();
        let g = c.gather(&[]);
        assert_eq!(g.len(), 0);
        assert_eq!(g.sql_type(), SqlType::Text);
        match g.data() {
            ColumnData::Str(s) => assert!(s.dict.is_empty(), "dict must not be cloned"),
            other => panic!("expected Str, got {other:?}"),
        }
        let g = c.gather_opt(&[]);
        assert_eq!(g.len(), 0);
        // Decimal scale survives an empty gather.
        let d = Column::from_values(SqlType::Decimal { scale: 2 }, &[Value::Null]).unwrap();
        assert_eq!(d.gather(&[]).sql_type(), SqlType::Decimal { scale: 2 });
    }

    #[test]
    fn concat_accepts_empty_gathered_parts() {
        // Batches flowing out of all-false filter morsels concatenate with
        // non-empty ones: empty-dictionary parts must merge cleanly.
        let c = Column::from_values(SqlType::Text, &[Value::str("a"), Value::str("b")]).unwrap();
        let empty = c.gather(&[]);
        let merged = Column::concat(&[&empty, &c, &empty]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.get(0), Value::str("a"));
        assert_eq!(merged.get(1), Value::str("b"));
        let all_empty = Column::concat(&[&empty, &empty]).unwrap();
        assert_eq!(all_empty.len(), 0);
    }

    #[test]
    fn single_row_gather_roundtrips() {
        let c = Column::from_values(SqlType::Int, &[Value::Int(7)]).unwrap();
        let g = c.gather(&[0]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(0), Value::Int(7));
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_values(SqlType::Int, &[Value::Int(1), Value::Null]).unwrap();
        let t = c.take(&[1, 0, 1]);
        assert_eq!(t.get(0), Value::Null);
        assert_eq!(t.get(1), Value::Int(1));
        assert_eq!(t.get(2), Value::Null);
    }
}
