//! Typed columns and batches — the unit of data exchange between storage
//! and the executor.

use std::sync::Arc;
use vdm_types::{Decimal, Result, Schema, SqlType, Value, VdmError};

/// Dictionary-encoded string column: `codes[i]` indexes into the sorted,
/// deduplicated `dict`.
#[derive(Debug, Clone, PartialEq)]
pub struct StrColumn {
    pub dict: Vec<Arc<str>>,
    pub codes: Vec<u32>,
}

impl StrColumn {
    /// Builds from raw values (dictionary deduplicated in first-seen order;
    /// NULL slots receive code 0 and are masked by the column validity).
    pub fn from_values(values: &[Option<Arc<str>>]) -> StrColumn {
        let mut dict: Vec<Arc<str>> = Vec::new();
        let mut code_of: std::collections::HashMap<Arc<str>, u32> = std::collections::HashMap::new();
        let codes = values
            .iter()
            .map(|v| match v {
                Some(s) => match code_of.get(s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(Arc::clone(s));
                        code_of.insert(Arc::clone(s), c);
                        c
                    }
                },
                None => 0,
            })
            .collect();
        StrColumn { dict, codes }
    }

    /// Value at `i` (validity handled by the owning [`Column`]).
    pub fn get(&self, i: usize) -> Arc<str> {
        Arc::clone(&self.dict[self.codes[i] as usize])
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct values stored — compression diagnostics.
    pub fn dict_size(&self) -> usize {
        self.dict.len()
    }
}

/// Physical column payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    /// Fixed-point decimals normalized to one scale.
    Dec { units: Vec<i128>, scale: u8 },
    Bool(Vec<bool>),
    Date(Vec<i32>),
    Str(StrColumn),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Dec { units, .. } => units.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str(s) => s.len(),
        }
    }
}

/// A typed column with an optional validity mask (absent = all valid).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Builds a column of `ty` from row values, normalizing decimal scales
    /// and validating types. NULLs are allowed regardless of schema
    /// nullability here — nullability enforcement is the store's job.
    pub fn from_values(ty: SqlType, values: &[Value]) -> Result<Column> {
        let mut validity: Vec<bool> = Vec::with_capacity(values.len());
        let mut any_null = false;
        for v in values {
            let valid = !v.is_null();
            any_null |= !valid;
            validity.push(valid);
        }
        let data = match ty {
            SqlType::Int => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => 0,
                        Value::Int(i) => *i,
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Int(out)
            }
            SqlType::Decimal { scale } => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => 0,
                        Value::Dec(d) => d.rescale(scale)?.units(),
                        Value::Int(i) => Decimal::from_int(*i).rescale(scale)?.units(),
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Dec { units: out, scale }
            }
            SqlType::Bool => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => false,
                        Value::Bool(b) => *b,
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Bool(out)
            }
            SqlType::Date => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => 0,
                        Value::Date(d) => *d,
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Date(out)
            }
            SqlType::Text => {
                let mut out: Vec<Option<Arc<str>>> = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Str(s) => Some(Arc::clone(s)),
                        other => return Err(type_err(ty, other)),
                    });
                }
                ColumnData::Str(StrColumn::from_values(&out))
            }
        };
        Ok(Column { data, validity: if any_null { Some(validity) } else { None } })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[i])
    }

    /// Value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Dec { units, scale } => Value::Dec(Decimal::from_units(units[i], *scale)),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Str(s) => Value::Str(s.get(i)),
        }
    }

    /// New column containing rows at `indices` in order.
    pub fn take(&self, indices: &[usize]) -> Column {
        let values: Vec<Value> = indices.iter().map(|&i| self.get(i)).collect();
        let ty = match &self.data {
            ColumnData::Int(_) => SqlType::Int,
            ColumnData::Dec { scale, .. } => SqlType::Decimal { scale: *scale },
            ColumnData::Bool(_) => SqlType::Bool,
            ColumnData::Date(_) => SqlType::Date,
            ColumnData::Str(_) => SqlType::Text,
        };
        Column::from_values(ty, &values).expect("take preserves types")
    }
}

fn type_err(ty: SqlType, v: &Value) -> VdmError {
    VdmError::Type(format!("column of type {ty} cannot store {v}"))
}

/// A set of equal-length columns plus the schema describing them.
#[derive(Debug, Clone)]
pub struct Batch {
    pub schema: Arc<Schema>,
    pub columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// Builds a batch, validating column count and lengths.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Batch> {
        if columns.len() != schema.len() {
            return Err(VdmError::Exec(format!(
                "batch has {} columns, schema {}",
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(VdmError::Exec("batch columns disagree in length".into()));
        }
        Ok(Batch { schema, columns, rows })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::from_values(f.ty, &[]).expect("empty column"))
            .collect();
        Batch { schema, columns, rows: 0 }
    }

    /// Builds a batch from row-major values.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Value>]) -> Result<Batch> {
        let mut cols = Vec::with_capacity(schema.len());
        for (i, f) in schema.fields().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[i].clone()).collect();
            cols.push(Column::from_values(f.ty, &vals)?);
        }
        Batch::new(schema, cols)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// All rows, row-major (tests and small results only).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// New batch containing rows at `indices` in order.
    pub fn take(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::Field;

    #[test]
    fn int_column_round_trip() {
        let c = Column::from_values(SqlType::Int, &[Value::Int(1), Value::Null, Value::Int(3)])
            .unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.is_null(1));
        assert_eq!(c.get(2), Value::Int(3));
    }

    #[test]
    fn decimal_column_normalizes_scale() {
        let c = Column::from_values(
            SqlType::Decimal { scale: 2 },
            &[Value::Dec("1.5".parse().unwrap()), Value::Int(2)],
        )
        .unwrap();
        assert_eq!(c.get(0), Value::Dec("1.50".parse().unwrap()));
        assert_eq!(c.get(1), Value::Dec("2.00".parse().unwrap()));
    }

    #[test]
    fn string_dictionary_compresses() {
        let vals: Vec<Value> =
            (0..100).map(|i| Value::str(if i % 2 == 0 { "DE" } else { "FR" })).collect();
        let c = Column::from_values(SqlType::Text, &vals).unwrap();
        match c.data() {
            ColumnData::Str(s) => assert_eq!(s.dict_size(), 2),
            _ => panic!("expected string column"),
        }
        assert_eq!(c.get(0), Value::str("DE"));
        assert_eq!(c.get(1), Value::str("FR"));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(Column::from_values(SqlType::Int, &[Value::str("x")]).is_err());
        assert!(Column::from_values(SqlType::Text, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn batch_validation_and_rows() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", SqlType::Int, false),
            Field::new("name", SqlType::Text, true),
        ]));
        let rows = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::Null],
        ];
        let b = Batch::from_rows(Arc::clone(&schema), &rows).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.to_rows(), rows);
        let taken = b.take(&[1]);
        assert_eq!(taken.num_rows(), 1);
        assert_eq!(taken.row(0), rows[1]);
        // Column count mismatch.
        assert!(Batch::new(schema, vec![]).is_err());
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_values(SqlType::Int, &[Value::Int(1), Value::Null]).unwrap();
        let t = c.take(&[1, 0, 1]);
        assert_eq!(t.get(0), Value::Null);
        assert_eq!(t.get(1), Value::Int(1));
        assert_eq!(t.get(2), Value::Null);
    }
}
